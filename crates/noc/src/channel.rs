//! One MWSR data channel: home-node logic, token arbitration, transmission.
//!
//! A [`Channel`] owns everything associated with one destination (home) node:
//! the wave-pipelined data [`SlotRing`], the per-sender [`OutQueue`]s, the
//! home input buffer, the handshake calendar, and the scheme-specific token
//! state. The [`crate::network::Network`] orchestrator calls the `phase_*`
//! methods in a fixed order each cycle:
//!
//! 1. `phase_advance`  — light moves one segment,
//! 2. `phase_arrival`  — the home inspects the slot at its segment
//!    (accept / drop+NACK / reinject),
//! 3. `phase_acks`     — handshakes scheduled `R + 1` cycles after each
//!    transmission reach their senders,
//! 4. `phase_transmit` — senders holding grants place flits on free slots,
//! 5. `phase_tokens`   — token emission, sweeping, grabbing, reimbursement,
//! 6. `phase_eject`    — the home drains its input buffer to local cores.
//!
//! A token granted in cycle *t* is used to transmit in *t + 1* (paper Figs. 3
//! and 5: the token arrives one cycle before the data flit follows it).

use crate::calendar::Calendar;
use crate::config::{FairnessPolicy, NetworkConfig, Scheme};
use crate::metrics::NetworkMetrics;
use crate::outqueue::{OutQueue, SendMode, TimeoutAction};
use crate::packet::Packet;
use crate::slots::SlotRing;
use crate::topology::Topology;
use pnoc_faults::{AckFate, ChannelInjector, DataFate, FaultEngine, RecoveryConfig};
use pnoc_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// A packet handed to the home node's local cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered packet.
    pub pkt: Packet,
    /// Cycle at which the local core sees it (ejection router pipeline
    /// included).
    pub available_at: Cycle,
}

/// State of the single global-arbitration token (token channel, GHS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GlobalTokenState {
    /// Travelling; `next` is the first downstream distance not yet examined.
    Sweeping { next: usize },
    /// Held by the sender at the given node while it transmits.
    Held { node: usize },
    /// Destroyed by an injected fault; the home re-emits a replacement after
    /// a watchdog period of two silent loop times.
    Lost { since: Cycle },
}

/// Scheme-specific arbitration state.
#[derive(Debug, Clone)]
enum Arbiter {
    /// Token channel / GHS: one token; `credits` is `None` for GHS.
    Global {
        state: GlobalTokenState,
        credits: Option<u32>,
    },
    /// Token slot / DHS / DHS-circulation: tokens indexed oldest-first;
    /// each holds the first distance not yet examined.
    Distributed { tokens: VecDeque<usize> },
}

/// An ACK/NACK in flight on the handshake channel.
#[derive(Debug, Clone, Copy)]
struct AckEvent {
    sender: usize,
    id: u64,
    ok: bool,
}

/// One MWSR channel (see module docs).
///
/// `Clone` so the bounded model checker ([`crate::fsm`]) can branch a
/// channel's state when exploring nondeterministic injection choices.
#[derive(Debug, Clone)]
pub struct Channel {
    home: usize,
    topo: Topology,
    scheme: Scheme,
    fairness: FairnessPolicy,
    buffer_cap: usize,
    ejection_per_cycle: usize,
    eject_latency: u64,

    /// Per-sender output queues, indexed by node id (`senders[home]` unused).
    senders: Vec<OutQueue>,
    /// The wave-pipelined data ring.
    data: SlotRing<Packet>,
    /// The home input buffer (≤ `buffer_cap` entries including draining).
    input_queue: VecDeque<Packet>,
    /// Buffer slots still held by flits traversing the ejection router
    /// (a slot is freed only when its flit *leaves* the node, the same rule
    /// credit-based flow control uses for credit return).
    draining: u32,
    /// Slot-release events for draining flits.
    releases: Calendar<()>,
    /// Handshake events in flight.
    acks: Calendar<AckEvent>,
    arbiter: Arbiter,

    /// Senders with unconsumed grants (kept sorted by downstream distance).
    active_senders: Vec<usize>,
    /// Total queued packets across senders (cheap idle check).
    queued_total: usize,
    /// Token-channel: credits freed by ejections, awaiting the token's next
    /// home pass.
    uncommitted: u32,
    /// Token-slot: reservations travelling with granted tokens / flits.
    inflight: u32,
    /// DHS-circulation: a reinjection this cycle suppresses token emission.
    suppress_token: bool,
    /// Measured deliveries per sender (fairness accounting).
    pub served_by_sender: Vec<u64>,

    /// Fault injection for this channel (`None` on fault-free runs — every
    /// fault hook below is skipped entirely).
    injector: Option<ChannelInjector>,
    /// Sender-side ACK-timeout retransmission parameters.
    recovery: RecoveryConfig,
    /// Armed ACK timers, earliest deadline first: `(deadline, sender, id)`.
    /// Entries are validated lazily against the sender queue when they fire,
    /// so stale timers (handshake arrived first) are harmless.
    ack_timers: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    /// Packet ids already accepted into the input buffer, kept while
    /// recovery is enabled so a retransmission after a *lost ACK* is
    /// discarded (and re-ACKed) instead of delivered twice. Ordered so the
    /// model checker's state keys are canonical (determinism lint
    /// `no-unordered-collections` bans hash collections in sim state).
    accepted_ids: BTreeSet<u64>,
    /// Token-slot: reservations destroyed by faults (lost tokens). The home
    /// cannot observe the destruction, so the slots stay committed forever —
    /// this is the credit leak the handshake schemes are immune to.
    lost_reservations: u32,
    /// Token-channel: credits permanently destroyed by faults on this
    /// channel (flits lost while holding a reservation, credits riding a
    /// destroyed token). Balances the credit-conservation invariant:
    /// `credits + uncommitted + outstanding + leaked == buffer_cap`.
    leaked_credits: u32,
}

impl Channel {
    /// Build the channel homed at `home`.
    pub fn new(home: usize, cfg: &NetworkConfig) -> Self {
        let topo = Topology::new(cfg.nodes, cfg.ring_segments);
        let mode = match cfg.scheme {
            Scheme::TokenChannel | Scheme::TokenSlot | Scheme::DhsCirculation => SendMode::Forget,
            Scheme::Ghs { setaside } | Scheme::Dhs { setaside } => {
                if setaside == 0 {
                    SendMode::HoldHead
                } else {
                    SendMode::Setaside(setaside)
                }
            }
        };
        let arbiter = match cfg.scheme {
            Scheme::TokenChannel => Arbiter::Global {
                state: GlobalTokenState::Sweeping { next: 0 },
                credits: Some(cfg.input_buffer as u32),
            },
            Scheme::Ghs { .. } => Arbiter::Global {
                state: GlobalTokenState::Sweeping { next: 0 },
                credits: None,
            },
            Scheme::TokenSlot | Scheme::Dhs { .. } | Scheme::DhsCirculation => {
                Arbiter::Distributed {
                    tokens: VecDeque::new(),
                }
            }
        };
        // Each channel forks its own injector stream; forking from a fresh
        // engine per channel is deterministic in (seed, home).
        let injector = if cfg.faults.enabled() {
            Some(FaultEngine::new(cfg.faults, cfg.seed).channel(home))
        } else {
            None
        };
        Self {
            home,
            topo,
            scheme: cfg.scheme,
            fairness: cfg.fairness,
            buffer_cap: cfg.input_buffer,
            ejection_per_cycle: cfg.ejection_per_cycle,
            eject_latency: cfg.router_latency,
            senders: (0..cfg.nodes).map(|_| OutQueue::new(mode)).collect(),
            data: SlotRing::new(cfg.ring_segments),
            input_queue: VecDeque::with_capacity(cfg.input_buffer),
            draining: 0,
            releases: Calendar::new(cfg.router_latency as usize + 2),
            acks: Calendar::new(cfg.ring_segments + 2),
            arbiter,
            active_senders: Vec::new(),
            queued_total: 0,
            uncommitted: 0,
            inflight: 0,
            suppress_token: false,
            served_by_sender: vec![0; cfg.nodes],
            injector,
            recovery: cfg.recovery,
            ack_timers: BinaryHeap::new(),
            accepted_ids: BTreeSet::new(),
            lost_reservations: 0,
            leaked_credits: 0,
        }
    }

    /// The home node id.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Enqueue a packet into its sender's output queue (called when the
    /// packet exits the injection router pipeline).
    pub fn enqueue(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.dst_node as usize, self.home);
        debug_assert_ne!(pkt.src_node as usize, self.home, "no self-send");
        self.senders[pkt.src_node as usize].push(pkt);
        self.queued_total += 1;
    }

    /// Whether every queue, slot, buffer and grant is empty (drain check).
    pub fn is_drained(&self) -> bool {
        self.queued_total == 0
            && self.data.is_empty()
            && self.input_queue.is_empty()
            && self.draining == 0
            && self.acks.pending() == 0
            && self.active_senders.is_empty()
            && self.senders.iter().all(super::outqueue::OutQueue::is_idle)
    }

    /// Home input-buffer occupancy, including slots held by flits still in
    /// the ejection router (for tests/inspection).
    pub fn buffer_occupancy(&self) -> usize {
        self.input_queue.len() + self.draining as usize
    }

    /// Chaos/test hook: throttle the home's ejection bandwidth to force
    /// buffer pressure (drops, retransmissions, circulation). The normal
    /// configuration path validates `ejection_per_cycle ≥ 1`; this setter
    /// deliberately allows 0 to model a stalled ejection port.
    pub fn set_ejection_per_cycle(&mut self, n: usize) {
        self.ejection_per_cycle = n;
    }

    /// Chaos/test hook: forget every packet id the home has accepted,
    /// disabling duplicate suppression. A retransmission of an
    /// already-delivered packet will then be delivered again — the
    /// intentional bug the model checker's self-test must catch as a
    /// duplicate-delivery counterexample.
    pub fn forget_accepted_ids(&mut self) {
        self.accepted_ids.clear();
    }

    /// Phase 1: light advances one segment.
    pub fn phase_advance(&mut self) {
        self.data.advance();
    }

    /// Phase 2: the home inspects the slot at its segment.
    pub fn phase_arrival(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        let home_seg = self.topo.segment_of(self.home);
        // Take the flit once; the circulation path puts it back. (Take-once
        // keeps this per-cycle path free of unwrap/expect — determinism lint
        // `no-hot-path-unwrap`.)
        let Some(mut pkt) = self.data.take(home_seg) else {
            return;
        };
        // Fault fate for the flit's whole flight, decided at the observation
        // point (one draw per arrival, compounded over the flight length).
        if let Some(inj) = self.injector.as_mut() {
            if inj.active() {
                let flight = now.saturating_sub(pkt.sent_at).max(1);
                match inj.data_fate(flight) {
                    DataFate::Intact => {}
                    DataFate::Lost => {
                        // Destroyed in flight: the home never sees it, so no
                        // handshake fires and no buffer slot is touched.
                        m.faults_data_lost += 1;
                        match self.scheme {
                            // The credit reserved for this flit can never be
                            // reimbursed (the slot is never occupied, so it
                            // is never ejected): a permanent leak.
                            Scheme::TokenChannel => {
                                self.leaked_credits += 1;
                                m.credit_leaks += 1;
                            }
                            // The in-flight reservation is never returned
                            // (`inflight` stays elevated forever).
                            Scheme::TokenSlot => m.credit_leaks += 1,
                            // Handshake senders recover by ACK timeout;
                            // circulation has no sender copy — a true loss.
                            _ => {}
                        }
                        return;
                    }
                    DataFate::Corrupt => {
                        m.arrivals += 1;
                        m.faults_data_corrupt += 1;
                        match self.scheme {
                            Scheme::TokenChannel => {
                                // Discarded at the home; generously return
                                // the credit (the flit itself is still gone
                                // for good — credit schemes cannot ask for a
                                // retransmission).
                                self.uncommitted += 1;
                            }
                            Scheme::TokenSlot => {
                                assert!(self.inflight > 0, "inflight underflow");
                                self.inflight -= 1;
                            }
                            Scheme::Ghs { .. } | Scheme::Dhs { .. } => {
                                // CRC failure ⇒ NACK; the sender retransmits
                                // exactly as after a full-buffer drop.
                                self.acks.schedule(
                                    pkt.sent_at + self.topo.handshake_delay(),
                                    AckEvent {
                                        sender: pkt.src_node as usize,
                                        id: pkt.id,
                                        ok: false,
                                    },
                                );
                            }
                            Scheme::DhsCirculation => {}
                        }
                        return;
                    }
                }
            }
        }
        m.arrivals += 1;
        // Duplicate suppression (recovery only): a retransmission whose
        // original was accepted but whose ACK was lost must not be delivered
        // twice. Discard it and re-ACK so the sender can release its copy.
        if self.recovery.enabled && self.accepted_ids.contains(&pkt.id) {
            m.duplicates_suppressed += 1;
            self.acks.schedule(
                pkt.sent_at + self.topo.handshake_delay(),
                AckEvent {
                    sender: pkt.src_node as usize,
                    id: pkt.id,
                    ok: true,
                },
            );
            return;
        }
        let has_room = self.input_queue.len() + (self.draining as usize) < self.buffer_cap;
        match self.scheme {
            Scheme::TokenChannel | Scheme::TokenSlot => {
                // Credit-reserved: space is guaranteed by construction.
                // Always-on check: a violation here means corrupted credit
                // state, which a release-mode harness run must not silently
                // pass through.
                assert!(has_room, "reservation accounting violated");
                if self.scheme == Scheme::TokenSlot {
                    assert!(self.inflight > 0, "inflight underflow");
                    self.inflight -= 1;
                }
                self.input_queue.push_back(pkt);
            }
            Scheme::Ghs { .. } | Scheme::Dhs { .. } => {
                let ack_at = pkt.sent_at + self.topo.handshake_delay();
                debug_assert!(ack_at > now, "handshake must arrive in the future");
                if has_room {
                    self.acks.schedule(
                        ack_at,
                        AckEvent {
                            sender: pkt.src_node as usize,
                            id: pkt.id,
                            ok: true,
                        },
                    );
                    if self.recovery.enabled {
                        self.accepted_ids.insert(pkt.id);
                    }
                    self.input_queue.push_back(pkt);
                } else {
                    // Drop; the sender retransmits on NACK (§III-A).
                    m.drops += 1;
                    self.acks.schedule(
                        ack_at,
                        AckEvent {
                            sender: pkt.src_node as usize,
                            id: pkt.id,
                            ok: false,
                        },
                    );
                }
            }
            Scheme::DhsCirculation => {
                if has_room {
                    self.input_queue.push_back(pkt);
                } else {
                    // Reinject: the packet stays on the ring for another
                    // loop; the home consumes this cycle's token virtually
                    // (§III-C).
                    pkt.sends += 1;
                    pkt.sent_at = now; // next arrival check in R cycles
                    self.data.put(home_seg, pkt);
                    self.suppress_token = true;
                    m.circulations += 1;
                }
            }
        }
    }

    /// Phase 3: handshakes reach their senders, and expired ACK timers fire.
    pub fn phase_acks(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        for ev in self.acks.drain(now) {
            // Handshake-channel fault: the pulse never reaches the sender.
            // The sender learns nothing; with recovery enabled its ACK timer
            // eventually retransmits, without it the packet wedges.
            if let Some(inj) = self.injector.as_mut() {
                if inj.active() && inj.ack_fate(self.topo.handshake_delay()) == AckFate::Lost {
                    m.faults_acks_lost += 1;
                    continue;
                }
            }
            let q = &mut self.senders[ev.sender];
            if ev.ok {
                if q.ack(ev.id).is_some() {
                    // HoldHead keeps the packet queued until the ACK: account
                    // for its departure now. Setaside removed it from the
                    // queue at transmission time.
                    if matches!(
                        self.scheme,
                        Scheme::Ghs { setaside: 0 } | Scheme::Dhs { setaside: 0 }
                    ) {
                        self.queued_total -= 1;
                    }
                } else {
                    // A re-ACK for a suppressed duplicate can land after the
                    // first ACK already released the packet; only recovery
                    // produces that. Always-on: an unexpected ACK in a
                    // recovery-free run means the handshake FSM desynced.
                    assert!(self.recovery.enabled, "ACK for unknown packet {}", ev.id);
                }
            } else if q.nack(ev.id) {
                m.retransmissions += 1;
                // Setaside NACK pushes the packet back into the queue.
                if self.scheme.setaside() > 0 {
                    self.queued_total += 1;
                }
            } else {
                // The packet already timed out and retransmitted; this NACK
                // answers a transmission the sender no longer tracks. Only
                // recovery can produce that race.
                assert!(self.recovery.enabled, "NACK for unknown packet {}", ev.id);
            }
        }
        // Expired ACK timers (armed per transmission when recovery is on).
        // A timer firing while the packet still awaits its handshake means
        // the flit or its ACK was lost: retransmit, like a NACK, under
        // exponential backoff and a bounded retry budget.
        while let Some(&Reverse((deadline, sender, id))) = self.ack_timers.peek() {
            if deadline > now {
                break;
            }
            self.ack_timers.pop();
            match self.senders[sender].timeout(id, self.recovery.max_retries) {
                TimeoutAction::Retry => {
                    m.timeout_retransmissions += 1;
                    // Setaside: the packet moved back from setaside into the
                    // queue, mirroring the NACK bookkeeping above.
                    if self.scheme.setaside() > 0 {
                        self.queued_total += 1;
                    }
                }
                TimeoutAction::Abandon => {
                    m.abandoned += 1;
                    // A HoldHead abandon pops the pending head off the queue.
                    if self.scheme.setaside() == 0 {
                        self.queued_total -= 1;
                    }
                }
                TimeoutAction::Stale => {}
            }
        }
    }

    /// Phase 4: senders with grants place flits on free slots at their
    /// segments (one per sender per cycle).
    pub fn phase_transmit(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        if self.active_senders.is_empty() {
            return;
        }
        // Deterministic service order: by downstream distance from home.
        let topo = self.topo;
        let home = self.home;
        self.active_senders
            .sort_unstable_by_key(|&n| topo.downstream_distance(home, n));
        let mut still_active = Vec::new();
        for i in 0..self.active_senders.len() {
            let node = self.active_senders[i];
            let seg = self.topo.segment_of(node);
            let mut remaining = self.senders[node].granted();
            if remaining > 0 && self.data.is_free(seg) {
                if let Some(pkt) = self.senders[node].transmit(now) {
                    if pkt.sends == 1 && pkt.measured {
                        m.queue_wait.record((now - pkt.enqueued_at) as f64);
                    }
                    m.sends += 1;
                    if matches!(self.scheme, Scheme::TokenChannel | Scheme::TokenSlot)
                        || self.scheme == Scheme::DhsCirculation
                        || self.scheme.setaside() > 0
                    {
                        // The packet left the queue (Forget or Setaside).
                        self.queued_total -= 1;
                    }
                    if self.recovery.enabled && self.scheme.uses_handshake() {
                        // Arm the ACK timer for this attempt. The base
                        // timeout exceeds the handshake round trip, so on a
                        // healthy channel the ACK always wins the race and
                        // the timer goes stale.
                        let deadline = now + self.recovery.timeout_for_attempt(pkt.sends);
                        self.ack_timers.push(Reverse((deadline, node, pkt.id)));
                    }
                    self.data.put(seg, pkt);
                    remaining = self.senders[node].granted();
                }
            }
            if remaining > 0 {
                still_active.push(node);
            }
        }
        self.active_senders = still_active;
    }

    /// Phase 5: token emission, sweeping, grabbing, reimbursement.
    pub fn phase_tokens(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        // Split-borrow helpers capture everything phase_tokens needs.
        let fairness = self.fairness;
        match &mut self.arbiter {
            Arbiter::Global { state, credits } => {
                // Fault: the circulating token is destroyed. Only a sweeping
                // token is exposed (a held one is latched at its sender).
                if let Some(inj) = self.injector.as_mut() {
                    if inj.active()
                        && matches!(*state, GlobalTokenState::Sweeping { .. })
                        && inj.token_lost()
                    {
                        m.faults_tokens_lost += 1;
                        if let Some(c) = credits.as_mut() {
                            // Token-channel credits ride on the token and
                            // die with it — an unrecoverable leak. (The GHS
                            // token carries nothing; it is fully replaced.)
                            m.credit_leaks += u64::from(*c);
                            self.leaked_credits += *c;
                            *c = 0;
                        }
                        *state = GlobalTokenState::Lost { since: now };
                    }
                }
                match *state {
                    GlobalTokenState::Lost { since } => {
                        // Watchdog: after two silent loop times the home
                        // emits a replacement. It cannot know how many
                        // credits died with the old token, so the
                        // replacement starts empty and must live off future
                        // ejection reimbursements.
                        if now.saturating_sub(since) >= 2 * self.topo.handshake_delay() {
                            *state = GlobalTokenState::Sweeping { next: 0 };
                        }
                    }
                    GlobalTokenState::Held { node } => {
                        let has_credit = credits.is_none_or(|c| c > 0);
                        let q = &mut self.senders[node];
                        if q.granted() > 0 {
                            // Transmission still owed; keep holding.
                        } else if has_credit && q.eligible(now, fairness) {
                            q.take_grant(now, fairness);
                            if let Some(c) = credits.as_mut() {
                                *c -= 1;
                            }
                            if !self.active_senders.contains(&node) {
                                self.active_senders.push(node);
                            }
                        } else {
                            // Release: the token resumes its sweep from just
                            // past the holder; downstream nodes see it from
                            // the next cycle (paper Fig. 3c→d).
                            let next = self.topo.downstream_distance(self.home, node) + 1;
                            *state = Self::wrap_or_continue(
                                next,
                                self.topo.nodes,
                                credits,
                                &mut self.uncommitted,
                                self.buffer_cap,
                            );
                        }
                    }
                    GlobalTokenState::Sweeping { next } => {
                        let step = self.topo.step();
                        let hi = (next + step).min(self.topo.nodes - 1);
                        let has_credit = credits.is_none_or(|c| c > 0);
                        let mut grabbed = None;
                        if has_credit && self.queued_total > 0 {
                            for d in next..hi {
                                let node = self.topo.node_at_distance(self.home, d);
                                if self.senders[node].eligible(now, fairness) {
                                    grabbed = Some(node);
                                    break;
                                }
                            }
                        }
                        if let Some(node) = grabbed {
                            self.senders[node].take_grant(now, fairness);
                            if let Some(c) = credits.as_mut() {
                                *c -= 1;
                            }
                            if !self.active_senders.contains(&node) {
                                self.active_senders.push(node);
                            }
                            *state = GlobalTokenState::Held { node };
                        } else {
                            *state = Self::wrap_or_continue(
                                hi,
                                self.topo.nodes,
                                credits,
                                &mut self.uncommitted,
                                self.buffer_cap,
                            );
                        }
                    }
                }
            }
            Arbiter::Distributed { tokens } => {
                // Fault: in-flight tokens are exposed every cycle.
                if let Some(inj) = self.injector.as_mut() {
                    if inj.active() && !tokens.is_empty() {
                        let before = tokens.len();
                        tokens.retain(|_| !inj.token_lost());
                        let destroyed = (before - tokens.len()) as u64;
                        if destroyed > 0 {
                            m.faults_tokens_lost += destroyed;
                            if self.scheme == Scheme::TokenSlot {
                                // The home cannot observe the destruction:
                                // each lost token's reservation stays
                                // committed forever — a permanent leak of
                                // buffer capacity. (DHS re-emits every
                                // cycle, so a lost token costs one cycle of
                                // arbitration, nothing more.)
                                self.lost_reservations += destroyed as u32;
                                m.credit_leaks += destroyed;
                            }
                        }
                    }
                }
                // Emission.
                let emit = match self.scheme {
                    Scheme::TokenSlot => {
                        let committed = self.input_queue.len()
                            + self.draining as usize
                            + self.inflight as usize
                            + self.lost_reservations as usize
                            + tokens.len();
                        committed < self.buffer_cap
                    }
                    Scheme::Dhs { .. } => true,
                    Scheme::DhsCirculation => !self.suppress_token,
                    _ => unreachable!("global schemes use Arbiter::Global"),
                };
                self.suppress_token = false;
                if emit {
                    tokens.push_back(0);
                }
                // Sweep every live token. Windows are disjoint: the token
                // emitted `a` cycles ago covers distances
                // [(a)·step, (a+1)·step) this cycle... maintained per token
                // as `next`.
                let step = self.topo.step();
                let nodes = self.topo.nodes;
                let mut idx = 0;
                while idx < tokens.len() {
                    let next = tokens[idx];
                    let hi = (next + step).min(nodes - 1);
                    let mut grabbed = false;
                    if self.queued_total > 0 {
                        for d in next..hi {
                            let node = self.topo.node_at_distance(self.home, d);
                            if self.senders[node].eligible(now, fairness) {
                                self.senders[node].take_grant(now, fairness);
                                if !self.active_senders.contains(&node) {
                                    self.active_senders.push(node);
                                }
                                if self.scheme == Scheme::TokenSlot {
                                    self.inflight += 1;
                                }
                                grabbed = true;
                                break;
                            }
                        }
                    }
                    if grabbed {
                        tokens.remove(idx);
                        // do not advance idx: the next token shifted in
                    } else {
                        tokens[idx] = hi;
                        if hi >= nodes - 1 {
                            // Token completed the loop un-taken and dies at
                            // the home (the home re-emits fresh ones; for
                            // token slot the reservation returns to the pool
                            // implicitly).
                            tokens.remove(idx);
                        } else {
                            idx += 1;
                        }
                    }
                }
            }
        }
    }

    fn wrap_or_continue(
        next: usize,
        nodes: usize,
        credits: &mut Option<u32>,
        uncommitted: &mut u32,
        _buffer_cap: usize,
    ) -> GlobalTokenState {
        if next >= nodes - 1 {
            // Home pass: the token channel reimburses every credit freed
            // since the last pass (paper Fig. 2a); GHS has nothing to do.
            if let Some(c) = credits.as_mut() {
                *c += *uncommitted;
                *uncommitted = 0;
            }
            GlobalTokenState::Sweeping { next: 0 }
        } else {
            GlobalTokenState::Sweeping { next }
        }
    }

    /// Phase 6: the home drains its input buffer toward the local cores.
    pub fn phase_eject(
        &mut self,
        now: Cycle,
        m: &mut NetworkMetrics,
        deliveries: &mut Vec<Delivery>,
    ) {
        // Flits leaving the ejection router release their buffer slots; only
        // now does a freed slot become a reimbursable credit.
        for () in self.releases.drain(now) {
            assert!(self.draining > 0, "draining underflow");
            self.draining -= 1;
            if self.scheme == Scheme::TokenChannel {
                self.uncommitted += 1;
            }
        }
        // Fault: transient drain stall — the receiving core stops accepting.
        // Flits already inside the ejection router (above) still complete;
        // no new ejection starts this cycle.
        if let Some(inj) = self.injector.as_mut() {
            if inj.eject_stalled(now) {
                m.stall_cycles += 1;
                return;
            }
        }
        for _ in 0..self.ejection_per_cycle {
            let Some(pkt) = self.input_queue.pop_front() else {
                break;
            };
            let available_at = now + self.eject_latency;
            if self.eject_latency == 0 {
                // Zero-latency ejection frees the slot immediately.
                if self.scheme == Scheme::TokenChannel {
                    self.uncommitted += 1;
                }
            } else {
                self.draining += 1;
                self.releases.schedule(available_at, ());
            }
            m.delivered += 1;
            if pkt.measured {
                m.delivered_measured += 1;
                let lat = pkt.latency_at(available_at) as f64;
                m.latency.record(lat);
                m.latency_hist.record(lat);
                m.latency_batches.record(lat);
                self.served_by_sender[pkt.src_node as usize] += 1;
            }
            deliveries.push(Delivery { pkt, available_at });
        }
    }

    /// Check the channel's internal invariants (buffer bounds, queue
    /// accounting, reservation conservation), reporting the first violation
    /// instead of panicking. The runtime [`crate::audit::InvariantAuditor`]
    /// and the bounded model checker route through this so a violation
    /// becomes a diagnosable trace rather than an abort.
    pub fn try_check_invariants(&self) -> Result<(), String> {
        if self.input_queue.len() + self.draining as usize > self.buffer_cap {
            return Err(format!(
                "buffer overflow: {} queued + {} draining > cap {}",
                self.input_queue.len(),
                self.draining,
                self.buffer_cap
            ));
        }
        let queued: usize = self.senders.iter().map(OutQueue::backlog).sum();
        if queued != self.queued_total {
            return Err(format!(
                "queued_total drifted: counted {queued}, cached {}",
                self.queued_total
            ));
        }
        if let Arbiter::Distributed { tokens } = &self.arbiter {
            if self.scheme == Scheme::TokenSlot {
                let committed = self.input_queue.len()
                    + self.draining as usize
                    + self.inflight as usize
                    + self.lost_reservations as usize
                    + tokens.len();
                if committed > self.buffer_cap {
                    return Err(format!(
                        "token-slot reservation accounting violated: \
                         {committed} committed > cap {}",
                        self.buffer_cap
                    ));
                }
            }
        }
        for &n in &self.active_senders {
            if self.senders[n].granted() == 0 {
                return Err(format!("stale active sender {n}"));
            }
        }
        Ok(())
    }

    /// Assert the channel's internal invariants. Tests call this after every
    /// cycle; it is cheap enough to use while debugging scheme changes.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        if let Err(why) = self.try_check_invariants() {
            panic!("channel {} invariant violated: {why}", self.home);
        }
    }

    /// Snapshot the observable state the [`crate::audit::InvariantAuditor`]
    /// needs for its cross-field conservation checks (flit conservation,
    /// credit/token conservation, ACK pairing).
    pub fn audit_view(&self) -> crate::audit::ChannelAuditView {
        let mut queue_ids = Vec::new();
        let mut setaside_ids = Vec::new();
        let mut unresolved_ids = Vec::new();
        let mut granted_total = 0u32;
        for q in &self.senders {
            queue_ids.extend(q.iter_queue().map(|p| p.id));
            setaside_ids.extend(q.iter_setaside().map(|p| p.id));
            unresolved_ids.extend(q.unresolved_ids());
            granted_total += q.granted();
        }
        let (credits, outstanding_tokens) = match &self.arbiter {
            Arbiter::Global { credits, .. } => (*credits, 0),
            Arbiter::Distributed { tokens } => (None, tokens.len()),
        };
        crate::audit::ChannelAuditView {
            home: self.home,
            scheme: self.scheme,
            buffer_cap: self.buffer_cap,
            input_queue_ids: self.input_queue.iter().map(|p| p.id).collect(),
            draining: self.draining,
            ring_ids: self.data.iter_occupied().map(|(_, p)| p.id).collect(),
            queue_ids,
            setaside_ids,
            unresolved_ids,
            granted_total,
            pending_acks: self
                .acks
                .pending_events()
                .into_iter()
                .map(|(_, ev)| (ev.id, ev.ok))
                .collect(),
            armed_timer_ids: self
                .ack_timers
                .iter()
                .map(|&Reverse((_, _, id))| id)
                .collect(),
            credits,
            outstanding_tokens,
            uncommitted: self.uncommitted,
            inflight: self.inflight,
            lost_reservations: self.lost_reservations,
            leaked_credits: self.leaked_credits,
            recovery_enabled: self.recovery.enabled,
            faults_active: self.injector.as_ref().is_some_and(ChannelInjector::active),
        }
    }

    /// Append a canonical encoding of the channel's complete dynamic state
    /// to `out`, with every absolute cycle re-based against `now` so two
    /// states that differ only by a time shift produce identical keys. The
    /// bounded model checker ([`crate::fsm`]) dedupes its search on this.
    ///
    /// Excluded on purpose: static configuration (scheme, topology,
    /// recovery parameters) and metrics-only packet fields (`generated_at`,
    /// `enqueued_at`, `measured`, `tag`) — they never influence a future
    /// transition.
    pub fn state_key(&self, now: Cycle, out: &mut Vec<u64>) {
        // Field separator: no id/count collides with it in small-config
        // model-checking runs.
        const SEP: u64 = u64::MAX;
        for q in &self.senders {
            out.push(SEP);
            for p in q.iter_queue() {
                out.push(p.id);
                out.push(u64::from(p.sends));
            }
            out.push(SEP - 1);
            out.push(u64::from(q.head_is_pending()));
            for p in q.iter_setaside() {
                out.push(p.id);
                out.push(u64::from(p.sends));
            }
            out.push(SEP - 1);
            out.push(u64::from(q.granted()));
            let (serves, sit_until) = q.fairness_state();
            out.push(u64::from(serves));
            out.push(sit_until.saturating_sub(now));
        }
        out.push(SEP);
        for (seg, p) in self.data.iter_occupied() {
            out.push(seg as u64);
            out.push(p.id);
            out.push(u64::from(p.sends));
            // `sent_at` schedules the handshake (`sent_at + R + 1`), so its
            // age relative to `now` is behaviorally relevant.
            out.push(now.saturating_sub(p.sent_at));
        }
        out.push(SEP);
        for p in &self.input_queue {
            out.push(p.id);
        }
        out.push(SEP);
        out.push(u64::from(self.draining));
        for (at, ()) in self.releases.pending_events() {
            out.push(at - now);
        }
        out.push(SEP);
        for (at, ev) in self.acks.pending_events() {
            out.push(at - now);
            out.push(ev.sender as u64);
            out.push(ev.id);
            out.push(u64::from(ev.ok));
        }
        out.push(SEP);
        match &self.arbiter {
            Arbiter::Global { state, credits } => {
                out.push(0);
                match *state {
                    GlobalTokenState::Sweeping { next } => {
                        out.push(0);
                        out.push(next as u64);
                    }
                    GlobalTokenState::Held { node } => {
                        out.push(1);
                        out.push(node as u64);
                    }
                    GlobalTokenState::Lost { since } => {
                        out.push(2);
                        out.push(now.saturating_sub(since));
                    }
                }
                out.push(credits.map_or(SEP, u64::from));
            }
            Arbiter::Distributed { tokens } => {
                out.push(1);
                for &t in tokens {
                    out.push(t as u64);
                }
            }
        }
        out.push(SEP);
        let mut active = self.active_senders.clone();
        active.sort_unstable();
        for n in active {
            out.push(n as u64);
        }
        out.push(SEP);
        out.push(u64::from(self.uncommitted));
        out.push(u64::from(self.inflight));
        out.push(u64::from(self.suppress_token));
        out.push(u64::from(self.lost_reservations));
        out.push(u64::from(self.leaked_credits));
        out.push(SEP);
        let mut timers: Vec<(u64, u64, u64)> = self
            .ack_timers
            .iter()
            .map(|&Reverse((deadline, sender, id))| {
                (deadline.saturating_sub(now), sender as u64, id)
            })
            .collect();
        timers.sort_unstable();
        for (d, s, id) in timers {
            out.push(d);
            out.push(s);
            out.push(id);
        }
        out.push(SEP);
        for &id in &self.accepted_ids {
            out.push(id);
        }
        out.push(SEP);
        if let Some(inj) = &self.injector {
            inj.state_key(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn cfg(scheme: Scheme) -> NetworkConfig {
        NetworkConfig::small(scheme) // 16 nodes, 4 segments, buffer 4
    }

    fn pkt(id: u64, src: usize, dst: usize, now: Cycle) -> Packet {
        Packet {
            id,
            src_core: (src * 2) as u32,
            src_node: src as u32,
            dst_node: dst as u32,
            kind: PacketKind::Data,
            generated_at: now,
            enqueued_at: now,
            sent_at: 0,
            sends: 0,
            measured: true,
            tag: 0,
        }
    }

    /// Run `cycles` cycles of a single channel in isolation.
    fn run(
        ch: &mut Channel,
        m: &mut NetworkMetrics,
        deliveries: &mut Vec<Delivery>,
        from: Cycle,
        cycles: u64,
    ) {
        for now in from..from + cycles {
            ch.phase_advance();
            ch.phase_arrival(now, m);
            ch.phase_acks(now, m);
            ch.phase_transmit(now, m);
            ch.phase_tokens(now, m);
            ch.phase_eject(now, m, deliveries);
            ch.check_invariants();
        }
    }

    fn deliver_one(scheme: Scheme, src: usize) -> (Vec<Delivery>, NetworkMetrics) {
        let mut ch = Channel::new(0, &cfg(scheme));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        ch.enqueue(pkt(1, src, 0, 0));
        run(&mut ch, &mut m, &mut d, 0, 64);
        (d, m)
    }

    #[test]
    fn every_scheme_delivers_a_single_packet() {
        for scheme in Scheme::paper_set(2) {
            let (d, m) = deliver_one(scheme, 9);
            assert_eq!(d.len(), 1, "{scheme:?} failed to deliver");
            assert_eq!(d[0].pkt.id, 1);
            assert_eq!(m.delivered_measured, 1);
            assert_eq!(m.drops, 0);
        }
    }

    #[test]
    fn ring_latency_is_distance_independent_at_zero_load() {
        // In a token ring, token-wait + data-flight ≈ one full loop no matter
        // where the sender sits: a sender near the home waits longer for the
        // token but its data arrives quickly, and vice versa. Check the two
        // extremes agree to within a couple of cycles and land near the
        // round-trip time.
        let (d_near, _) = deliver_one(Scheme::Dhs { setaside: 2 }, 15); // 1 hop upstream of home
        let (d_far, _) = deliver_one(Scheme::Dhs { setaside: 2 }, 1); // almost a full loop
        let lat_near = i64::try_from(d_near[0].pkt.latency_at(d_near[0].available_at)).unwrap();
        let lat_far = i64::try_from(d_far[0].pkt.latency_at(d_far[0].available_at)).unwrap();
        assert!(
            (lat_far - lat_near).abs() <= 2,
            "ring latency should be ~flat ({lat_far} vs {lat_near})"
        );
        // 4-segment ring + 2-cycle eject router: zero-load latency ≈ 6–9.
        assert!((4..=10).contains(&lat_near), "zero-load latency {lat_near}");
    }

    #[test]
    fn channel_drains_after_burst() {
        for scheme in Scheme::paper_set(2) {
            let mut ch = Channel::new(3, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            let mut id = 0;
            for src in [0usize, 5, 9, 12] {
                for _ in 0..5 {
                    id += 1;
                    ch.enqueue(pkt(id, src, 3, 0));
                }
            }
            run(&mut ch, &mut m, &mut d, 0, 600);
            assert_eq!(d.len(), 20, "{scheme:?} lost packets: {}", d.len());
            assert!(ch.is_drained(), "{scheme:?} did not drain");
        }
    }

    #[test]
    fn deliveries_preserve_per_sender_order() {
        for scheme in Scheme::paper_set(2) {
            let mut ch = Channel::new(0, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            for i in 0..8 {
                ch.enqueue(pkt(i, 5, 0, 0));
            }
            run(&mut ch, &mut m, &mut d, 0, 400);
            let ids: Vec<u64> = d.iter().map(|x| x.pkt.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "{scheme:?} reordered a sender's packets");
        }
    }

    /// Run with the home's ejection stalled except every `period`-th cycle,
    /// which builds real buffer pressure (drops / circulation).
    fn run_with_slow_ejection(
        ch: &mut Channel,
        m: &mut NetworkMetrics,
        d: &mut Vec<Delivery>,
        cycles: u64,
        period: u64,
    ) {
        for now in 0..cycles {
            ch.set_ejection_per_cycle(usize::from(now % period == 0));
            ch.phase_advance();
            ch.phase_arrival(now, m);
            ch.phase_acks(now, m);
            ch.phase_transmit(now, m);
            ch.phase_tokens(now, m);
            ch.phase_eject(now, m, d);
            ch.check_invariants();
        }
    }

    #[test]
    fn handshake_drops_trigger_retransmission_not_loss() {
        // A small buffer plus a slow home port forces drops.
        let mut config = cfg(Scheme::Dhs { setaside: 2 });
        config.input_buffer = 2;
        let mut ch = Channel::new(0, &config);
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..12 {
            ch.enqueue(pkt(i, 4, 0, 0));
            ch.enqueue(pkt(100 + i, 9, 0, 0));
        }
        run_with_slow_ejection(&mut ch, &mut m, &mut d, 2000, 4);
        assert_eq!(d.len(), 24, "all packets eventually delivered");
        assert!(ch.is_drained());
        assert!(m.drops > 0, "slow ejection must force drops");
        assert_eq!(m.drops, m.retransmissions, "every drop is retransmitted");
    }

    #[test]
    fn circulation_never_drops_and_counts_loops() {
        let mut config = cfg(Scheme::DhsCirculation);
        config.input_buffer = 2;
        let mut ch = Channel::new(0, &config);
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..12 {
            ch.enqueue(pkt(i, 4, 0, 0));
            ch.enqueue(pkt(100 + i, 9, 0, 0));
        }
        run_with_slow_ejection(&mut ch, &mut m, &mut d, 2000, 4);
        assert_eq!(d.len(), 24);
        assert_eq!(m.drops, 0, "circulation never drops");
        assert!(m.circulations > 0, "buffer pressure must force circulation");
        assert!(ch.is_drained());
    }

    #[test]
    fn token_slot_respects_credit_limit() {
        // With buffer 4 and ejection stalled... ejection always runs; instead
        // check the reservation invariant holds while many senders compete.
        let mut ch = Channel::new(0, &cfg(Scheme::TokenSlot));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        let mut id = 0;
        for src in 1..16 {
            for _ in 0..4 {
                id += 1;
                ch.enqueue(pkt(id, src, 0, 0));
            }
        }
        run(&mut ch, &mut m, &mut d, 0, 3000);
        assert_eq!(d.len(), 60);
        assert!(ch.is_drained());
        assert_eq!(m.drops, 0, "credit reservation prevents drops");
    }

    #[test]
    fn token_channel_reimburses_credits() {
        let mut ch = Channel::new(0, &cfg(Scheme::TokenChannel));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        // More packets than the 4 credits the token starts with.
        for i in 0..20 {
            ch.enqueue(pkt(i, 8, 0, 0));
        }
        run(&mut ch, &mut m, &mut d, 0, 3000);
        assert_eq!(d.len(), 20, "credits must be reimbursed to finish");
        assert!(ch.is_drained());
    }

    #[test]
    fn basic_dhs_hol_blocks_harder_than_setaside() {
        // One sender, many packets: basic DHS sends 1 per handshake round
        // trip; setaside pipelines them.
        let run_scheme = |scheme| {
            let mut ch = Channel::new(0, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            for i in 0..30 {
                ch.enqueue(pkt(i, 8, 0, 0));
            }
            let mut cycles = 0;
            for now in 0..5000u64 {
                ch.phase_advance();
                ch.phase_arrival(now, &mut m);
                ch.phase_acks(now, &mut m);
                ch.phase_transmit(now, &mut m);
                ch.phase_tokens(now, &mut m);
                ch.phase_eject(now, &mut m, &mut d);
                if d.len() == 30 {
                    cycles = now;
                    break;
                }
            }
            assert!(cycles > 0, "{scheme:?} never finished");
            cycles
        };
        let basic = run_scheme(Scheme::Dhs { setaside: 0 });
        let setaside = run_scheme(Scheme::Dhs { setaside: 4 });
        assert!(
            basic > setaside + 30,
            "setaside should finish much sooner (basic {basic} vs setaside {setaside})"
        );
    }

    #[test]
    fn ghs_holder_sends_back_to_back() {
        // A single GHS sender with setaside should stream packets once it
        // holds the token (1/cycle), unlike basic GHS.
        let mut ch = Channel::new(0, &cfg(Scheme::Ghs { setaside: 4 }));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..4 {
            ch.enqueue(pkt(i, 8, 0, 0));
        }
        run(&mut ch, &mut m, &mut d, 0, 40);
        assert_eq!(d.len(), 4);
        // Sends should be on consecutive cycles: check sent_at spacing.
        let mut sent: Vec<Cycle> = d.iter().map(|x| x.pkt.sent_at).collect();
        sent.sort_unstable();
        for w in sent.windows(2) {
            assert_eq!(w[1] - w[0], 1, "holder should transmit back-to-back");
        }
    }

    #[test]
    fn fairness_sitout_spreads_service() {
        // Two senders, one near the home and one far; near sender floods.
        let run_with = |fairness| {
            let mut config = cfg(Scheme::Dhs { setaside: 4 });
            config.fairness = fairness;
            let mut ch = Channel::new(0, &config);
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            // Both senders keep a deep backlog for the whole horizon; the
            // near node (distance 0) sees every token first.
            for i in 0..300 {
                ch.enqueue(pkt(i, 1, 0, 0)); // near (distance 0)
                ch.enqueue(pkt(1000 + i, 15, 0, 0)); // far (distance 14)
            }
            run(&mut ch, &mut m, &mut d, 0, 150);
            d.iter().filter(|x| x.pkt.src_node == 15).count()
        };
        let without = run_with(FairnessPolicy::None);
        let with = run_with(FairnessPolicy::SitOut {
            serve_quota: 4,
            sit_out: 8,
        });
        assert!(
            with > without,
            "sit-out should help the far node ({with} vs {without})"
        );
    }
}
