//! One MWSR data channel: ring-segment state plus phase orchestration.
//!
//! A [`Channel`] owns the state physically attached to one destination
//! (home) node — the wave-pipelined data [`SlotRing`], the per-sender
//! [`OutQueue`]s, the home input buffer and its ejection pipeline — and
//! orchestrates the per-cycle phases over it. Everything scheme-specific
//! lives in the [`crate::schemes`] pipeline: arbitration (token state
//! machines) in [`crate::schemes::arbiter`], flow control (credit ledgers,
//! the ACK/NACK handshake, retransmit timers) in [`crate::schemes::flow`].
//! The channel is generic over that pairing — `Channel<A: Arbiter, F:
//! Flow>` — so [`crate::network::Network`] compiles one fully inlined step
//! loop per scheme family, while the type defaults (`ArbiterKind`,
//! `FlowKind`) keep a runtime-dispatched `Channel` available for the model
//! checker and unit rigs. The [`crate::network::Network`] orchestrator
//! calls the `phase_*` methods in a fixed order each cycle:
//!
//! 1. `phase_advance`  — light moves one segment,
//! 2. `phase_arrival`  — the home inspects the slot at its segment
//!    (accept / drop+NACK / reinject),
//! 3. `phase_acks`     — handshakes scheduled `R + 1` cycles after each
//!    transmission reach their senders,
//! 4. `phase_transmit` — senders holding grants place flits on free slots,
//! 5. `phase_tokens`   — token emission, sweeping, grabbing, reimbursement,
//! 6. `phase_eject`    — the home drains its input buffer to local cores.
//!
//! A token granted in cycle *t* is used to transmit in *t + 1* (paper Figs.
//! 3 and 5: the token arrives one cycle before the data flit follows it).
//!
//! The per-cycle path is allocation-free and branch-light: ring positions
//! come from lookup tables precomputed at construction, and per-sender
//! predicates live in packed [`Planes`] bitmasks, so the transmit and token
//! phases scan words with `trailing_zeros` instead of probing every node.

use crate::calendar::Calendar;
use crate::config::{FairnessPolicy, NetworkConfig, Scheme};
use crate::metrics::NetworkMetrics;
use crate::outqueue::{OutQueue, SendMode};
use crate::packet::{FlitRef, Packet, PacketArena, PacketRef};
use crate::schemes::{
    AdmissionCtl, Arbiter, ArbiterKind, ArrivalCx, Flow, FlowKind, Planes, TokenCx,
};
use crate::slots::SlotRing;
use crate::topology::Topology;
use pnoc_faults::{ChannelInjector, DataFate, FaultEngine, RecoveryConfig};
use pnoc_obs::EventKind;
use pnoc_sim::Cycle;
use std::cmp::Reverse;
use std::collections::VecDeque;

/// A packet handed to the home node's local cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered packet.
    pub pkt: Packet,
    /// Cycle at which the local core sees it (ejection router pipeline
    /// included).
    pub available_at: Cycle,
}

/// One MWSR channel (see module docs).
///
/// The type parameters select the scheme pairing at compile time; the
/// defaults are the runtime-dispatched wrappers so `Channel` written plain
/// (the model checker, unit rigs) behaves exactly as before.
///
/// `Clone` so the bounded model checker ([`crate::fsm`]) can branch a
/// channel's state when exploring nondeterministic injection choices.
#[derive(Debug, Clone)]
#[allow(clippy::struct_excessive_bools)] // construction-time scheme predicates, not a state machine
pub struct Channel<A = ArbiterKind, F = FlowKind> {
    home: usize,
    topo: Topology,
    scheme: Scheme,
    fairness: FairnessPolicy,
    buffer_cap: usize,
    ejection_per_cycle: usize,
    eject_latency: u64,

    // --- precomputed ring lookups (hot loop: no div/mod per access) ---
    /// The home's ring segment.
    home_seg: usize,
    /// Nodes a token passes per cycle.
    sweep_step: usize,
    /// Fixed handshake delay (`segments + 1`).
    handshake_delay: Cycle,
    /// Downstream distance → node id (`nodes - 1` entries).
    by_distance: Vec<usize>,
    /// Node id → downstream distance from home (`usize::MAX` at the home).
    dist_of: Vec<usize>,
    /// Node id → ring segment.
    seg_of: Vec<usize>,
    /// Whether a transmission removes the packet from its queue (`Forget`
    /// and `Setaside` modes; `HoldHead` keeps it queued until the ACK).
    dec_on_transmit: bool,
    /// Whether transmissions arm sender-side ACK timers (recovery on a
    /// handshake scheme).
    arm_timers: bool,
    /// Whether a flit on the ring *owns* its arena slot (`Forget` mode:
    /// the sender forgot it at transmission). Handshake modes put an
    /// aliased handle on the ring — the sender retains ownership until the
    /// handshake resolves — so arrival-side fates must not free it.
    ring_owns_flits: bool,

    /// Packet payload arena: queues and ring slots move `u32` handles; the
    /// 72-byte payload is written once at injection and read back at
    /// delivery (or freed at its fault/abandon fate).
    arena: PacketArena,
    /// Per-sender output queues, indexed by node id (`senders[home]` unused).
    senders: Vec<OutQueue<PacketRef>>,
    /// The wave-pipelined data ring (arena handles).
    data: SlotRing<FlitRef>,
    /// The home input buffer (≤ `buffer_cap` entries including draining).
    input_queue: VecDeque<Packet>,
    /// Buffer slots still held by flits traversing the ejection router
    /// (a slot is freed only when its flit *leaves* the node, the same rule
    /// credit-based flow control uses for credit return).
    draining: u32,
    /// Slot-release events for draining flits.
    releases: Calendar<()>,
    /// Arbitration state machine (resolved at construction).
    arbiter: A,
    /// Flow-control state (resolved at construction).
    flow: F,

    /// Total queued packets across senders (cheap idle check).
    queued_total: usize,
    /// Per-sender predicate bit-planes, indexed by downstream distance —
    /// refreshed after every queue mutation so phase loops scan packed
    /// words instead of probing every node.
    planes: Planes,
    /// DHS-circulation: a reinjection this cycle suppresses token emission.
    suppress_token: bool,
    /// Per-class admission buckets (`None` when `QoS` is off).
    admission: Option<AdmissionCtl>,
    /// Measured deliveries per sender (fairness accounting).
    pub served_by_sender: Vec<u64>,

    /// Fault injection for this channel (`None` on fault-free runs — every
    /// fault hook below is skipped entirely).
    injector: Option<ChannelInjector>,
    /// Sender-side ACK-timeout retransmission parameters.
    recovery: RecoveryConfig,
}

impl Channel {
    /// Build the channel homed at `home` with the scheme pairing resolved
    /// at runtime ([`ArbiterKind`]/[`FlowKind`] dispatch). The network's
    /// hot path uses [`Channel::with_pipeline`] with concrete types.
    pub fn new(home: usize, cfg: &NetworkConfig) -> Self {
        let (arbiter, flow) = crate::schemes::build(cfg);
        Channel::with_pipeline(home, cfg, arbiter, flow)
    }
}

impl<A: Arbiter, F: Flow> Channel<A, F> {
    /// Build the channel homed at `home` over a concrete (arbiter, flow)
    /// pairing. The pairing must match `cfg.scheme` — [`crate::schemes::build`]
    /// is the canonical constructor of matched pairs.
    pub fn with_pipeline(home: usize, cfg: &NetworkConfig, arbiter: A, flow: F) -> Self {
        let topo = Topology::new(cfg.nodes, cfg.ring_segments);
        let mode = match cfg.scheme {
            Scheme::TokenChannel | Scheme::TokenSlot | Scheme::DhsCirculation => SendMode::Forget,
            Scheme::Ghs { setaside } | Scheme::Dhs { setaside } => {
                if setaside == 0 {
                    SendMode::HoldHead
                } else {
                    SendMode::Setaside(setaside)
                }
            }
        };
        // Each channel forks its own injector stream; forking from a fresh
        // engine per channel is deterministic in (seed, home).
        let injector = if cfg.faults.enabled() {
            Some(FaultEngine::new(cfg.faults, cfg.seed).channel(home))
        } else {
            None
        };
        let mut by_distance = vec![0usize; cfg.nodes - 1];
        let mut dist_of = vec![usize::MAX; cfg.nodes];
        for (d, slot) in by_distance.iter_mut().enumerate() {
            let node = topo.node_at_distance(home, d);
            *slot = node;
            dist_of[node] = d;
        }
        let seg_of = (0..cfg.nodes).map(|n| topo.segment_of(n)).collect();
        Self {
            home,
            topo,
            scheme: cfg.scheme,
            fairness: cfg.fairness,
            buffer_cap: cfg.input_buffer,
            ejection_per_cycle: cfg.ejection_per_cycle,
            eject_latency: cfg.router_latency,
            home_seg: topo.segment_of(home),
            sweep_step: topo.step(),
            handshake_delay: topo.handshake_delay(),
            by_distance,
            dist_of,
            seg_of,
            dec_on_transmit: !matches!(mode, SendMode::HoldHead),
            arm_timers: cfg.recovery.enabled && cfg.scheme.uses_handshake(),
            ring_owns_flits: matches!(mode, SendMode::Forget),
            arena: PacketArena::new(),
            senders: (0..cfg.nodes).map(|_| OutQueue::new(mode)).collect(),
            data: SlotRing::new(cfg.ring_segments),
            input_queue: VecDeque::with_capacity(cfg.input_buffer),
            draining: 0,
            releases: Calendar::new(cfg.router_latency as usize + 2),
            arbiter,
            flow,
            queued_total: 0,
            planes: if cfg.admission.enabled() {
                Planes::with_classes(cfg.nodes - 1)
            } else {
                Planes::new(cfg.nodes - 1)
            },
            suppress_token: false,
            admission: AdmissionCtl::from_policy(&cfg.admission),
            served_by_sender: vec![0; cfg.nodes],
            injector,
            recovery: cfg.recovery,
        }
    }

    /// The home node id.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Enqueue a packet into its sender's output queue (called when the
    /// packet exits the injection router pipeline).
    pub fn enqueue(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.dst_node as usize, self.home);
        debug_assert_ne!(pkt.src_node as usize, self.home, "no self-send");
        let src = pkt.src_node as usize;
        let id = pkt.id;
        let class = pkt.class;
        let handle = self.arena.alloc(pkt);
        self.senders[src].push(PacketRef {
            id,
            handle,
            sends: 0,
            class,
        });
        self.queued_total += 1;
        self.planes.refresh(self.dist_of[src], &self.senders[src]);
    }

    /// Whether every queue, slot, buffer and grant is empty (drain check).
    pub fn is_drained(&self) -> bool {
        self.queued_total == 0
            && self.arena.live() == 0
            && self.data.is_empty()
            && self.input_queue.is_empty()
            && self.draining == 0
            && self.flow.pending_acks() == 0
            && !self.planes.granted.any()
            && self.senders.iter().all(OutQueue::is_idle)
    }

    /// Home input-buffer occupancy, including slots held by flits still in
    /// the ejection router (for tests/inspection).
    pub fn buffer_occupancy(&self) -> usize {
        self.input_queue.len() + self.draining as usize
    }

    /// Snapshot the channel's queue state for the occupancy time-series
    /// (read-only; usable with or without the `obs-trace` feature).
    pub fn occupancy_sample(&self, now: Cycle) -> pnoc_obs::ChannelSample {
        pnoc_obs::ChannelSample::new(
            now,
            self.home,
            self.buffer_occupancy(),
            self.queued_total,
            self.senders.iter().map(OutQueue::setaside_len).sum(),
            self.flow.credits().unwrap_or(0),
            self.arbiter.outstanding_tokens(),
        )
    }

    /// Chaos/test hook: throttle the home's ejection bandwidth to force
    /// buffer pressure (drops, retransmissions, circulation). The normal
    /// configuration path validates `ejection_per_cycle ≥ 1`; this setter
    /// deliberately allows 0 to model a stalled ejection port.
    pub fn set_ejection_per_cycle(&mut self, n: usize) {
        self.ejection_per_cycle = n;
    }

    /// Chaos/test hook: forget every packet id the home has accepted,
    /// disabling duplicate suppression. A retransmission of an
    /// already-delivered packet will then be delivered again — the
    /// intentional bug the model checker's self-test must catch as a
    /// duplicate-delivery counterexample.
    pub fn forget_accepted_ids(&mut self) {
        if let Some(h) = self.flow.handshake_mut() {
            h.accepted_ids.clear();
        }
    }

    /// Phase 1: light advances one segment.
    pub fn phase_advance(&mut self) {
        self.data.advance();
    }

    /// Phase 2: the home inspects the slot at its segment.
    pub fn phase_arrival(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        let _span = crate::spans::span("phase_arrival");
        // Take the flit once; the circulation path puts it back. (Take-once
        // keeps this per-cycle path free of unwrap/expect — determinism lint
        // `no-hot-path-unwrap`.)
        let Some(flit) = self.data.take(self.home_seg) else {
            return;
        };
        // Everything up to the accept decision reads only the flit snapshot,
        // never the arena: under ACK loss a duplicate flit can arrive after
        // the sender's (re-)ACK already freed the slot, and such a stale flit
        // is guaranteed to exit through one of the early returns below (its
        // id is in `accepted_ids` — see [`FlitRef`]). The accept path, which
        // stale flits never reach, is the single arena dereference.
        //
        // Fault fate for the flit's whole flight, decided at the observation
        // point (one draw per arrival, compounded over the flight length).
        if let Some(inj) = self.injector.as_mut() {
            if inj.active() {
                let flight = now.saturating_sub(flit.sent_at).max(1);
                match inj.data_fate(flight) {
                    DataFate::Intact => {}
                    fate @ DataFate::Lost => {
                        // Destroyed in flight: the home never sees it, so no
                        // handshake fires and no buffer slot is touched. A
                        // Forget-mode flit was the payload's last owner.
                        if self.ring_owns_flits {
                            self.arena.free(flit.handle);
                        }
                        m.faults_data_lost += 1;
                        m.trace(
                            now,
                            self.home,
                            flit.src as usize,
                            flit.id,
                            fate.trace_kind(),
                        );
                        self.flow.on_data_lost(m);
                        return;
                    }
                    fate @ DataFate::Corrupt => {
                        // Discarded at the home (handshake schemes NACK it;
                        // the sender's copy stays for the retransmission).
                        if self.ring_owns_flits {
                            self.arena.free(flit.handle);
                        }
                        m.arrivals += 1;
                        m.faults_data_corrupt += 1;
                        m.trace(
                            now,
                            self.home,
                            flit.src as usize,
                            flit.id,
                            fate.trace_kind(),
                        );
                        self.flow.on_data_corrupt(&flit, self.handshake_delay);
                        return;
                    }
                }
            }
        }
        m.arrivals += 1;
        m.trace(
            now,
            self.home,
            flit.src as usize,
            flit.id,
            EventKind::Arrival,
        );
        // Duplicate suppression (recovery only): a retransmission whose
        // original was accepted but whose ACK was lost must not be delivered
        // twice. Discard it and re-ACK so the sender can release its copy.
        //
        // The `sabotage-dup-suppression` feature turns the accepted-id check
        // into a constant `false` so the pnoc-oracle differential harness can
        // prove it detects a real protocol bug; in the default build the
        // `cfg!` folds away and this line is exactly the suppression check.
        if self.recovery.enabled {
            if let Some(h) = self.flow.handshake_mut() {
                if !cfg!(feature = "sabotage-dup-suppression") && h.accepted_ids.contains(flit.id) {
                    m.duplicates_suppressed += 1;
                    m.trace(
                        now,
                        self.home,
                        flit.src as usize,
                        flit.id,
                        EventKind::DuplicateSuppressed,
                    );
                    h.acks.schedule(
                        flit.sent_at + self.handshake_delay,
                        crate::schemes::AckEvent {
                            sender: flit.src as usize,
                            id: flit.id,
                            ok: true,
                        },
                    );
                    return;
                }
            }
        }
        // Accept path: the slot is live (not stale, and handshake senders
        // retain their copy until ACK/abandon). The transmission stamps come
        // from the flit, not the arena — a handshake retransmission restamps
        // the shared payload while an older flit is still in flight, and the
        // delivered copy must carry the stamps of the send that produced it.
        let mut pkt = *self.arena.get(flit.handle);
        pkt.sent_at = flit.sent_at;
        pkt.sends = flit.sends;
        let has_room = self.input_queue.len() + (self.draining as usize) < self.buffer_cap;
        let mut cx = ArrivalCx {
            now,
            home: self.home,
            home_seg: self.home_seg,
            handshake_delay: self.handshake_delay,
            recovery_enabled: self.recovery.enabled,
            has_room,
            handle: flit.handle,
            arena: &mut self.arena,
            input_queue: &mut self.input_queue,
            data: &mut self.data,
            suppress_token: &mut self.suppress_token,
        };
        self.flow.accept(pkt, &mut cx, m);
    }

    /// Phase 3: handshakes reach their senders, and expired ACK timers fire.
    /// A statically-folded no-op for schemes without a handshake channel.
    pub fn phase_acks(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        let _span = crate::spans::span("phase_acks");
        self.flow.phase_acks(
            now,
            self.home,
            &mut self.senders,
            &mut self.arena,
            &self.dist_of,
            &mut self.planes,
            &mut self.queued_total,
            self.injector.as_mut(),
            &self.recovery,
            self.handshake_delay,
            m,
        );
    }

    /// Phase 4: senders with grants place flits on free slots at their
    /// segments (one per sender per cycle). The granted bit-plane *is* the
    /// active-sender list, pre-sorted by downstream distance — the loop is
    /// a word scan, with no per-cycle sort and no compaction.
    pub fn phase_transmit(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        let _span = crate::spans::span("phase_transmit");
        if !self.planes.granted.any() {
            return;
        }
        // Deterministic service order: ascending downstream distance from
        // home (bit index order). Transmitting at distance `d` only mutates
        // that sender's own predicate bits, so rescanning from `d + 1` sees
        // exactly the grant set that existed at phase entry.
        let len = self.by_distance.len();
        let mut next = self.planes.granted.first_in(0, len);
        while let Some(d) = next {
            let node = self.by_distance[d];
            let seg = self.seg_of[node];
            if self.data.is_free(seg) {
                if let Some(sent) = self.senders[node].transmit(now) {
                    // Sync the arena payload with this transmission; the
                    // ring slot carries the handle plus the home-side
                    // snapshot (see [`FlitRef`]).
                    let pkt = self.arena.get_mut(sent.handle);
                    pkt.sent_at = now;
                    pkt.sends = sent.sends;
                    let src_node = pkt.src_node;
                    if sent.sends == 1 && pkt.measured {
                        m.queue_wait.record((now - pkt.enqueued_at) as f64);
                    }
                    m.sends += 1;
                    m.trace(
                        now,
                        self.home,
                        node,
                        sent.id,
                        if sent.sends > 1 {
                            EventKind::Retransmit
                        } else {
                            EventKind::Send
                        },
                    );
                    if self.dec_on_transmit {
                        // The packet left the queue (Forget or Setaside).
                        self.queued_total -= 1;
                    }
                    if self.arm_timers {
                        // Arm the ACK timer for this attempt. The base
                        // timeout exceeds the handshake round trip, so on a
                        // healthy channel the ACK always wins the race and
                        // the timer goes stale.
                        if let Some(h) = self.flow.handshake_mut() {
                            let deadline = now + self.recovery.timeout_for_attempt(sent.sends);
                            h.ack_timers.push(Reverse((deadline, node, sent.id)));
                        }
                    }
                    self.data.put(
                        seg,
                        FlitRef {
                            id: sent.id,
                            handle: sent.handle,
                            sends: sent.sends,
                            src: src_node,
                            sent_at: now,
                        },
                    );
                    self.planes.refresh(d, &self.senders[node]);
                }
            }
            next = self.planes.granted.first_in(d + 1, len);
        }
    }

    /// Phase 5: token emission, sweeping, grabbing, reimbursement — all
    /// delegated to the arbiter/flow pairing resolved at construction.
    pub fn phase_tokens(&mut self, now: Cycle, m: &mut NetworkMetrics) {
        let _span = crate::spans::span("phase_tokens");
        if let Some(ctl) = self.admission.as_mut() {
            ctl.tick(now);
        }
        let mut cx = TokenCx {
            now,
            home: self.home,
            fairness: self.fairness,
            nodes: self.topo.nodes,
            step: self.sweep_step,
            watchdog: 2 * self.handshake_delay,
            by_distance: &self.by_distance,
            dist_of: &self.dist_of,
            senders: &mut self.senders,
            planes: &mut self.planes,
            buffered: self.input_queue.len() + self.draining as usize,
            buffer_cap: self.buffer_cap,
            suppress_token: &mut self.suppress_token,
            admission: self.admission.as_mut(),
            injector: self.injector.as_mut(),
        };
        self.arbiter.step(&mut self.flow, &mut cx, m);
    }

    /// Phase 6: the home drains its input buffer toward the local cores.
    pub fn phase_eject(
        &mut self,
        now: Cycle,
        m: &mut NetworkMetrics,
        deliveries: &mut Vec<Delivery>,
    ) {
        let _span = crate::spans::span("phase_eject");
        // Flits leaving the ejection router release their buffer slots; only
        // now does a freed slot become a reimbursable credit.
        if self.releases.is_empty() {
            self.releases.fast_forward(now);
        } else {
            for () in self.releases.drain(now) {
                assert!(self.draining > 0, "draining underflow");
                self.draining -= 1;
                self.flow.on_slot_freed();
            }
        }
        // Fault: transient drain stall — the receiving core stops accepting.
        // Flits already inside the ejection router (above) still complete;
        // no new ejection starts this cycle.
        if let Some(inj) = self.injector.as_mut() {
            if inj.eject_stalled(now) {
                m.stall_cycles += 1;
                m.trace(
                    now,
                    self.home,
                    self.home,
                    pnoc_obs::NO_PACKET,
                    EventKind::EjectStall,
                );
                return;
            }
        }
        for _ in 0..self.ejection_per_cycle {
            let Some(pkt) = self.input_queue.pop_front() else {
                break;
            };
            let available_at = now + self.eject_latency;
            if self.eject_latency == 0 {
                // Zero-latency ejection frees the slot immediately.
                self.flow.on_slot_freed();
            } else {
                self.draining += 1;
                self.releases.schedule(available_at, ());
            }
            m.delivered += 1;
            m.trace(
                now,
                self.home,
                pkt.src_node as usize,
                pkt.id,
                EventKind::Eject,
            );
            if pkt.measured {
                m.delivered_measured += 1;
                m.record_latency_class(pkt.class, pkt.latency_at(available_at) as f64);
                self.served_by_sender[pkt.src_node as usize] += 1;
            }
            deliveries.push(Delivery { pkt, available_at });
        }
    }

    /// Check the channel's internal invariants (buffer bounds, queue
    /// accounting, reservation conservation, bit-plane exactness),
    /// reporting the first violation instead of panicking. The runtime
    /// [`crate::audit::InvariantAuditor`] and the bounded model checker
    /// route through this so a violation becomes a diagnosable trace rather
    /// than an abort.
    pub fn try_check_invariants(&self) -> Result<(), String> {
        if self.input_queue.len() + self.draining as usize > self.buffer_cap {
            return Err(format!(
                "buffer overflow: {} queued + {} draining > cap {}",
                self.input_queue.len(),
                self.draining,
                self.buffer_cap
            ));
        }
        let queued: usize = self.senders.iter().map(OutQueue::backlog).sum();
        if queued != self.queued_total {
            return Err(format!(
                "queued_total drifted: counted {queued}, cached {}",
                self.queued_total
            ));
        }
        // Packet-payload conservation: every live arena slot is owned by
        // exactly one queue entry, setaside entry, or (Forget mode)
        // in-flight ring slot. Handshake flits on the ring alias their
        // sender's retained copy and must not be counted twice.
        let setaside_total: usize = self.senders.iter().map(OutQueue::setaside_len).sum();
        let ring_owned = if self.ring_owns_flits {
            self.data.occupied()
        } else {
            0
        };
        let expected_live = self.queued_total + setaside_total + ring_owned;
        if self.arena.live() != expected_live {
            return Err(format!(
                "arena leak: {} live payloads, {} owners \
                 ({} queued + {} setaside + {} ring-owned)",
                self.arena.live(),
                expected_live,
                self.queued_total,
                setaside_total,
                ring_owned
            ));
        }
        if matches!(self.scheme, Scheme::TokenSlot) {
            let committed = self.input_queue.len()
                + self.draining as usize
                + self.flow.inflight() as usize
                + self.flow.lost_reservations() as usize
                + self.arbiter.outstanding_tokens();
            if committed > self.buffer_cap {
                return Err(format!(
                    "token-slot reservation accounting violated: \
                     {committed} committed > cap {}",
                    self.buffer_cap
                ));
            }
        }
        // Every bit-plane must equal its scalar predicate exactly — the
        // phase loops trust the planes without re-probing the queues.
        for (d, &n) in self.by_distance.iter().enumerate() {
            let q = &self.senders[n];
            let checks = [
                ("sendable", self.planes.sendable.get(d), q.sendable() > 0),
                ("granted", self.planes.granted.get(d), q.granted() > 0),
                ("backlogged", self.planes.backlogged.get(d), q.backlog() > 0),
                (
                    "unresolved",
                    self.planes.unresolved.get(d),
                    q.unresolved_len() > 0,
                ),
            ];
            for (plane, got, want) in checks {
                if got != want {
                    return Err(format!(
                        "{plane} plane drifted at distance {d} (node {n}): \
                         plane {got}, queue {want}"
                    ));
                }
            }
            // Per-class views (admission only): head-class predicates must
            // partition the parent plane, and backlog bits must match the
            // queue's class mask.
            if let Some(cp) = self.planes.classes.as_deref() {
                let head = q.head_class();
                let mask = q.class_backlog_mask();
                for c in 0..pnoc_traffic::MAX_CLASSES {
                    let is_head = head == Some(u8::try_from(c).unwrap_or(u8::MAX));
                    let class_checks = [
                        (
                            "class-sendable",
                            cp.sendable[c].get(d),
                            q.sendable() > 0 && is_head,
                        ),
                        (
                            "class-granted",
                            cp.granted[c].get(d),
                            q.granted() > 0 && is_head,
                        ),
                        (
                            "class-backlogged",
                            cp.backlogged[c].get(d),
                            mask & (1 << c) != 0,
                        ),
                    ];
                    for (plane, got, want) in class_checks {
                        if got != want {
                            return Err(format!(
                                "{plane} plane drifted at distance {d} (node {n}) \
                                 class {c}: plane {got}, queue {want}"
                            ));
                        }
                    }
                }
            }
        }
        // Admission buckets can never exceed their burst capacity.
        if let Some(ctl) = &self.admission {
            let (tokens, burst) = (ctl.tokens(), ctl.burst());
            for c in 0..pnoc_traffic::MAX_CLASSES {
                if tokens[c] > burst[c] {
                    return Err(format!(
                        "admission bucket overflow for class {c}: \
                         {} tokens > burst {}",
                        tokens[c], burst[c]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Assert the channel's internal invariants. Tests call this after every
    /// cycle; it is cheap enough to use while debugging scheme changes.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        if let Err(why) = self.try_check_invariants() {
            panic!("channel {} invariant violated: {why}", self.home);
        }
    }

    /// Snapshot the observable state the [`crate::audit::InvariantAuditor`]
    /// needs for its cross-field conservation checks, reusing `out`'s
    /// allocations (the auditor calls this every sampled cycle).
    pub fn audit_view_into(&self, out: &mut crate::audit::ChannelAuditView) {
        out.home = self.home;
        out.scheme = self.scheme;
        out.buffer_cap = self.buffer_cap;
        out.input_queue_ids.clear();
        out.input_queue_ids
            .extend(self.input_queue.iter().map(|p| p.id));
        out.draining = self.draining;
        out.ring_ids.clear();
        out.ring_ids
            .extend(self.data.iter_occupied().map(|(_, &f)| f.id));
        out.queue_ids.clear();
        out.setaside_ids.clear();
        out.unresolved_ids.clear();
        let mut granted_total = 0u32;
        for q in &self.senders {
            out.queue_ids.extend(q.iter_queue().map(|p| p.id));
            out.setaside_ids.extend(q.iter_setaside().map(|p| p.id));
            out.unresolved_ids.extend(q.unresolved_ids());
            granted_total += q.granted();
        }
        out.granted_total = granted_total;
        out.pending_acks.clear();
        out.armed_timer_ids.clear();
        if let Some(h) = self.flow.handshake() {
            out.pending_acks
                .extend(h.acks.pending_iter().map(|(_, ev)| (ev.id, ev.ok)));
            out.armed_timer_ids
                .extend(h.ack_timers.iter().map(|&Reverse((_, _, id))| id));
        }
        out.credits = self.flow.credits();
        out.outstanding_tokens = self.arbiter.outstanding_tokens();
        out.uncommitted = self.flow.uncommitted();
        out.inflight = self.flow.inflight();
        out.lost_reservations = self.flow.lost_reservations();
        out.leaked_credits = self.flow.leaked_credits();
        out.recovery_enabled = self.recovery.enabled;
        out.faults_active = self.injector.as_ref().is_some_and(ChannelInjector::active);
        out.admission_enabled = self.admission.is_some();
        out.class_backlog = [0; pnoc_traffic::MAX_CLASSES];
        if let Some(ctl) = &self.admission {
            out.admission_period = ctl.period();
            out.admission_tokens = ctl.tokens();
            out.admission_burst = ctl.burst();
            out.class_granted = ctl.granted_by_class;
            for q in &self.senders {
                let mask = q.class_backlog_mask();
                for c in 0..pnoc_traffic::MAX_CLASSES {
                    if mask & (1 << c) != 0 {
                        out.class_backlog[c] +=
                            q.iter_queue().filter(|p| usize::from(p.class) == c).count();
                    }
                }
            }
        } else {
            out.admission_period = 0;
            out.admission_tokens = [0; pnoc_traffic::MAX_CLASSES];
            out.admission_burst = [0; pnoc_traffic::MAX_CLASSES];
            out.class_granted = [0; pnoc_traffic::MAX_CLASSES];
        }
    }

    /// Allocating convenience wrapper around [`Channel::audit_view_into`].
    pub fn audit_view(&self) -> crate::audit::ChannelAuditView {
        let mut out = crate::audit::ChannelAuditView::default();
        self.audit_view_into(&mut out);
        out
    }

    /// Append a canonical encoding of the channel's complete dynamic state
    /// to `out`, with every absolute cycle re-based against `now` so two
    /// states that differ only by a time shift produce identical keys. The
    /// bounded model checker ([`crate::fsm`]) dedupes its search on this.
    ///
    /// Excluded on purpose: static configuration (scheme, topology,
    /// recovery parameters) and metrics-only packet fields (`generated_at`,
    /// `enqueued_at`, `measured`, `tag`) — they never influence a future
    /// transition.
    pub fn state_key(&self, now: Cycle, out: &mut Vec<u64>) {
        // Field separator: no id/count collides with it in small-config
        // model-checking runs.
        const SEP: u64 = u64::MAX;
        for q in &self.senders {
            out.push(SEP);
            for p in q.iter_queue() {
                out.push(p.id);
                out.push(u64::from(p.sends));
            }
            out.push(SEP - 1);
            out.push(u64::from(q.head_is_pending()));
            for p in q.iter_setaside() {
                out.push(p.id);
                out.push(u64::from(p.sends));
            }
            out.push(SEP - 1);
            out.push(u64::from(q.granted()));
            let (serves, sit_until) = q.fairness_state();
            out.push(u64::from(serves));
            out.push(sit_until.saturating_sub(now));
        }
        out.push(SEP);
        for (seg, &f) in self.data.iter_occupied() {
            out.push(seg as u64);
            out.push(f.id);
            out.push(u64::from(f.sends));
            // `sent_at` schedules the handshake (`sent_at + R + 1`), so its
            // age relative to `now` is behaviorally relevant.
            out.push(now.saturating_sub(f.sent_at));
        }
        out.push(SEP);
        for p in &self.input_queue {
            out.push(p.id);
        }
        out.push(SEP);
        out.push(u64::from(self.draining));
        for (at, ()) in self.releases.pending_iter() {
            out.push(at - now);
        }
        out.push(SEP);
        if let Some(h) = self.flow.handshake() {
            for (at, ev) in h.acks.pending_iter() {
                out.push(at - now);
                out.push(ev.sender as u64);
                out.push(ev.id);
                out.push(u64::from(ev.ok));
            }
        }
        out.push(SEP);
        self.arbiter
            .state_key_into(now, self.flow.credits().map_or(SEP, u64::from), out);
        out.push(SEP);
        // The granted plane iterates by distance; encode the node ids in
        // canonical (sorted) order by sorting the appended suffix in place
        // — no scratch vector.
        let start = out.len();
        out.extend(
            self.planes
                .granted
                .iter()
                .map(|d| self.by_distance[d] as u64),
        );
        out[start..].sort_unstable();
        out.push(SEP);
        out.push(u64::from(self.flow.uncommitted()));
        out.push(u64::from(self.flow.inflight()));
        out.push(u64::from(self.suppress_token));
        out.push(u64::from(self.flow.lost_reservations()));
        out.push(u64::from(self.flow.leaked_credits()));
        out.push(SEP);
        if let Some(h) = self.flow.handshake() {
            let mut timers: Vec<(u64, u64, u64)> = h
                .ack_timers
                .iter()
                .map(|&Reverse((deadline, sender, id))| {
                    (deadline.saturating_sub(now), sender as u64, id)
                })
                .collect();
            timers.sort_unstable();
            for (d, s, id) in timers {
                out.push(d);
                out.push(s);
                out.push(id);
            }
        }
        out.push(SEP);
        if let Some(h) = self.flow.handshake() {
            out.extend(h.accepted_ids.iter());
        }
        out.push(SEP);
        if let Some(ctl) = &self.admission {
            // Bucket levels plus the phase within the refill period: two
            // states with the same levels but different distances to the
            // next refill behave differently.
            out.push(now % u64::from(ctl.period()));
            for t in ctl.tokens() {
                out.push(u64::from(t));
            }
        }
        out.push(SEP);
        if let Some(inj) = &self.injector {
            inj.state_key(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn cfg(scheme: Scheme) -> NetworkConfig {
        NetworkConfig::small(scheme) // 16 nodes, 4 segments, buffer 4
    }

    fn pkt(id: u64, src: usize, dst: usize, now: Cycle) -> Packet {
        Packet {
            id,
            src_core: (src * 2) as u32,
            src_node: src as u32,
            dst_node: dst as u32,
            kind: PacketKind::Data,
            generated_at: now,
            enqueued_at: now,
            sent_at: 0,
            sends: 0,
            measured: true,
            tag: 0,
            class: 0,
        }
    }

    /// Run `cycles` cycles of a single channel in isolation.
    fn run(
        ch: &mut Channel,
        m: &mut NetworkMetrics,
        deliveries: &mut Vec<Delivery>,
        from: Cycle,
        cycles: u64,
    ) {
        for now in from..from + cycles {
            ch.phase_advance();
            ch.phase_arrival(now, m);
            ch.phase_acks(now, m);
            ch.phase_transmit(now, m);
            ch.phase_tokens(now, m);
            ch.phase_eject(now, m, deliveries);
            ch.check_invariants();
        }
    }

    fn deliver_one(scheme: Scheme, src: usize) -> (Vec<Delivery>, NetworkMetrics) {
        let mut ch = Channel::new(0, &cfg(scheme));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        ch.enqueue(pkt(1, src, 0, 0));
        run(&mut ch, &mut m, &mut d, 0, 64);
        (d, m)
    }

    #[test]
    fn every_scheme_delivers_a_single_packet() {
        for scheme in Scheme::paper_set(2) {
            let (d, m) = deliver_one(scheme, 9);
            assert_eq!(d.len(), 1, "{scheme:?} failed to deliver");
            assert_eq!(d[0].pkt.id, 1);
            assert_eq!(m.delivered_measured, 1);
            assert_eq!(m.drops, 0);
        }
    }

    #[test]
    fn ring_latency_is_distance_independent_at_zero_load() {
        // In a token ring, token-wait + data-flight ≈ one full loop no matter
        // where the sender sits: a sender near the home waits longer for the
        // token but its data arrives quickly, and vice versa. Check the two
        // extremes agree to within a couple of cycles and land near the
        // round-trip time.
        let (d_near, _) = deliver_one(Scheme::Dhs { setaside: 2 }, 15); // 1 hop upstream of home
        let (d_far, _) = deliver_one(Scheme::Dhs { setaside: 2 }, 1); // almost a full loop
        let lat_near = i64::try_from(d_near[0].pkt.latency_at(d_near[0].available_at)).unwrap();
        let lat_far = i64::try_from(d_far[0].pkt.latency_at(d_far[0].available_at)).unwrap();
        assert!(
            (lat_far - lat_near).abs() <= 2,
            "ring latency should be ~flat ({lat_far} vs {lat_near})"
        );
        // 4-segment ring + 2-cycle eject router: zero-load latency ≈ 6–9.
        assert!((4..=10).contains(&lat_near), "zero-load latency {lat_near}");
    }

    #[test]
    fn channel_drains_after_burst() {
        for scheme in Scheme::paper_set(2) {
            let mut ch = Channel::new(3, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            let mut id = 0;
            for src in [0usize, 5, 9, 12] {
                for _ in 0..5 {
                    id += 1;
                    ch.enqueue(pkt(id, src, 3, 0));
                }
            }
            run(&mut ch, &mut m, &mut d, 0, 600);
            assert_eq!(d.len(), 20, "{scheme:?} lost packets: {}", d.len());
            assert!(ch.is_drained(), "{scheme:?} did not drain");
        }
    }

    #[test]
    fn deliveries_preserve_per_sender_order() {
        for scheme in Scheme::paper_set(2) {
            let mut ch = Channel::new(0, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            for i in 0..8 {
                ch.enqueue(pkt(i, 5, 0, 0));
            }
            run(&mut ch, &mut m, &mut d, 0, 400);
            let ids: Vec<u64> = d.iter().map(|x| x.pkt.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "{scheme:?} reordered a sender's packets");
        }
    }

    /// Run with the home's ejection stalled except every `period`-th cycle,
    /// which builds real buffer pressure (drops / circulation).
    fn run_with_slow_ejection(
        ch: &mut Channel,
        m: &mut NetworkMetrics,
        d: &mut Vec<Delivery>,
        cycles: u64,
        period: u64,
    ) {
        for now in 0..cycles {
            ch.set_ejection_per_cycle(usize::from(now % period == 0));
            ch.phase_advance();
            ch.phase_arrival(now, m);
            ch.phase_acks(now, m);
            ch.phase_transmit(now, m);
            ch.phase_tokens(now, m);
            ch.phase_eject(now, m, d);
            ch.check_invariants();
        }
    }

    #[test]
    fn handshake_drops_trigger_retransmission_not_loss() {
        // A small buffer plus a slow home port forces drops.
        let mut config = cfg(Scheme::Dhs { setaside: 2 });
        config.input_buffer = 2;
        let mut ch = Channel::new(0, &config);
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..12 {
            ch.enqueue(pkt(i, 4, 0, 0));
            ch.enqueue(pkt(100 + i, 9, 0, 0));
        }
        run_with_slow_ejection(&mut ch, &mut m, &mut d, 2000, 4);
        assert_eq!(d.len(), 24, "all packets eventually delivered");
        assert!(ch.is_drained());
        assert!(m.drops > 0, "slow ejection must force drops");
        assert_eq!(m.drops, m.retransmissions, "every drop is retransmitted");
    }

    #[test]
    fn circulation_never_drops_and_counts_loops() {
        let mut config = cfg(Scheme::DhsCirculation);
        config.input_buffer = 2;
        let mut ch = Channel::new(0, &config);
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..12 {
            ch.enqueue(pkt(i, 4, 0, 0));
            ch.enqueue(pkt(100 + i, 9, 0, 0));
        }
        run_with_slow_ejection(&mut ch, &mut m, &mut d, 2000, 4);
        assert_eq!(d.len(), 24);
        assert_eq!(m.drops, 0, "circulation never drops");
        assert!(m.circulations > 0, "buffer pressure must force circulation");
        assert!(ch.is_drained());
    }

    #[test]
    fn token_slot_respects_credit_limit() {
        // With buffer 4 and ejection stalled... ejection always runs; instead
        // check the reservation invariant holds while many senders compete.
        let mut ch = Channel::new(0, &cfg(Scheme::TokenSlot));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        let mut id = 0;
        for src in 1..16 {
            for _ in 0..4 {
                id += 1;
                ch.enqueue(pkt(id, src, 0, 0));
            }
        }
        run(&mut ch, &mut m, &mut d, 0, 3000);
        assert_eq!(d.len(), 60);
        assert!(ch.is_drained());
        assert_eq!(m.drops, 0, "credit reservation prevents drops");
    }

    #[test]
    fn token_channel_reimburses_credits() {
        let mut ch = Channel::new(0, &cfg(Scheme::TokenChannel));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        // More packets than the 4 credits the token starts with.
        for i in 0..20 {
            ch.enqueue(pkt(i, 8, 0, 0));
        }
        run(&mut ch, &mut m, &mut d, 0, 3000);
        assert_eq!(d.len(), 20, "credits must be reimbursed to finish");
        assert!(ch.is_drained());
    }

    #[test]
    fn basic_dhs_hol_blocks_harder_than_setaside() {
        // One sender, many packets: basic DHS sends 1 per handshake round
        // trip; setaside pipelines them.
        let run_scheme = |scheme| {
            let mut ch = Channel::new(0, &cfg(scheme));
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            for i in 0..30 {
                ch.enqueue(pkt(i, 8, 0, 0));
            }
            let mut cycles = 0;
            for now in 0..5000u64 {
                ch.phase_advance();
                ch.phase_arrival(now, &mut m);
                ch.phase_acks(now, &mut m);
                ch.phase_transmit(now, &mut m);
                ch.phase_tokens(now, &mut m);
                ch.phase_eject(now, &mut m, &mut d);
                if d.len() == 30 {
                    cycles = now;
                    break;
                }
            }
            assert!(cycles > 0, "{scheme:?} never finished");
            cycles
        };
        let basic = run_scheme(Scheme::Dhs { setaside: 0 });
        let setaside = run_scheme(Scheme::Dhs { setaside: 4 });
        assert!(
            basic > setaside + 30,
            "setaside should finish much sooner (basic {basic} vs setaside {setaside})"
        );
    }

    #[test]
    fn ghs_holder_sends_back_to_back() {
        // A single GHS sender with setaside should stream packets once it
        // holds the token (1/cycle), unlike basic GHS.
        let mut ch = Channel::new(0, &cfg(Scheme::Ghs { setaside: 4 }));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..4 {
            ch.enqueue(pkt(i, 8, 0, 0));
        }
        run(&mut ch, &mut m, &mut d, 0, 40);
        assert_eq!(d.len(), 4);
        // Sends should be on consecutive cycles: check sent_at spacing.
        let mut sent: Vec<Cycle> = d.iter().map(|x| x.pkt.sent_at).collect();
        sent.sort_unstable();
        for w in sent.windows(2) {
            assert_eq!(w[1] - w[0], 1, "holder should transmit back-to-back");
        }
    }

    #[test]
    fn fairness_sitout_spreads_service() {
        // Two senders, one near the home and one far; near sender floods.
        let run_with = |fairness| {
            let mut config = cfg(Scheme::Dhs { setaside: 4 });
            config.fairness = fairness;
            let mut ch = Channel::new(0, &config);
            let mut m = NetworkMetrics::new();
            let mut d = Vec::new();
            // Both senders keep a deep backlog for the whole horizon; the
            // near node (distance 0) sees every token first.
            for i in 0..300 {
                ch.enqueue(pkt(i, 1, 0, 0)); // near (distance 0)
                ch.enqueue(pkt(1000 + i, 15, 0, 0)); // far (distance 14)
            }
            run(&mut ch, &mut m, &mut d, 0, 150);
            d.iter().filter(|x| x.pkt.src_node == 15).count()
        };
        let without = run_with(FairnessPolicy::None);
        let with = run_with(FairnessPolicy::SitOut {
            serve_quota: 4,
            sit_out: 8,
        });
        assert!(
            with > without,
            "sit-out should help the far node ({with} vs {without})"
        );
    }

    #[test]
    fn audit_view_into_reuses_buffers() {
        let mut ch = Channel::new(0, &cfg(Scheme::Dhs { setaside: 2 }));
        let mut m = NetworkMetrics::new();
        let mut d = Vec::new();
        for i in 0..6 {
            ch.enqueue(pkt(i, 4, 0, 0));
        }
        run(&mut ch, &mut m, &mut d, 0, 5);
        let mut view = crate::audit::ChannelAuditView::default();
        ch.audit_view_into(&mut view);
        let fresh = ch.audit_view();
        assert_eq!(view.queue_ids, fresh.queue_ids);
        assert_eq!(view.unresolved_ids, fresh.unresolved_ids);
        // Refill after more cycles: stale content must be fully replaced.
        run(&mut ch, &mut m, &mut d, 5, 20);
        ch.audit_view_into(&mut view);
        let fresh = ch.audit_view();
        assert_eq!(view.queue_ids, fresh.queue_ids);
        assert_eq!(view.input_queue_ids, fresh.input_queue_ids);
        assert_eq!(view.pending_acks, fresh.pending_acks);
    }
}
