//! A bucket calendar queue for short fixed-horizon event scheduling.
//!
//! The simulator schedules only near-future events (handshake arrivals at
//! `send + R + 1`, router-pipeline exits at `+2`), so a ring of cycle buckets
//! beats a priority queue: O(1) insert, O(bucket) drain, no allocation in the
//! steady state.

use pnoc_sim::Cycle;

/// Events scheduled at absolute cycles within a bounded horizon.
///
/// The bucket for an absolute cycle is located cursor-relative: `cursor`
/// tracks the bucket holding `drained_up_to`, so the per-cycle hot path
/// (`schedule` and `drain`) finds its bucket with an add and one
/// conditional wrap — no integer division or modulo.
#[derive(Debug, Clone)]
pub struct Calendar<T> {
    buckets: Vec<Vec<T>>,
    /// The earliest cycle that may still hold events; buckets before it are
    /// drained. Used to catch horizon violations.
    drained_up_to: Cycle,
    /// Bucket index of `drained_up_to`; always `< buckets.len()`.
    cursor: usize,
    /// Total events across all buckets — O(1) emptiness for per-cycle
    /// callers, which skip the drain entirely on quiet cycles (see
    /// [`Calendar::fast_forward`]).
    len: usize,
}

impl<T> Calendar<T> {
    /// A calendar able to schedule up to `horizon` cycles ahead.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            drained_up_to: 0,
            cursor: 0,
            len: 0,
        }
    }

    /// Maximum look-ahead in cycles.
    pub fn horizon(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for an absolute cycle `at >= drained_up_to` within the
    /// horizon: `cursor` steps forward by the cycle delta, wrapped once
    /// (the delta is `< horizon`, so a single conditional subtract lands
    /// back in range).
    #[inline]
    fn bucket_of(&self, at: Cycle) -> usize {
        let h = self.buckets.len();
        let mut delta = (at - self.drained_up_to) as usize;
        if delta >= h {
            // Cold: only a drain that skips a full horizon ahead (schedule
            // asserts the delta is within the horizon).
            delta %= h;
        }
        let idx = self.cursor + delta;
        if idx >= h {
            idx - h
        } else {
            idx
        }
    }

    /// Schedule `event` at absolute cycle `at`. `at` must be within
    /// `[now, now + horizon)` where `now` is the next cycle to be drained.
    pub fn schedule(&mut self, at: Cycle, event: T) {
        assert!(
            at >= self.drained_up_to,
            "scheduling into the past: {} < {}",
            at,
            self.drained_up_to
        );
        assert!(
            at < self.drained_up_to + self.buckets.len() as Cycle,
            "event at {} beyond calendar horizon {}",
            at,
            self.buckets.len()
        );
        let idx = self.bucket_of(at);
        self.buckets[idx].push(event);
        self.len += 1;
    }

    /// Drain every event scheduled for cycle `now`. Must be called with
    /// strictly increasing `now` values (one drain per cycle). Returns a
    /// draining iterator over the bucket — its allocation stays with the
    /// calendar and is reused next time the ring wraps, so the steady-state
    /// cycle loop never allocates here.
    pub fn drain(&mut self, now: Cycle) -> std::vec::Drain<'_, T> {
        debug_assert!(
            now >= self.drained_up_to,
            "draining cycle {now} twice (already at {})",
            self.drained_up_to
        );
        let idx = if now >= self.drained_up_to {
            self.bucket_of(now)
        } else {
            // Contract violation (debug builds assert above); stay in
            // bounds rather than underflow.
            self.cursor
        };
        self.drained_up_to = now + 1;
        self.cursor = if idx + 1 >= self.buckets.len() {
            0
        } else {
            idx + 1
        };
        self.len -= self.buckets[idx].len();
        self.buckets[idx].drain(..)
    }

    /// O(1) stand-in for [`Calendar::drain`] on a calendar known to be
    /// empty: advances the drain frontier to `now + 1` without touching any
    /// bucket. Per-cycle callers pair it with [`Calendar::is_empty`] so
    /// quiet cycles cost two loads instead of a bucket lookup — and the
    /// frontier stays current, which keeps [`Calendar::schedule`]'s horizon
    /// check meaningful.
    pub fn fast_forward(&mut self, now: Cycle) {
        debug_assert!(self.len == 0, "fast_forward on a non-empty calendar");
        debug_assert!(
            now >= self.drained_up_to,
            "fast-forwarding cycle {now} twice (already at {})",
            self.drained_up_to
        );
        // With every bucket empty the cursor↔cycle pairing is
        // unconstrained; re-anchor at bucket 0 deterministically.
        self.drained_up_to = now + 1;
        self.cursor = 0;
    }

    /// Total scheduled events not yet drained.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled (O(1)).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate pending events as `(cycle, event)` in cycle order (events
    /// within one cycle come in insertion order). Each bucket index maps to
    /// exactly one absolute cycle in `[drained_up_to, drained_up_to + h)`,
    /// so the schedule is fully reconstructible — introspection for the
    /// invariant auditor and the model checker.
    pub fn pending_events(&self) -> Vec<(Cycle, &T)> {
        self.pending_iter().collect()
    }

    /// Allocation-free form of [`Calendar::pending_events`]: iterate pending
    /// events as `(cycle, event)` in cycle order without materialising a
    /// vector (used by the per-cycle audit snapshot path).
    pub fn pending_iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        let h = self.buckets.len();
        (0..h).flat_map(move |off| {
            let idx = if self.cursor + off >= h {
                self.cursor + off - h
            } else {
                self.cursor + off
            };
            self.buckets[idx]
                .iter()
                .map(move |ev| (self.drained_up_to + off as Cycle, ev))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_drain_in_order() {
        let mut c: Calendar<u32> = Calendar::new(8);
        c.schedule(3, 30);
        c.schedule(1, 10);
        c.schedule(3, 31);
        assert_eq!(c.pending(), 3);
        assert_eq!(c.drain(0).next(), None);
        assert_eq!(c.drain(1).collect::<Vec<_>>(), vec![10]);
        assert_eq!(c.drain(2).next(), None);
        assert_eq!(c.drain(3).collect::<Vec<_>>(), vec![30, 31]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn wraps_around_horizon() {
        let mut c: Calendar<u32> = Calendar::new(4);
        for t in 0..20 {
            c.schedule(t + 3, t as u32);
            let drained: Vec<u32> = c.drain(t).collect();
            if t >= 3 {
                assert_eq!(drained, vec![(t - 3) as u32]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond calendar horizon")]
    fn rejects_beyond_horizon() {
        let mut c: Calendar<u32> = Calendar::new(4);
        c.schedule(4, 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past() {
        let mut c: Calendar<u32> = Calendar::new(4);
        c.drain(0);
        c.schedule(0, 1);
    }

    #[test]
    fn schedule_at_now_is_legal_before_drain() {
        let mut c: Calendar<u32> = Calendar::new(4);
        c.schedule(0, 5);
        assert_eq!(c.drain(0).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn fast_forward_matches_a_run_of_empty_drains() {
        let mut a: Calendar<u32> = Calendar::new(8);
        let mut b: Calendar<u32> = Calendar::new(8);
        for t in 0..20 {
            assert_eq!(a.drain(t).next(), None);
        }
        assert!(b.is_empty());
        b.fast_forward(19);
        // Same frontier: both accept exactly [20, 28) and reject 19.
        a.schedule(27, 1);
        b.schedule(27, 1);
        assert_eq!(a.drain(27).collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.drain(27).collect::<Vec<_>>(), vec![1]);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond calendar horizon")]
    fn fast_forward_keeps_horizon_check_live() {
        let mut c: Calendar<u32> = Calendar::new(4);
        c.fast_forward(10);
        c.schedule(15, 1);
    }

    #[test]
    fn drain_reuses_the_bucket_allocation() {
        let mut c: Calendar<u32> = Calendar::new(4);
        c.schedule(1, 7);
        assert_eq!(c.drain(0).next(), None);
        assert_eq!(c.drain(1).collect::<Vec<_>>(), vec![7]);
        // The wrapped-around bucket still works after the borrow ends.
        c.schedule(5, 8);
        assert_eq!(c.drain(2).next(), None);
        assert_eq!(c.drain(3).next(), None);
        assert_eq!(c.drain(4).next(), None);
        assert_eq!(c.drain(5).collect::<Vec<_>>(), vec![8]);
    }
}
