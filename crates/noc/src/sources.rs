//! Traffic sources that drive open-loop experiments.

use crate::packet::PacketKind;
use pnoc_sim::{Cycle, SimRng};
use pnoc_traffic::classes::{TenantMixKind, TenantSpec};
use pnoc_traffic::injection::BernoulliInjector;
use pnoc_traffic::pattern::TrafficPattern;
use pnoc_traffic::trace::{MessageKind, Trace, TraceCursor};
use pnoc_traffic::ClassId;

/// A request to inject one packet:
/// `(source core, destination node, kind, traffic class)`. Untenanted
/// sources tag everything class 0, the default class.
pub type InjectionRequest = (usize, usize, PacketKind, ClassId);

/// Anything that can feed packets to [`crate::network::Network::run_open_loop`].
pub trait TrafficSource {
    /// Append this cycle's injections to `out`.
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>);
    /// Whether the source has no future events (always `false` for
    /// rate-driven sources).
    fn exhausted(&self) -> bool {
        false
    }
}

/// Synthetic traffic: every core runs an independent Bernoulli process at the
/// given rate; destinations follow a [`TrafficPattern`] applied at node
/// granularity (the paper's methodology, §V-A).
///
/// Fires are dispatched from a min-heap keyed on `(next_fire, core)` rather
/// than polling all `nodes × cores` injectors every cycle: the per-cycle
/// cost is O(fires), not O(cores). The heap key is a total order, so pops
/// within one cycle come out in ascending core order — exactly the order
/// the old polling loop visited them — and the RNG draw sequence (gap, then
/// destination, per firing core) is bit-identical to polling.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    pattern: TrafficPattern,
    nodes: usize,
    cores_per_node: usize,
    injectors: Vec<BernoulliInjector>,
    fires: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, usize)>>,
    rng: SimRng,
}

impl SyntheticSource {
    /// Build a source for `nodes × cores_per_node` cores injecting
    /// `rate` packets/cycle/core.
    pub fn new(
        pattern: TrafficPattern,
        rate: f64,
        nodes: usize,
        cores_per_node: usize,
        seed: u64,
    ) -> Self {
        pattern
            .validate(nodes)
            .expect("pattern incompatible with node count");
        let mut rng = SimRng::seed_from(seed);
        let injectors: Vec<BernoulliInjector> = (0..nodes * cores_per_node)
            .map(|_| BernoulliInjector::new(rate, &mut rng))
            .collect();
        let fires = injectors
            .iter()
            .enumerate()
            .filter(|(_, inj)| inj.next_fire() != Cycle::MAX)
            .map(|(core, inj)| std::cmp::Reverse((inj.next_fire(), core)))
            .collect();
        Self {
            pattern,
            nodes,
            cores_per_node,
            injectors,
            fires,
            rng,
        }
    }

    /// The pattern in use.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }
}

impl TrafficSource for SyntheticSource {
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>) {
        while let Some(&std::cmp::Reverse((at, core))) = self.fires.peek() {
            if at > now {
                break;
            }
            self.fires.pop();
            let inj = &mut self.injectors[core];
            for _ in 0..inj.fire(now, &mut self.rng) {
                let src_node = core / self.cores_per_node;
                let dst = self
                    .pattern
                    .destination(src_node, self.nodes, &mut self.rng);
                out.push((core, dst, PacketKind::Data, 0));
            }
            if inj.next_fire() != Cycle::MAX {
                self.fires.push(std::cmp::Reverse((inj.next_fire(), core)));
            }
        }
    }
}

/// Replays a [`Trace`] (the application-trace experiments of Fig. 10).
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    cursor: TraceCursor<'a>,
    cores_per_node: usize,
}

impl<'a> TraceSource<'a> {
    /// Replay `trace` on a network with `cores_per_node`-way concentration.
    pub fn new(trace: &'a Trace, cores_per_node: usize) -> Self {
        Self {
            cursor: trace.cursor(),
            cores_per_node,
        }
    }
}

impl TrafficSource for TraceSource<'_> {
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>) {
        for ev in self.cursor.events_at(now) {
            let src_node = ev.src_core / self.cores_per_node;
            if src_node == ev.dst_node {
                // Local delivery bypasses the optical network.
                continue;
            }
            let kind = match ev.kind {
                MessageKind::Request => PacketKind::Request,
                MessageKind::Reply => PacketKind::Reply,
                MessageKind::Data => PacketKind::Data,
            };
            out.push((ev.src_core, ev.dst_node, kind, ev.class));
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.exhausted()
    }
}

/// Multi-tenant traffic: one independent [`SyntheticSource`] per tenant of a
/// [`TenantMixKind`], each tagging its packets with the tenant's class.
///
/// Every tenant draws from its own RNG stream (tenant 0 uses the caller's
/// seed verbatim, so a `SingleClass` mix is bit-identical to a plain
/// [`SyntheticSource`] at the same rate, pattern, and seed — modulo the
/// class tag, which is 0 either way). Bursty tenants run their injection
/// process continuously but *discard* fires landing in an off window of the
/// duty cycle: while on they inject at the spec's full rate, while off they
/// inject nothing, and the time-averaged load is exactly
/// [`TenantSpec::mean_rate`]. Everything is a deterministic function of
/// `(mix, rate, seed, cycle)` — replays and differential runs agree.
#[derive(Debug, Clone)]
pub struct ClassedSource {
    tenants: Vec<(TenantSpec, SyntheticSource)>,
    scratch: Vec<InjectionRequest>,
}

impl ClassedSource {
    /// Build the tenants of `mix` at `total_rate` packets/cycle/core total
    /// mean load, with `base` as the majority destination pattern.
    pub fn new(
        mix: TenantMixKind,
        total_rate: f64,
        base: TrafficPattern,
        nodes: usize,
        cores_per_node: usize,
        seed: u64,
    ) -> Self {
        let tenants = mix
            .build(total_rate, base)
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                // Tenant 0 keeps the caller's seed (SingleClass baseline
                // compatibility); later tenants get decorrelated streams.
                let tenant_seed = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64);
                let src = SyntheticSource::new(
                    spec.pattern,
                    spec.rate,
                    nodes,
                    cores_per_node,
                    tenant_seed,
                );
                (spec, src)
            })
            .collect();
        Self {
            tenants,
            scratch: Vec::new(),
        }
    }

    /// The tenant specs driving this source, in class order.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.iter().map(|(spec, _)| spec)
    }
}

impl TrafficSource for ClassedSource {
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>) {
        for (spec, src) in &mut self.tenants {
            // Always run the tenant's injector so its fire heap and RNG
            // stream advance in lockstep with the clock; off-window fires
            // are discarded, not deferred (deferring would dump the whole
            // off window's load into the first active cycle).
            self.scratch.clear();
            src.generate(now, &mut self.scratch);
            if spec.burst.is_some_and(|b| !b.active(now)) {
                continue;
            }
            out.extend(
                self.scratch
                    .iter()
                    .map(|&(core, dst, kind, _)| (core, dst, kind, spec.class)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_traffic::trace::TraceEvent;

    #[test]
    fn synthetic_rate_and_destinations() {
        let mut src = SyntheticSource::new(TrafficPattern::UniformRandom, 0.1, 16, 2, 99);
        let mut out = Vec::new();
        for t in 0..20_000 {
            src.generate(t, &mut out);
        }
        let per_core = out.len() as f64 / 20_000.0 / 32.0;
        assert!((per_core - 0.1).abs() < 0.01, "rate {per_core}");
        for &(core, dst, _, _) in &out {
            assert!(core < 32);
            assert!(dst < 16);
            assert_ne!(dst, core / 2, "no self-node traffic");
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let collect = |seed| {
            let mut s = SyntheticSource::new(TrafficPattern::Tornado, 0.05, 16, 2, seed);
            let mut out = Vec::new();
            for t in 0..5_000 {
                s.generate(t, &mut out);
            }
            out
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn trace_source_replays_and_skips_local() {
        let mut trace = Trace::new("t", 8, 4, 100);
        // core 0 lives on node 0: send to node 0 is local (skipped).
        trace.push(TraceEvent {
            cycle: 3,
            src_core: 0,
            dst_node: 0,
            kind: MessageKind::Request,
            class: 0,
        });
        trace.push(TraceEvent {
            cycle: 3,
            src_core: 0,
            dst_node: 2,
            kind: MessageKind::Request,
            class: 0,
        });
        trace.push(TraceEvent {
            cycle: 7,
            src_core: 5,
            dst_node: 1,
            kind: MessageKind::Reply,
            class: 0,
        });
        let mut src = TraceSource::new(&trace, 2);
        let mut out = Vec::new();
        for t in 0..10 {
            src.generate(t, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (0, 2, PacketKind::Request, 0));
        assert_eq!(out[1], (5, 1, PacketKind::Reply, 0));
        assert!(src.exhausted());
    }

    #[test]
    fn classed_single_class_matches_plain_source() {
        // The documented baseline-compatibility contract: SingleClass is
        // the plain synthetic source, bit for bit.
        let mut plain = SyntheticSource::new(TrafficPattern::UniformRandom, 0.08, 16, 2, 7);
        let mut classed = ClassedSource::new(
            TenantMixKind::SingleClass,
            0.08,
            TrafficPattern::UniformRandom,
            16,
            2,
            7,
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for t in 0..5_000 {
            plain.generate(t, &mut a);
            classed.generate(t, &mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn classed_mixes_tag_and_conserve_mean_load() {
        for kind in TenantMixKind::all() {
            let mut src = ClassedSource::new(kind, 0.1, TrafficPattern::UniformRandom, 16, 2, 42);
            let mut out = Vec::new();
            let cycles = 40_000u64;
            for t in 0..cycles {
                src.generate(t, &mut out);
            }
            let mut per_class = [0u64; pnoc_traffic::MAX_CLASSES];
            for &(_, _, _, class) in &out {
                per_class[usize::from(class)] += 1;
            }
            let total = out.len() as f64 / cycles as f64 / 32.0;
            assert!(
                (total - 0.1).abs() < 0.012,
                "{kind:?} total mean load {total}"
            );
            for spec in src.tenants() {
                let got = per_class[usize::from(spec.class)] as f64 / cycles as f64 / 32.0;
                assert!(
                    (got - spec.mean_rate()).abs() < 0.012,
                    "{kind:?} class {} rate {got} want {}",
                    spec.class,
                    spec.mean_rate()
                );
            }
        }
    }

    #[test]
    fn bursty_tenant_is_silent_off_window() {
        let mut src = ClassedSource::new(
            TenantMixKind::BurstyAdversary,
            0.2,
            TrafficPattern::UniformRandom,
            16,
            2,
            3,
        );
        for t in 0..4_000u64 {
            let mut out = Vec::new();
            src.generate(t, &mut out);
            if t % 128 >= 32 {
                assert!(
                    out.iter().all(|&(_, _, _, class)| class == 0),
                    "cycle {t}: adversary injected outside its duty window"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pattern incompatible with node count")]
    fn synthetic_rejects_incompatible_pattern() {
        // Bit complement needs a power-of-two node count.
        SyntheticSource::new(TrafficPattern::BitComplement, 0.1, 12, 2, 1);
    }
}
