//! Traffic sources that drive open-loop experiments.

use crate::packet::PacketKind;
use pnoc_sim::{Cycle, SimRng};
use pnoc_traffic::injection::BernoulliInjector;
use pnoc_traffic::pattern::TrafficPattern;
use pnoc_traffic::trace::{MessageKind, Trace, TraceCursor};

/// A request to inject one packet: `(source core, destination node, kind)`.
pub type InjectionRequest = (usize, usize, PacketKind);

/// Anything that can feed packets to [`crate::network::Network::run_open_loop`].
pub trait TrafficSource {
    /// Append this cycle's injections to `out`.
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>);
    /// Whether the source has no future events (always `false` for
    /// rate-driven sources).
    fn exhausted(&self) -> bool {
        false
    }
}

/// Synthetic traffic: every core runs an independent Bernoulli process at the
/// given rate; destinations follow a [`TrafficPattern`] applied at node
/// granularity (the paper's methodology, §V-A).
///
/// Fires are dispatched from a min-heap keyed on `(next_fire, core)` rather
/// than polling all `nodes × cores` injectors every cycle: the per-cycle
/// cost is O(fires), not O(cores). The heap key is a total order, so pops
/// within one cycle come out in ascending core order — exactly the order
/// the old polling loop visited them — and the RNG draw sequence (gap, then
/// destination, per firing core) is bit-identical to polling.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    pattern: TrafficPattern,
    nodes: usize,
    cores_per_node: usize,
    injectors: Vec<BernoulliInjector>,
    fires: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, usize)>>,
    rng: SimRng,
}

impl SyntheticSource {
    /// Build a source for `nodes × cores_per_node` cores injecting
    /// `rate` packets/cycle/core.
    pub fn new(
        pattern: TrafficPattern,
        rate: f64,
        nodes: usize,
        cores_per_node: usize,
        seed: u64,
    ) -> Self {
        pattern
            .validate(nodes)
            .expect("pattern incompatible with node count");
        let mut rng = SimRng::seed_from(seed);
        let injectors: Vec<BernoulliInjector> = (0..nodes * cores_per_node)
            .map(|_| BernoulliInjector::new(rate, &mut rng))
            .collect();
        let fires = injectors
            .iter()
            .enumerate()
            .filter(|(_, inj)| inj.next_fire() != Cycle::MAX)
            .map(|(core, inj)| std::cmp::Reverse((inj.next_fire(), core)))
            .collect();
        Self {
            pattern,
            nodes,
            cores_per_node,
            injectors,
            fires,
            rng,
        }
    }

    /// The pattern in use.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }
}

impl TrafficSource for SyntheticSource {
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>) {
        while let Some(&std::cmp::Reverse((at, core))) = self.fires.peek() {
            if at > now {
                break;
            }
            self.fires.pop();
            let inj = &mut self.injectors[core];
            for _ in 0..inj.fire(now, &mut self.rng) {
                let src_node = core / self.cores_per_node;
                let dst = self
                    .pattern
                    .destination(src_node, self.nodes, &mut self.rng);
                out.push((core, dst, PacketKind::Data));
            }
            if inj.next_fire() != Cycle::MAX {
                self.fires.push(std::cmp::Reverse((inj.next_fire(), core)));
            }
        }
    }
}

/// Replays a [`Trace`] (the application-trace experiments of Fig. 10).
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    cursor: TraceCursor<'a>,
    cores_per_node: usize,
}

impl<'a> TraceSource<'a> {
    /// Replay `trace` on a network with `cores_per_node`-way concentration.
    pub fn new(trace: &'a Trace, cores_per_node: usize) -> Self {
        Self {
            cursor: trace.cursor(),
            cores_per_node,
        }
    }
}

impl TrafficSource for TraceSource<'_> {
    fn generate(&mut self, now: Cycle, out: &mut Vec<InjectionRequest>) {
        for ev in self.cursor.events_at(now) {
            let src_node = ev.src_core / self.cores_per_node;
            if src_node == ev.dst_node {
                // Local delivery bypasses the optical network.
                continue;
            }
            let kind = match ev.kind {
                MessageKind::Request => PacketKind::Request,
                MessageKind::Reply => PacketKind::Reply,
                MessageKind::Data => PacketKind::Data,
            };
            out.push((ev.src_core, ev.dst_node, kind));
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_traffic::trace::TraceEvent;

    #[test]
    fn synthetic_rate_and_destinations() {
        let mut src = SyntheticSource::new(TrafficPattern::UniformRandom, 0.1, 16, 2, 99);
        let mut out = Vec::new();
        for t in 0..20_000 {
            src.generate(t, &mut out);
        }
        let per_core = out.len() as f64 / 20_000.0 / 32.0;
        assert!((per_core - 0.1).abs() < 0.01, "rate {per_core}");
        for &(core, dst, _) in &out {
            assert!(core < 32);
            assert!(dst < 16);
            assert_ne!(dst, core / 2, "no self-node traffic");
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let collect = |seed| {
            let mut s = SyntheticSource::new(TrafficPattern::Tornado, 0.05, 16, 2, seed);
            let mut out = Vec::new();
            for t in 0..5_000 {
                s.generate(t, &mut out);
            }
            out
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn trace_source_replays_and_skips_local() {
        let mut trace = Trace::new("t", 8, 4, 100);
        // core 0 lives on node 0: send to node 0 is local (skipped).
        trace.push(TraceEvent {
            cycle: 3,
            src_core: 0,
            dst_node: 0,
            kind: MessageKind::Request,
        });
        trace.push(TraceEvent {
            cycle: 3,
            src_core: 0,
            dst_node: 2,
            kind: MessageKind::Request,
        });
        trace.push(TraceEvent {
            cycle: 7,
            src_core: 5,
            dst_node: 1,
            kind: MessageKind::Reply,
        });
        let mut src = TraceSource::new(&trace, 2);
        let mut out = Vec::new();
        for t in 0..10 {
            src.generate(t, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (0, 2, PacketKind::Request));
        assert_eq!(out[1], (5, 1, PacketKind::Reply));
        assert!(src.exhausted());
    }

    #[test]
    #[should_panic(expected = "pattern incompatible with node count")]
    fn synthetic_rejects_incompatible_pattern() {
        // Bit complement needs a power-of-two node count.
        SyntheticSource::new(TrafficPattern::BitComplement, 0.1, 12, 2, 1);
    }
}
