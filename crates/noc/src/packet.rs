//! Packets (single-flit, per the paper's wide-channel assumption).

use pnoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Protocol role of a packet, used by the closed-loop CMP model; the open-loop
/// network treats all kinds identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Cache-miss request (core → L2 bank).
    Request,
    /// Data reply (L2 bank → core).
    Reply,
    /// Anything else.
    Data,
}

/// One single-flit packet.
///
/// `Copy` by design: packets are small scalar records that get duplicated
/// between a sender's queue/setaside and the in-flight ring slot (a sent
/// packet cannot leave the sender until its handshake arrives — §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id within a simulation run.
    pub id: u64,
    /// Injecting core (global index).
    pub src_core: u32,
    /// Node of the injecting core.
    pub src_node: u32,
    /// Destination (home) node.
    pub dst_node: u32,
    /// Protocol role.
    pub kind: PacketKind,
    /// Cycle the core generated the packet.
    pub generated_at: Cycle,
    /// Cycle the packet entered the sender's output queue (after the
    /// injection router pipeline).
    pub enqueued_at: Cycle,
    /// Cycle of the most recent transmission onto the ring (0 = never sent).
    pub sent_at: Cycle,
    /// Number of transmissions so far (>1 means retransmitted after NACK or
    /// recirculated past a full home buffer).
    pub sends: u32,
    /// Whether this packet is inside the measurement window.
    pub measured: bool,
    /// Caller-provided correlation tag (the CMP model stores MSHR ids here).
    pub tag: u64,
    /// Traffic class (multi-tenant `QoS`; 0 = the default class). Drives
    /// per-class admission control and per-class latency recording.
    #[serde(default)]
    pub class: u8,
}

impl Packet {
    /// Latency from generation to a given delivery cycle.
    pub fn latency_at(&self, delivered: Cycle) -> u64 {
        delivered.saturating_sub(self.generated_at)
    }

    /// Retransmission count (transmissions beyond the first).
    pub fn retransmissions(&self) -> u32 {
        self.sends.saturating_sub(1)
    }
}

/// Queue-side stand-in for a [`Packet`] parked in a [`PacketArena`]: the id
/// (handshake matching), the arena handle, and a mirror of the send count
/// (retry budgets, state keys). 16 bytes instead of 72 — sender queues,
/// setaside buffers and the data ring shuffle these, never whole packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    /// The packet's unique id (mirror of `Packet::id`).
    pub id: u64,
    /// Arena handle of the full payload.
    pub handle: u32,
    /// Mirror of `Packet::sends`, bumped at transmission; the arena copy is
    /// synced by the channel when the flit goes on the ring.
    pub sends: u32,
    /// Mirror of `Packet::class` — admission control reads the head class
    /// at grant time without dereferencing the arena.
    pub class: u8,
}

/// An in-flight flit on the data ring: the arena handle plus a snapshot of
/// everything the home inspects *before* committing to accept the packet.
///
/// The snapshot matters for handshake modes, where the ring flit aliases a
/// sender-owned arena slot:
///
/// - A timeout retransmission restamps `Packet::{sent_at, sends}` while an
///   earlier flit of the same packet may still be in flight; the delivered
///   copy must carry the stamps of the send that produced *this* flit.
/// - Under ACK loss, a duplicate retransmission can still be in flight when
///   the original's (re-)ACK reaches the sender and frees the arena slot.
///   Such a stale flit must traverse the fault draw, the arrival trace and
///   duplicate suppression without touching the arena at all — everything
///   those paths read (`id`, `src`, `sent_at`, `sends`) lives here.
///
/// The arena is dereferenced only on the accept path, which stale flits
/// never reach: a slot freed while its flit is in flight was freed by an
/// ACK, an ACK implies the id is in `accepted_ids`, and suppression runs
/// before the payload copy-out. (Abandon cannot strand a flit: the timeout
/// exceeds the flight time, so every flit of an abandoned packet has
/// already arrived when the timer fires.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitRef {
    /// The packet's unique id (duplicate suppression, traces, NACKs).
    pub id: u64,
    /// Arena handle of the full payload. Only valid to dereference on the
    /// accept path — see the type-level docs.
    pub handle: u32,
    /// `Packet::sends` as of this flit's transmission.
    pub sends: u32,
    /// Mirror of `Packet::src_node` (handshake addressing, traces).
    pub src: u32,
    /// Cycle this flit was put on the ring.
    pub sent_at: Cycle,
}

/// Slab allocator for in-network packet payloads.
///
/// One arena per channel: [`crate::channel::Channel::enqueue`] allocates,
/// the hot path moves `u32` handles through queues and ring slots, and the
/// payload is freed at its last use (delivery copy-out, handshake ACK,
/// abandon, or fault loss). The free list is LIFO, so allocation order —
/// and with it every downstream iteration order — is deterministic.
///
/// Debug builds shadow the slots with an occupancy mask and panic on
/// double-free or use-after-free; release builds carry no overhead.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    #[cfg(debug_assertions)]
    occupied: Vec<bool>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park `pkt` and return its handle. Reuses the most recently freed
    /// slot, growing only when the free list is empty.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> u32 {
        self.live += 1;
        if let Some(h) = self.free.pop() {
            self.slots[h as usize] = pkt;
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    !self.occupied[h as usize],
                    "arena slot reallocated while live"
                );
                self.occupied[h as usize] = true;
            }
            h
        } else {
            let h = crate::convert::narrow_u32(self.slots.len());
            self.slots.push(pkt);
            #[cfg(debug_assertions)]
            self.occupied.push(true);
            h
        }
    }

    /// The payload behind `handle`.
    #[inline]
    pub fn get(&self, handle: u32) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.occupied[handle as usize],
            "arena read of freed handle {handle}"
        );
        &self.slots[handle as usize]
    }

    /// Mutable payload access (the channel syncs `sent_at`/`sends` here at
    /// transmission).
    #[inline]
    pub fn get_mut(&mut self, handle: u32) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.occupied[handle as usize],
            "arena write to freed handle {handle}"
        );
        &mut self.slots[handle as usize]
    }

    /// Release `handle` back to the free list. The payload bits stay in
    /// place until the slot is reallocated; debug builds reject any further
    /// access.
    #[inline]
    pub fn free(&mut self, handle: u32) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.occupied[handle as usize],
                "arena double-free of handle {handle}"
            );
            self.occupied[handle as usize] = false;
        }
        debug_assert!(self.live > 0, "arena live-count underflow");
        self.live -= 1;
        self.free.push(handle);
    }

    /// Number of live (allocated, not yet freed) payloads — the channel's
    /// packet-conservation invariant checks this against its queue and ring
    /// occupancy.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet {
            id: 1,
            src_core: 3,
            src_node: 0,
            dst_node: 5,
            kind: PacketKind::Request,
            generated_at: 10,
            enqueued_at: 12,
            sent_at: 0,
            sends: 0,
            measured: true,
            tag: 0,
            class: 0,
        }
    }

    #[test]
    fn latency_is_from_generation() {
        let p = pkt();
        assert_eq!(p.latency_at(30), 20);
        assert_eq!(p.latency_at(5), 0, "saturates instead of underflowing");
    }

    #[test]
    fn retransmissions_counted_from_second_send() {
        let mut p = pkt();
        assert_eq!(p.retransmissions(), 0);
        p.sends = 1;
        assert_eq!(p.retransmissions(), 0);
        p.sends = 3;
        assert_eq!(p.retransmissions(), 2);
    }

    #[test]
    fn arena_reuses_freed_slots_lifo() {
        let mut a = PacketArena::new();
        let h0 = a.alloc(pkt());
        let h1 = a.alloc(Packet { id: 2, ..pkt() });
        assert_eq!((h0, h1), (0, 1));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(h1).id, 2);
        a.free(h0);
        assert_eq!(a.live(), 1);
        // LIFO: the most recently freed slot is handed out next.
        let h2 = a.alloc(Packet { id: 3, ..pkt() });
        assert_eq!(h2, h0);
        assert_eq!(a.get(h2).id, 3);
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn arena_mutation_is_visible_through_the_handle() {
        let mut a = PacketArena::new();
        let h = a.alloc(pkt());
        a.get_mut(h).sends = 7;
        a.get_mut(h).sent_at = 40;
        assert_eq!(a.get(h).sends, 7);
        assert_eq!(a.get(h).sent_at, 40);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double-free")]
    fn arena_debug_build_catches_double_free() {
        let mut a = PacketArena::new();
        let h = a.alloc(pkt());
        a.free(h);
        a.free(h);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "freed handle")]
    fn arena_debug_build_catches_use_after_free() {
        let mut a = PacketArena::new();
        let h = a.alloc(pkt());
        a.free(h);
        let _ = a.get(h).id;
    }
}
