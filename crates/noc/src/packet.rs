//! Packets (single-flit, per the paper's wide-channel assumption).

use pnoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Protocol role of a packet, used by the closed-loop CMP model; the open-loop
/// network treats all kinds identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Cache-miss request (core → L2 bank).
    Request,
    /// Data reply (L2 bank → core).
    Reply,
    /// Anything else.
    Data,
}

/// One single-flit packet.
///
/// `Copy` by design: packets are small scalar records that get duplicated
/// between a sender's queue/setaside and the in-flight ring slot (a sent
/// packet cannot leave the sender until its handshake arrives — §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id within a simulation run.
    pub id: u64,
    /// Injecting core (global index).
    pub src_core: u32,
    /// Node of the injecting core.
    pub src_node: u32,
    /// Destination (home) node.
    pub dst_node: u32,
    /// Protocol role.
    pub kind: PacketKind,
    /// Cycle the core generated the packet.
    pub generated_at: Cycle,
    /// Cycle the packet entered the sender's output queue (after the
    /// injection router pipeline).
    pub enqueued_at: Cycle,
    /// Cycle of the most recent transmission onto the ring (0 = never sent).
    pub sent_at: Cycle,
    /// Number of transmissions so far (>1 means retransmitted after NACK or
    /// recirculated past a full home buffer).
    pub sends: u32,
    /// Whether this packet is inside the measurement window.
    pub measured: bool,
    /// Caller-provided correlation tag (the CMP model stores MSHR ids here).
    pub tag: u64,
}

impl Packet {
    /// Latency from generation to a given delivery cycle.
    pub fn latency_at(&self, delivered: Cycle) -> u64 {
        delivered.saturating_sub(self.generated_at)
    }

    /// Retransmission count (transmissions beyond the first).
    pub fn retransmissions(&self) -> u32 {
        self.sends.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet {
            id: 1,
            src_core: 3,
            src_node: 0,
            dst_node: 5,
            kind: PacketKind::Request,
            generated_at: 10,
            enqueued_at: 12,
            sent_at: 0,
            sends: 0,
            measured: true,
            tag: 0,
        }
    }

    #[test]
    fn latency_is_from_generation() {
        let p = pkt();
        assert_eq!(p.latency_at(30), 20);
        assert_eq!(p.latency_at(5), 0, "saturates instead of underflowing");
    }

    #[test]
    fn retransmissions_counted_from_second_send() {
        let mut p = pkt();
        assert_eq!(p.retransmissions(), 0);
        p.sends = 1;
        assert_eq!(p.retransmissions(), 0);
        p.sends = 3;
        assert_eq!(p.retransmissions(), 2);
    }
}
