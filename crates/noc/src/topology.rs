//! Ring topology arithmetic: segments, distances, traversal delays.
//!
//! The unidirectional ring has `nodes` nodes and `segments` wave-pipeline
//! segments; a signal crosses one segment per cycle, passing `nodes/segments`
//! nodes (Corona: "a token can pass eight nodes in one cycle"). All per-node
//! positions are expressed as *downstream distance* from a channel's home:
//! `d = (i - home - 1) mod N`, so `d = 0` is the node immediately after the
//! home and `d = N − 2` the node immediately before it.

use serde::{Deserialize, Serialize};

/// Ring dimensions and derived timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Node count.
    pub nodes: usize,
    /// Segment count = full-ring traversal cycles.
    pub segments: usize,
}

impl Topology {
    /// Build and validate (segments must divide nodes).
    pub fn new(nodes: usize, segments: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        assert!(
            segments > 0 && nodes.is_multiple_of(segments),
            "segments ({segments}) must divide nodes ({nodes})"
        );
        Self { nodes, segments }
    }

    /// Nodes per segment = nodes a signal passes per cycle.
    #[inline]
    pub fn step(&self) -> usize {
        self.nodes / self.segments
    }

    /// Segment containing node `i`.
    #[inline]
    pub fn segment_of(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes);
        node / self.step()
    }

    /// Downstream distance of node `i` from `home` (0 = immediately after
    /// the home). `i` must differ from `home`.
    #[inline]
    pub fn downstream_distance(&self, home: usize, i: usize) -> usize {
        debug_assert!(i != home, "home has no distance from itself");
        (i + self.nodes - home - 1) % self.nodes
    }

    /// Inverse of [`Topology::downstream_distance`].
    #[inline]
    pub fn node_at_distance(&self, home: usize, d: usize) -> usize {
        debug_assert!(d < self.nodes - 1);
        (home + 1 + d) % self.nodes
    }

    /// Data-flit traversal time from node `src` to its home `dst`, in cycles
    /// (1..=segments): hop distance divided by the per-cycle sweep, rounded
    /// up. Matches the paper's "1 to 8 cycles based on the distance".
    #[inline]
    pub fn data_delay(&self, src: usize, dst: usize) -> u64 {
        debug_assert!(src != dst);
        let hops = (dst + self.nodes - src) % self.nodes;
        hops.div_ceil(self.step()) as u64
    }

    /// Cycle at which a sender learns its packet's fate: the handshake
    /// arrives a fixed `segments + 1` cycles after transmission (§IV-C:
    /// "if the round-trip time is 8 cycles, a sender will receive the
    /// handshake message in 9 cycles").
    #[inline]
    pub fn handshake_delay(&self) -> u64 {
        self.segments as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Topology {
        Topology::new(64, 8)
    }

    #[test]
    fn step_and_segments() {
        let t = paper();
        assert_eq!(t.step(), 8);
        assert_eq!(t.segment_of(0), 0);
        assert_eq!(t.segment_of(7), 0);
        assert_eq!(t.segment_of(8), 1);
        assert_eq!(t.segment_of(63), 7);
    }

    #[test]
    fn distance_roundtrip() {
        let t = paper();
        for home in [0usize, 13, 63] {
            for i in 0..64 {
                if i == home {
                    continue;
                }
                let d = t.downstream_distance(home, i);
                assert!(d < 63);
                assert_eq!(t.node_at_distance(home, d), i);
            }
        }
    }

    #[test]
    fn distance_zero_is_next_node() {
        let t = paper();
        assert_eq!(t.downstream_distance(5, 6), 0);
        assert_eq!(t.downstream_distance(63, 0), 0);
        assert_eq!(t.downstream_distance(0, 63), 62);
    }

    #[test]
    fn data_delay_bounds_match_paper() {
        // "the nanophotonic link traversal time amounts to be 1 to 8 cycles"
        let t = paper();
        let mut min = u64::MAX;
        let mut max = 0;
        for src in 0..64 {
            for dst in 0..64 {
                if src == dst {
                    continue;
                }
                let d = t.data_delay(src, dst);
                min = min.min(d);
                max = max.max(d);
            }
        }
        assert_eq!(min, 1);
        assert_eq!(max, 8);
    }

    #[test]
    fn data_delay_examples() {
        let t = paper();
        assert_eq!(t.data_delay(63, 0), 1); // one hop forward
        assert_eq!(t.data_delay(1, 0), 8); // almost a full loop
        assert_eq!(t.data_delay(0, 32), 4); // half ring
        assert_eq!(t.data_delay(56, 0), 1); // 8 hops = exactly one segment
        assert_eq!(t.data_delay(55, 0), 2); // 9 hops
    }

    #[test]
    fn handshake_is_round_trip_plus_one() {
        assert_eq!(paper().handshake_delay(), 9);
    }

    #[test]
    fn small_ring() {
        let t = Topology::new(16, 4);
        assert_eq!(t.step(), 4);
        assert_eq!(t.data_delay(15, 0), 1);
        assert_eq!(t.data_delay(1, 0), 4);
    }

    #[test]
    #[should_panic(expected = "must divide nodes")]
    fn rejects_non_dividing_segments() {
        Topology::new(10, 3);
    }
}
