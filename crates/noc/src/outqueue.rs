//! Sender-side output queues: HOL blocking, setaside buffers, fairness.
//!
//! Each (sender node, destination channel) pair owns one [`OutQueue`]. The
//! three send disciplines map directly onto the paper's schemes:
//!
//! * [`SendMode::HoldHead`] — basic GHS/DHS: a transmitted packet stays at
//!   the queue head, *pending*, until its ACK arrives; the queue is blocked
//!   meanwhile (the HOL problem of §III),
//! * [`SendMode::Setaside`] — transmitted packets move into a small setaside
//!   buffer, yielding the head to followers (§III, "setaside buffer"),
//! * [`SendMode::Forget`] — credit-reserved schemes (token channel / token
//!   slot) and DHS-circulation: a transmitted packet leaves the sender
//!   immediately.

use crate::config::FairnessPolicy;
use crate::packet::{Packet, PacketRef};
use pnoc_sim::Cycle;
use std::collections::VecDeque;

/// The contract a queue entry must satisfy: an id for handshake matching
/// and a send counter bumped at transmission. The channel hot path queues
/// [`PacketRef`] handles (16 bytes) against a [`crate::packet::PacketArena`];
/// the SWMR baseline and unit rigs queue whole [`Packet`]s (the default type
/// parameter), where `on_transmit` also stamps `sent_at`.
pub trait QueueItem: Copy {
    /// The packet's unique id.
    fn id(&self) -> u64;
    /// Transmissions so far.
    fn sends(&self) -> u32;
    /// Record one transmission at `now`.
    fn on_transmit(&mut self, now: Cycle);
    /// Traffic class the packet belongs to (admission control, per-class
    /// observability). Items without a class notion report class 0.
    #[inline]
    fn class(&self) -> u8 {
        0
    }
}

impl QueueItem for Packet {
    #[inline]
    fn id(&self) -> u64 {
        self.id
    }

    #[inline]
    fn sends(&self) -> u32 {
        self.sends
    }

    #[inline]
    fn on_transmit(&mut self, now: Cycle) {
        self.sent_at = now;
        self.sends += 1;
    }

    #[inline]
    fn class(&self) -> u8 {
        self.class
    }
}

impl QueueItem for PacketRef {
    #[inline]
    fn id(&self) -> u64 {
        self.id
    }

    #[inline]
    fn sends(&self) -> u32 {
        self.sends
    }

    /// Only the mirror counter lives here; the channel stamps `sent_at` on
    /// the arena payload when it places the flit on the ring.
    #[inline]
    fn on_transmit(&mut self, _now: Cycle) {
        self.sends += 1;
    }

    #[inline]
    fn class(&self) -> u8 {
        self.class
    }
}

/// What happens to a packet when it is transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Stay at the head, pending, until the handshake arrives.
    HoldHead,
    /// Move into a setaside buffer of the given capacity (≥ 1).
    Setaside(usize),
    /// Leave the sender immediately.
    Forget,
}

/// Outcome of an ACK-timeout firing against this queue (reliability
/// extension: recovery from *lost* flits and handshakes, where no NACK will
/// ever arrive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction<T> {
    /// The packet was still awaiting its handshake; it is sendable again and
    /// will be retransmitted under the next grant.
    Retry,
    /// The packet exhausted its retry budget and was discarded; the caller
    /// receives the evicted entry (to release its arena payload).
    Abandon(T),
    /// The timer was stale — the packet's handshake already arrived (or a
    /// NACK already requeued it). Nothing changed.
    Stale,
}

/// Per-(sender, channel) output queue.
#[derive(Debug, Clone)]
pub struct OutQueue<T: QueueItem = Packet> {
    mode: SendMode,
    queue: VecDeque<T>,
    head_pending: bool,
    setaside: Vec<T>,
    /// Tokens taken but not yet used to transmit.
    granted: u32,
    /// Fairness: consecutive grants since the last sit-out.
    consecutive_serves: u32,
    /// Fairness: ineligible until this cycle.
    sit_until: Cycle,
}

impl<T: QueueItem> OutQueue<T> {
    /// An empty queue with the given send discipline.
    pub fn new(mode: SendMode) -> Self {
        if let SendMode::Setaside(cap) = mode {
            assert!(
                cap > 0,
                "setaside capacity must be ≥ 1 (use HoldHead for 0)"
            );
        }
        Self {
            mode,
            queue: VecDeque::new(),
            head_pending: false,
            setaside: Vec::new(),
            granted: 0,
            consecutive_serves: 0,
            sit_until: 0,
        }
    }

    /// Enqueue a packet (source queues are unbounded — open-loop
    /// methodology; saturation shows up as unbounded latency).
    pub fn push(&mut self, pkt: T) {
        self.queue.push_back(pkt);
    }

    /// Packets that could be granted a token right now, given HOL/setaside
    /// limits and grants already outstanding.
    pub fn sendable(&self) -> usize {
        let backlog = self.queue.len();
        let limit = match self.mode {
            SendMode::HoldHead => usize::from(!(self.head_pending || backlog == 0)),
            SendMode::Setaside(cap) => backlog.min(cap.saturating_sub(self.setaside.len())),
            SendMode::Forget => backlog,
        };
        limit.saturating_sub(self.granted as usize)
    }

    /// Whether this queue may take a token at `now` under `fairness`.
    pub fn eligible(&self, now: Cycle, fairness: FairnessPolicy) -> bool {
        if self.sendable() == 0 {
            return false;
        }
        match fairness {
            FairnessPolicy::None => true,
            FairnessPolicy::SitOut { .. } => now >= self.sit_until,
        }
    }

    /// Take a token: one more transmission is now owed. Updates fairness
    /// bookkeeping. Callers must have checked [`OutQueue::eligible`].
    pub fn take_grant(&mut self, now: Cycle, fairness: FairnessPolicy) {
        debug_assert!(self.sendable() > 0, "grant without a sendable packet");
        self.granted += 1;
        if let FairnessPolicy::SitOut {
            serve_quota,
            sit_out,
        } = fairness
        {
            self.consecutive_serves += 1;
            if self.consecutive_serves >= serve_quota {
                self.sit_until = now + Cycle::from(sit_out);
                self.consecutive_serves = 0;
            }
        }
    }

    /// Grants not yet consumed by a transmission.
    pub fn granted(&self) -> u32 {
        self.granted
    }

    /// Transmit one packet at `now` against an outstanding grant. Returns
    /// the flit to place on the ring, or `None` when no grant/packet is
    /// ready. The queue-side copy is updated per the send discipline.
    pub fn transmit(&mut self, now: Cycle) -> Option<T> {
        if self.granted == 0 {
            return None;
        }
        match self.mode {
            SendMode::HoldHead => {
                if self.head_pending {
                    return None;
                }
                let head = self.queue.front_mut()?;
                head.on_transmit(now);
                self.head_pending = true;
                self.granted -= 1;
                Some(*head)
            }
            SendMode::Setaside(_) => {
                let mut pkt = self.queue.pop_front()?;
                pkt.on_transmit(now);
                self.setaside.push(pkt);
                self.granted -= 1;
                Some(pkt)
            }
            SendMode::Forget => {
                let mut pkt = self.queue.pop_front()?;
                pkt.on_transmit(now);
                self.granted -= 1;
                Some(pkt)
            }
        }
    }

    /// Positive handshake: the packet reached the home. Releases the pending
    /// head or the setaside slot. Returns the acknowledged packet.
    pub fn ack(&mut self, id: u64) -> Option<T> {
        match self.mode {
            SendMode::HoldHead => {
                if self.head_pending && self.queue.front().map(QueueItem::id) == Some(id) {
                    self.head_pending = false;
                    return self.queue.pop_front();
                }
                None
            }
            SendMode::Setaside(_) => {
                let idx = self.setaside.iter().position(|p| p.id() == id)?;
                Some(self.setaside.swap_remove(idx))
            }
            SendMode::Forget => None,
        }
    }

    /// Negative handshake: the packet was dropped at a full home buffer and
    /// must be retransmitted. Returns it to the front of the queue.
    pub fn nack(&mut self, id: u64) -> bool {
        match self.mode {
            SendMode::HoldHead => {
                if self.head_pending && self.queue.front().map(QueueItem::id) == Some(id) {
                    self.head_pending = false; // head stays; becomes sendable again
                    true
                } else {
                    false
                }
            }
            SendMode::Setaside(_) => {
                if let Some(idx) = self.setaside.iter().position(|p| p.id() == id) {
                    let pkt = self.setaside.remove(idx);
                    self.queue.push_front(pkt);
                    true
                } else {
                    false
                }
            }
            SendMode::Forget => false,
        }
    }

    /// ACK-timeout expiry for packet `id` after its latest transmission.
    /// If the packet is still awaiting its handshake, it is treated like a
    /// NACK (made sendable again) unless it has already been transmitted
    /// `max_retries` times, in which case it is dropped for good. Timers are
    /// validated lazily, so expiries for packets whose handshake already
    /// arrived return [`TimeoutAction::Stale`].
    pub fn timeout(&mut self, id: u64, max_retries: u32) -> TimeoutAction<T> {
        match self.mode {
            SendMode::HoldHead => {
                if self.head_pending && self.queue.front().map(QueueItem::id) == Some(id) {
                    self.head_pending = false;
                    if self.queue.front().is_some_and(|p| p.sends() >= max_retries) {
                        match self.queue.pop_front() {
                            Some(pkt) => TimeoutAction::Abandon(pkt),
                            None => TimeoutAction::Stale,
                        }
                    } else {
                        TimeoutAction::Retry
                    }
                } else {
                    TimeoutAction::Stale
                }
            }
            SendMode::Setaside(_) => {
                if let Some(idx) = self.setaside.iter().position(|p| p.id() == id) {
                    let pkt = self.setaside.swap_remove(idx);
                    if pkt.sends() >= max_retries {
                        TimeoutAction::Abandon(pkt)
                    } else {
                        self.queue.push_front(pkt);
                        TimeoutAction::Retry
                    }
                } else {
                    TimeoutAction::Stale
                }
            }
            SendMode::Forget => TimeoutAction::Stale,
        }
    }

    /// Queued packets (including a pending head).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// The packet at the queue head, if any (used by flow controls that gate
    /// on the head's destination, e.g. SWMR partitioned credits).
    pub fn peek_head(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Packets waiting for handshakes in the setaside buffer.
    pub fn setaside_len(&self) -> usize {
        self.setaside.len()
    }

    /// Iterate queued packets front-to-back (including a pending head).
    pub fn iter_queue(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// Iterate setaside packets in slot order.
    pub fn iter_setaside(&self) -> impl Iterator<Item = &T> {
        self.setaside.iter()
    }

    /// Whether the queue head has been transmitted and awaits its handshake.
    pub fn head_is_pending(&self) -> bool {
        self.head_pending
    }

    /// Number of transmitted copies still awaiting a handshake verdict: the
    /// pending head (`HoldHead`) or the occupied setaside slots. Forget mode
    /// tracks nothing. Mirrored into the `unresolved` bit-plane.
    #[inline]
    pub fn unresolved_len(&self) -> usize {
        match self.mode {
            SendMode::HoldHead => usize::from(self.head_pending),
            SendMode::Setaside(_) => self.setaside.len(),
            SendMode::Forget => 0,
        }
    }

    /// Ids of packets transmitted but not yet resolved by a handshake: the
    /// pending head (`HoldHead`) or the setaside contents (`Setaside`). Forget
    /// mode tracks nothing. Used by the ACK-pairing invariant.
    pub fn unresolved_ids(&self) -> Vec<u64> {
        match self.mode {
            SendMode::HoldHead => {
                if self.head_pending {
                    self.queue.front().map(QueueItem::id).into_iter().collect()
                } else {
                    Vec::new()
                }
            }
            SendMode::Setaside(_) => self.setaside.iter().map(QueueItem::id).collect(),
            SendMode::Forget => Vec::new(),
        }
    }

    /// Class of the packet the next transmission would send (the queue
    /// head), or `None` when the queue is empty. All three send modes
    /// transmit from the queue front, so this is *the* class an admission
    /// decision at grant time applies to.
    #[inline]
    pub fn head_class(&self) -> Option<u8> {
        self.queue.front().map(QueueItem::class)
    }

    /// Bit-mask over [`pnoc_traffic::MAX_CLASSES`] of the classes present
    /// anywhere in the queue (including a pending head). Feeds the
    /// per-class backlogged bit-planes; only computed when `QoS` is active.
    pub fn class_backlog_mask(&self) -> u8 {
        let mut mask = 0u8;
        for p in &self.queue {
            mask |= 1 << p.class();
        }
        mask
    }

    /// Fairness bookkeeping `(consecutive_serves, sit_until)`, for canonical
    /// state-keying.
    pub fn fairness_state(&self) -> (u32, Cycle) {
        (self.consecutive_serves, self.sit_until)
    }

    /// Whether the queue holds no state at all (for drain checks).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.setaside.is_empty() && self.granted == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src_core: 0,
            src_node: 1,
            dst_node: 0,
            kind: PacketKind::Data,
            generated_at: 0,
            enqueued_at: 0,
            sent_at: 0,
            sends: 0,
            measured: false,
            tag: 0,
            class: 0,
        }
    }

    const NOFAIR: FairnessPolicy = FairnessPolicy::None;

    #[test]
    fn hold_head_blocks_until_ack() {
        let mut q = OutQueue::new(SendMode::HoldHead);
        q.push(pkt(1));
        q.push(pkt(2));
        assert_eq!(q.sendable(), 1, "only the head is sendable");
        q.take_grant(0, NOFAIR);
        assert_eq!(q.sendable(), 0, "grant consumes the slot");
        let sent = q.transmit(5).unwrap();
        assert_eq!(sent.id, 1);
        assert_eq!(sent.sent_at, 5);
        assert_eq!(sent.sends, 1);
        assert_eq!(q.sendable(), 0, "HOL: head pending blocks packet 2");
        assert_eq!(q.backlog(), 2, "pending head stays in the queue");
        let acked = q.ack(1).unwrap();
        assert_eq!(acked.id, 1);
        assert_eq!(q.sendable(), 1, "packet 2 now at head");
        assert_eq!(q.backlog(), 1);
    }

    #[test]
    fn hold_head_nack_retransmits_same_packet() {
        let mut q = OutQueue::new(SendMode::HoldHead);
        q.push(pkt(1));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert!(q.nack(1));
        assert_eq!(q.sendable(), 1, "head sendable again after NACK");
        q.take_grant(2, NOFAIR);
        let again = q.transmit(3).unwrap();
        assert_eq!(again.id, 1);
        assert_eq!(again.sends, 2, "retransmission counted");
    }

    #[test]
    fn setaside_frees_the_head() {
        let mut q = OutQueue::new(SendMode::Setaside(2));
        q.push(pkt(1));
        q.push(pkt(2));
        q.push(pkt(3));
        assert_eq!(q.sendable(), 2, "limited by setaside capacity");
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert_eq!(q.setaside_len(), 1);
        assert_eq!(q.sendable(), 1);
        q.take_grant(1, NOFAIR);
        q.transmit(2).unwrap();
        assert_eq!(q.setaside_len(), 2);
        assert_eq!(q.sendable(), 0, "setaside full blocks further sends");
        assert!(q.ack(1).is_some());
        assert_eq!(q.sendable(), 1, "ack frees a setaside slot");
    }

    #[test]
    fn setaside_nack_returns_to_head() {
        let mut q = OutQueue::new(SendMode::Setaside(2));
        q.push(pkt(1));
        q.push(pkt(2));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert!(q.nack(1));
        assert_eq!(q.setaside_len(), 0);
        assert_eq!(q.backlog(), 2);
        q.take_grant(2, NOFAIR);
        let next = q.transmit(3).unwrap();
        assert_eq!(next.id, 1, "NACKed packet retransmits before followers");
        assert_eq!(next.sends, 2);
    }

    #[test]
    fn forget_mode_drops_on_send() {
        let mut q = OutQueue::new(SendMode::Forget);
        q.push(pkt(1));
        q.push(pkt(2));
        assert_eq!(q.sendable(), 2);
        q.take_grant(0, NOFAIR);
        q.take_grant(0, NOFAIR);
        assert_eq!(q.sendable(), 0);
        let a = q.transmit(1).unwrap();
        let b = q.transmit(2).unwrap();
        assert_eq!((a.id, b.id), (1, 2));
        assert!(q.is_idle());
        assert!(q.ack(1).is_none(), "forget mode ignores handshakes");
        assert!(!q.nack(2));
    }

    #[test]
    fn transmit_without_grant_is_none() {
        let mut q = OutQueue::new(SendMode::Forget);
        q.push(pkt(1));
        assert!(q.transmit(0).is_none());
    }

    #[test]
    fn ack_for_unknown_id_is_none() {
        let mut q = OutQueue::new(SendMode::Setaside(2));
        q.push(pkt(1));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert!(q.ack(99).is_none());
        assert!(!q.nack(99));
    }

    #[test]
    fn timeout_retries_a_pending_head() {
        let mut q = OutQueue::new(SendMode::HoldHead);
        q.push(pkt(1));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert_eq!(q.sendable(), 0, "pending head blocks");
        assert_eq!(q.timeout(1, 16), TimeoutAction::Retry);
        assert_eq!(q.sendable(), 1, "timeout makes the head sendable again");
        q.take_grant(2, NOFAIR);
        let again = q.transmit(3).unwrap();
        assert_eq!(again.id, 1);
        assert_eq!(again.sends, 2);
    }

    #[test]
    fn timeout_requeues_a_setaside_packet_ahead_of_followers() {
        let mut q = OutQueue::new(SendMode::Setaside(2));
        q.push(pkt(1));
        q.push(pkt(2));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert_eq!(q.timeout(1, 16), TimeoutAction::Retry);
        assert_eq!(q.setaside_len(), 0);
        q.take_grant(2, NOFAIR);
        let next = q.transmit(3).unwrap();
        assert_eq!(next.id, 1, "timed-out packet retransmits before followers");
    }

    #[test]
    fn timeout_is_stale_after_ack_nack_or_for_forget_mode() {
        let mut q = OutQueue::new(SendMode::Setaside(2));
        q.push(pkt(1));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        q.ack(1).unwrap();
        assert_eq!(q.timeout(1, 16), TimeoutAction::Stale, "ACK beat the timer");

        let mut q = OutQueue::new(SendMode::HoldHead);
        q.push(pkt(7));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert!(q.nack(7));
        assert_eq!(
            q.timeout(7, 16),
            TimeoutAction::Stale,
            "NACK already requeued it"
        );

        let mut q = OutQueue::new(SendMode::Forget);
        q.push(pkt(9));
        q.take_grant(0, NOFAIR);
        q.transmit(1).unwrap();
        assert_eq!(q.timeout(9, 16), TimeoutAction::Stale);
    }

    #[test]
    fn timeout_abandons_after_retry_budget() {
        let mut q = OutQueue::new(SendMode::HoldHead);
        q.push(pkt(1));
        for attempt in 1..=3u64 {
            q.take_grant(attempt, NOFAIR);
            q.transmit(attempt).unwrap();
            let action = q.timeout(1, 3);
            if attempt < 3 {
                assert_eq!(action, TimeoutAction::Retry);
            } else {
                assert!(
                    matches!(action, TimeoutAction::Abandon(p) if p.id == 1),
                    "expected abandon of packet 1, got {action:?}"
                );
            }
        }
        assert!(q.is_idle(), "abandoned packet leaves the queue");
    }

    #[test]
    fn fairness_sit_out_after_quota() {
        let fair = FairnessPolicy::SitOut {
            serve_quota: 2,
            sit_out: 10,
        };
        let mut q = OutQueue::new(SendMode::Forget);
        for i in 0..5 {
            q.push(pkt(i));
        }
        assert!(q.eligible(0, fair));
        q.take_grant(0, fair);
        q.transmit(1);
        assert!(q.eligible(1, fair));
        q.take_grant(1, fair); // second grant hits the quota
        q.transmit(2);
        assert!(!q.eligible(2, fair), "sitting out");
        assert!(!q.eligible(10, fair), "still sitting at 10");
        assert!(q.eligible(11, fair), "sit-out over");
    }

    #[test]
    fn fairness_none_never_sits() {
        let mut q = OutQueue::new(SendMode::Forget);
        for i in 0..100 {
            q.push(pkt(i));
        }
        for t in 0..100u64 {
            assert!(q.eligible(t, NOFAIR));
            q.take_grant(t, NOFAIR);
            q.transmit(t);
        }
        assert!(q.is_idle());
    }

    #[test]
    #[should_panic(expected = "setaside capacity")]
    fn setaside_zero_capacity_rejected() {
        OutQueue::<Packet>::new(SendMode::Setaside(0));
    }
}
