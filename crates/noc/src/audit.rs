//! Cycle-level invariant auditing: cross-field conservation laws checked
//! against live simulator state.
//!
//! [`Channel::try_check_invariants`](crate::channel::Channel::try_check_invariants)
//! validates a single channel's *local* bookkeeping. The
//! [`InvariantAuditor`] goes further: it cross-checks state against the
//! run-level metrics to enforce the conservation laws the paper's arguments
//! rest on —
//!
//! * **flit conservation** — every packet ever generated is, at all times,
//!   exactly one of: awaiting injection, queued at a sender, riding the
//!   ring, buffered at a home, delivered, destroyed by a fault, or
//!   abandoned after exhausting its retry budget;
//! * **exactly-once delivery** — no packet id is ever handed to the local
//!   cores twice (the property duplicate suppression exists to protect);
//! * **credit/token conservation** — for the token-channel scheme, the
//!   home's `input_buffer` credits are conserved across every ledger they
//!   can live in (token, uncommitted pool, outstanding grants, ring flits,
//!   buffer slots, fault leaks); for the token-slot scheme the committed
//!   reservations never exceed capacity;
//! * **ACK pairing** — for handshake schemes, every transmitted-but-
//!   unresolved packet has something that will eventually resolve it: a
//!   copy still on the ring, a handshake in flight, or an armed ACK timer;
//! * **no class starvation** — under admission control, a traffic class
//!   with queued packets keeps receiving grants: because every class
//!   refills at ≥ 1 credit per period, a backlogged class whose grant
//!   counter stops advancing for many refill periods is a liveness bug in
//!   the admission/arbitration pipeline, not a tuning artifact
//!   ([`InvariantAuditor::check_starvation`]).
//!
//! The auditor is wired into [`crate::network::Network::step`] behind the
//! `verify-invariants` cargo feature; structural checks are stride-sampled
//! on large configurations so feature-enabled test runs stay fast, while
//! delivery observation (the exactly-once check) runs every cycle.

use crate::config::Scheme;
use crate::metrics::NetworkMetrics;
use pnoc_sim::Cycle;
use pnoc_traffic::MAX_CLASSES;
use std::collections::BTreeSet;

/// Everything the auditor needs to know about one channel, snapshotted by
/// [`crate::channel::Channel::audit_view_into`]. Owning plain vectors keeps
/// the auditor decoupled from channel internals (and borrow-friendly inside
/// `Network::step`); the `_into` form refills a `Default` view in place so
/// the sampled audit path reuses its allocations.
#[derive(Debug, Clone, Default)]
pub struct ChannelAuditView {
    /// Home node id.
    pub home: usize,
    /// Scheme the channel runs.
    pub scheme: Scheme,
    /// Home input-buffer capacity.
    pub buffer_cap: usize,
    /// Ids buffered at the home, in queue order.
    pub input_queue_ids: Vec<u64>,
    /// Buffer slots held by flits traversing the ejection router.
    pub draining: u32,
    /// Ids of flits currently on the data ring.
    pub ring_ids: Vec<u64>,
    /// Ids queued at senders (including pending heads).
    pub queue_ids: Vec<u64>,
    /// Ids held in sender setaside buffers.
    pub setaside_ids: Vec<u64>,
    /// Ids transmitted but not yet resolved by a handshake.
    pub unresolved_ids: Vec<u64>,
    /// Grants taken but not yet consumed by a transmission, summed over
    /// senders.
    pub granted_total: u32,
    /// Handshakes in flight as `(packet id, is_ack)`.
    pub pending_acks: Vec<(u64, bool)>,
    /// Packet ids with an armed (possibly stale) ACK timer.
    pub armed_timer_ids: Vec<u64>,
    /// Credits riding the global token (token channel only).
    pub credits: Option<u32>,
    /// Live distributed tokens.
    pub outstanding_tokens: usize,
    /// Token channel: credits freed by ejections, awaiting the token.
    pub uncommitted: u32,
    /// Token slot: reservations travelling with granted tokens / flits.
    pub inflight: u32,
    /// Token slot: reservations destroyed by token-loss faults.
    pub lost_reservations: u32,
    /// Token channel: credits permanently destroyed by faults.
    pub leaked_credits: u32,
    /// Whether timeout/retransmit recovery is armed.
    pub recovery_enabled: bool,
    /// Whether fault injection is live on this channel.
    pub faults_active: bool,
    /// Whether per-class admission control is configured.
    pub admission_enabled: bool,
    /// Admission refill period in cycles (0 when admission is off).
    pub admission_period: u32,
    /// Current admission bucket levels, per class.
    pub admission_tokens: [u8; MAX_CLASSES],
    /// Admission bucket capacities, per class.
    pub admission_burst: [u8; MAX_CLASSES],
    /// Queued packets per class, summed over senders.
    pub class_backlog: [usize; MAX_CLASSES],
    /// Cumulative grants per class (the starvation audit's progress
    /// witness).
    pub class_granted: [u64; MAX_CLASSES],
}

/// Network-wide invariant auditor (see module docs). One instance lives for
/// the whole run: it accumulates the delivered-id set that the conservation
/// and exactly-once checks need.
#[derive(Debug, Clone, Default)]
pub struct InvariantAuditor {
    delivered_ids: BTreeSet<u64>,
    stride: u64,
    /// Starvation tracking, indexed `[channel][class]`: the grant count at
    /// the last sample and how long the class has been backlogged without
    /// a single new grant. Grown lazily to the view count.
    starvation: Vec<[StarveCell; MAX_CLASSES]>,
}

/// Per-(channel, class) starvation-progress cell.
#[derive(Debug, Clone, Copy, Default)]
struct StarveCell {
    /// `class_granted` at the last observation.
    last_granted: u64,
    /// Cycle the class became backlogged with no grant progress since
    /// (`None` while idle or progressing).
    stalled_since: Option<Cycle>,
}

/// Full structural checks run every cycle up to this many nodes; larger
/// networks are stride-sampled (delivery observation still runs every
/// cycle). 61 is prime, so sampling never locks onto a periodic artifact
/// of ring length or token sweep period.
const FULL_CHECK_NODES: usize = 8;
const SAMPLED_STRIDE: u64 = 61;

impl InvariantAuditor {
    /// An auditor for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            delivered_ids: BTreeSet::new(),
            stride: if nodes <= FULL_CHECK_NODES {
                1
            } else {
                SAMPLED_STRIDE
            },
            starvation: Vec::new(),
        }
    }

    /// Record a delivery. Fails on a duplicate — the exactly-once check.
    pub fn observe_delivery(&mut self, id: u64) -> Result<(), String> {
        if self.delivered_ids.insert(id) {
            Ok(())
        } else {
            Err(format!("packet {id} delivered twice"))
        }
    }

    /// Packets delivered so far (distinct ids).
    pub fn delivered_count(&self) -> usize {
        self.delivered_ids.len()
    }

    /// Whether the (possibly sampled) structural check is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now.is_multiple_of(self.stride)
    }

    /// Run every structural check against the channel snapshots, the
    /// accumulated metrics, and the ids still waiting in the injection
    /// pipeline. Returns the first violation found.
    pub fn check(
        &self,
        views: &[ChannelAuditView],
        m: &NetworkMetrics,
        pending_inject_ids: &[u64],
    ) -> Result<(), String> {
        for v in views {
            Self::check_buffer(v)?;
            Self::check_credit_conservation(v)?;
            Self::check_ack_pairing(v)?;
        }
        self.check_flit_conservation(views, m, pending_inject_ids)?;
        // (Starvation is checked separately — it needs `&mut self` to track
        // progress across samples; see [`InvariantAuditor::check_starvation`].)
        if self.delivered_ids.len() as u64 != m.delivered {
            return Err(format!(
                "delivered counter ({}) disagrees with observed deliveries ({})",
                m.delivered,
                self.delivered_ids.len()
            ));
        }
        Ok(())
    }

    /// Liveness across samples: under admission control, a backlogged class
    /// must keep receiving grants. The tolerance is many refill periods (and
    /// never under 4096 cycles), so transient contention — another class
    /// bursting, a fairness sit-out, a full buffer — cannot trip it; only a
    /// class that is genuinely wedged can. Call once per sampled cycle,
    /// after [`InvariantAuditor::check`].
    pub fn check_starvation(
        &mut self,
        now: Cycle,
        views: &[ChannelAuditView],
    ) -> Result<(), String> {
        if self.starvation.len() < views.len() {
            self.starvation
                .resize(views.len(), [StarveCell::default(); MAX_CLASSES]);
        }
        for (i, v) in views.iter().enumerate() {
            if !v.admission_enabled {
                continue;
            }
            let window = (u64::from(v.admission_period) * 64).max(4096);
            for c in 0..MAX_CLASSES {
                let cell = &mut self.starvation[i][c];
                let progressed = v.class_granted[c] != cell.last_granted;
                cell.last_granted = v.class_granted[c];
                if v.class_backlog[c] == 0 || progressed {
                    cell.stalled_since = None;
                    continue;
                }
                let since = *cell.stalled_since.get_or_insert(now);
                if now.saturating_sub(since) > window {
                    return Err(format!(
                        "home {}: class {c} starved — backlog {} with no \
                         grant since cycle {since} (now {now}, tolerance {window})",
                        v.home, v.class_backlog[c]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Buffer occupancy (queued + draining) never exceeds capacity; for the
    /// token slot, committed reservations never exceed capacity either.
    fn check_buffer(v: &ChannelAuditView) -> Result<(), String> {
        let occupied = v.input_queue_ids.len() + v.draining as usize;
        if occupied > v.buffer_cap {
            return Err(format!(
                "home {}: buffer occupancy {occupied} exceeds capacity {}",
                v.home, v.buffer_cap
            ));
        }
        if v.scheme == Scheme::TokenSlot {
            let committed = occupied
                + v.inflight as usize
                + v.lost_reservations as usize
                + v.outstanding_tokens;
            if committed > v.buffer_cap {
                return Err(format!(
                    "home {}: token-slot commitments {committed} exceed capacity {}",
                    v.home, v.buffer_cap
                ));
            }
        }
        Ok(())
    }

    /// Token channel: the `input_buffer` credits the channel was born with
    /// are conserved across every ledger a credit can live in.
    fn check_credit_conservation(v: &ChannelAuditView) -> Result<(), String> {
        if v.scheme != Scheme::TokenChannel {
            return Ok(());
        }
        let Some(credits) = v.credits else {
            return Err(format!("home {}: token channel without credits", v.home));
        };
        // `recovery_enabled` on a credit scheme would route duplicates
        // through an unaccounted discard path; no supported configuration
        // arms it, so the ledger below is exhaustive.
        let total = credits as usize
            + v.uncommitted as usize
            + v.leaked_credits as usize
            + v.granted_total as usize
            + v.ring_ids.len()
            + v.input_queue_ids.len()
            + v.draining as usize;
        if total != v.buffer_cap {
            return Err(format!(
                "home {}: credit conservation violated: {credits} on token + {} \
                 uncommitted + {} leaked + {} granted + {} on ring + {} buffered \
                 + {} draining = {total}, expected {}",
                v.home,
                v.uncommitted,
                v.leaked_credits,
                v.granted_total,
                v.ring_ids.len(),
                v.input_queue_ids.len(),
                v.draining,
                v.buffer_cap
            ));
        }
        Ok(())
    }

    /// Handshake schemes: every transmitted-but-unresolved packet must hold
    /// something that will eventually resolve it — a ring copy, a handshake
    /// in flight, or (with recovery) an armed ACK timer. Skipped when faults
    /// are active without recovery: a lost ACK then legitimately wedges the
    /// sender copy forever, which is precisely the failure mode the
    /// reliability subsystem exists to demonstrate.
    fn check_ack_pairing(v: &ChannelAuditView) -> Result<(), String> {
        if !v.scheme.uses_handshake() {
            return Ok(());
        }
        if v.faults_active && !v.recovery_enabled {
            return Ok(());
        }
        for &id in &v.unresolved_ids {
            let on_ring = v.ring_ids.contains(&id);
            let ack_in_flight = v.pending_acks.iter().any(|&(aid, _)| aid == id);
            let timer_armed = v.recovery_enabled && v.armed_timer_ids.contains(&id);
            if !(on_ring || ack_in_flight || timer_armed) {
                return Err(format!(
                    "home {}: packet {id} awaits a handshake but nothing can \
                     resolve it (no ring copy, no ACK in flight, no armed timer)",
                    v.home
                ));
            }
        }
        Ok(())
    }

    /// Network-wide flit conservation over *distinct ids*: a handshake
    /// scheme holds a sender-side copy of a packet the home may already
    /// have delivered, so copies cannot simply be counted — the union of
    /// live and delivered ids must equal everything generated minus
    /// everything destroyed.
    fn check_flit_conservation(
        &self,
        views: &[ChannelAuditView],
        m: &NetworkMetrics,
        pending_inject_ids: &[u64],
    ) -> Result<(), String> {
        // Live ids are few (bounded by queues + ring + buffers); collect
        // them and count only the ones not already delivered, instead of
        // cloning the (large, monotonically growing) delivered set.
        let mut live: BTreeSet<u64> = pending_inject_ids.iter().copied().collect();
        for v in views {
            live.extend(v.queue_ids.iter().copied());
            live.extend(v.setaside_ids.iter().copied());
            live.extend(v.ring_ids.iter().copied());
            live.extend(v.input_queue_ids.iter().copied());
        }
        let undelivered_live = live
            .iter()
            .filter(|id| !self.delivered_ids.contains(id))
            .count();
        let accounted = (self.delivered_ids.len() + undelivered_live) as u64;
        // Destroyed-for-good packets by scheme: handshake schemes retransmit
        // through faults and only `abandoned` (retry budget exhausted) is
        // final; the forget-on-send schemes lose every faulted flit.
        let gone = match views.first().map(|v| v.scheme) {
            Some(s) if s.uses_handshake() => m.abandoned,
            _ => m.faults_data_lost + m.faults_data_corrupt,
        };
        let expected = m.generated.saturating_sub(gone);
        if accounted != expected {
            return Err(format!(
                "flit conservation violated: {accounted} distinct ids live or \
                 delivered, expected {expected} ({} generated - {gone} destroyed)",
                m.generated
            ));
        }
        Ok(())
    }
}
