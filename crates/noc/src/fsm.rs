//! The handshake/credit FSMs behind a small step-relation trait, for
//! bounded model checking.
//!
//! The checker (crate `pnoc-verify`) explores the *real* implementation —
//! [`crate::channel::Channel`], not a re-modelled abstraction — so a proof
//! over the model is a proof over the simulator. Two things make that
//! tractable:
//!
//! * [`CycleFsm::state_key`] produces a canonical, time-normalized encoding
//!   of the complete dynamic state (every absolute cycle re-based against
//!   `now`), so states that differ only by a time shift deduplicate and the
//!   reachable space of a small configuration closes;
//! * environment nondeterminism is reduced to *injection choices*: each
//!   step, any subset of senders with packets left may enqueue their next
//!   packet. Everything else (arbitration, transmission, handshakes,
//!   recovery) is deterministic given the state — including fault schedules,
//!   which use probability-1.0 processes under a finite fault budget so the
//!   RNG never draws and the schedule is exact rather than sampled.
//!
//! Violations surface as `Err` from [`CycleFsm::step`] (invariant breakage,
//! duplicate delivery) or from the checker's own liveness/completeness
//! analysis on top of [`CycleFsm::drained`] and
//! [`CycleFsm::unaccounted_packets`].

use crate::channel::{Channel, Delivery};
use crate::config::{NetworkConfig, Scheme};
use crate::metrics::NetworkMetrics;
use crate::packet::{Packet, PacketKind};
use pnoc_sim::Cycle;
use std::collections::BTreeSet;

/// What one cycle of an FSM produced (for trace rendering and property
/// checks).
#[derive(Debug, Clone, Default)]
pub struct CycleEvents {
    /// Packet ids delivered to the home's cores this cycle.
    pub delivered: Vec<u64>,
    /// Packets abandoned this cycle (retry budget exhausted).
    pub abandoned: u64,
    /// Packets destroyed this cycle by injected faults on a forget-on-send
    /// scheme (no sender copy exists, so the loss is final).
    pub destroyed: u64,
}

/// A cycle-level finite state machine with explicit environment choices —
/// the interface the bounded model checker explores.
pub trait CycleFsm: Clone {
    /// Canonical, time-normalized encoding of the complete dynamic state.
    /// Two states with equal keys have identical futures for identical
    /// choice sequences.
    fn state_key(&self) -> Vec<u64>;

    /// The injection choices available this cycle: every subset of senders
    /// that still have packets to inject (always includes the empty
    /// choice). The checker branches on each.
    fn choices(&self) -> Vec<Vec<usize>>;

    /// Advance one cycle, injecting the next packet of each sender in
    /// `inject`. Fails on an invariant violation or duplicate delivery.
    fn step(&mut self, inject: &[usize]) -> Result<CycleEvents, String>;

    /// Whether all queues, ring slots, buffers and handshakes are empty.
    fn drained(&self) -> bool;

    /// Whether any sender still has packets left to inject.
    fn pending_injections(&self) -> bool;

    /// Once drained with nothing left to inject: packets neither delivered
    /// nor accounted as destroyed/abandoned (must be zero — the
    /// completeness property).
    fn unaccounted_packets(&self) -> u64;
}

/// One MWSR channel (home plus its senders) driven as a closed FSM with a
/// fixed per-sender workload. This is the unit the model checker verifies:
/// network-level behavior is a product of independent channels, so
/// per-channel deadlock-freedom and exactly-once delivery lift to the
/// network.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    ch: Channel,
    now: Cycle,
    metrics: NetworkMetrics,
    /// Sender node ids that participate (everyone but the home).
    senders: Vec<usize>,
    /// Packets each participating sender still has to inject.
    remaining: Vec<u32>,
    /// Packets each sender was given initially.
    initial: u32,
    /// Ids delivered so far (duplicate detection + state key).
    delivered: BTreeSet<u64>,
    abandoned: u64,
    destroyed: u64,
    home: usize,
    scheme: Scheme,
    scratch: Vec<Delivery>,
    /// Sabotage knob: clear the home's duplicate-suppression set every
    /// cycle. Used by the checker's self-test to prove it can produce a
    /// duplicate-delivery counterexample.
    sabotage_forget_accepted: bool,
}

impl ChannelModel {
    /// A model of the channel homed at node 0 of `cfg`, in which each of
    /// `active_senders` will inject `packets_each` packets.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or an out-of-range sender.
    pub fn new(cfg: &NetworkConfig, active_senders: &[usize], packets_each: u32) -> Self {
        cfg.validate().expect("invalid model config");
        let home = 0usize;
        for &s in active_senders {
            assert!(s < cfg.nodes && s != home, "bad sender {s}");
        }
        Self {
            ch: Channel::new(home, cfg),
            now: 0,
            metrics: NetworkMetrics::new(),
            senders: active_senders.to_vec(),
            remaining: vec![packets_each; active_senders.len()],
            initial: packets_each,
            delivered: BTreeSet::new(),
            abandoned: 0,
            destroyed: 0,
            home,
            scheme: cfg.scheme,
            scratch: Vec::new(),
            sabotage_forget_accepted: false,
        }
    }

    /// Arm the intentional bug: duplicate suppression is disabled on every
    /// subsequent cycle (see [`Channel::forget_accepted_ids`]).
    pub fn sabotage_forget_accepted(&mut self) {
        self.sabotage_forget_accepted = true;
    }

    /// Total packets the workload will inject.
    pub fn total_packets(&self) -> u64 {
        self.senders.len() as u64 * u64::from(self.initial)
    }

    /// Packets delivered so far (distinct ids).
    pub fn delivered_count(&self) -> u64 {
        self.delivered.len() as u64
    }

    /// Deterministic id for sender index `idx`'s `seq`-th packet: stable
    /// across injection orders, so interleavings that end in the same
    /// configuration produce identical state keys.
    fn packet_id(&self, idx: usize, seq: u32) -> u64 {
        (self.senders[idx] as u64) << 32 | u64::from(seq)
    }

    /// Destroyed-for-good packets implied by the metrics: forget-on-send
    /// schemes lose every faulted flit; handshake schemes retransmit and
    /// lose only what recovery abandons (tracked separately).
    fn fault_destroyed(&self) -> u64 {
        if self.scheme.forgets_on_send() {
            self.metrics.faults_data_lost + self.metrics.faults_data_corrupt
        } else {
            0
        }
    }
}

impl CycleFsm for ChannelModel {
    fn state_key(&self) -> Vec<u64> {
        let mut key = Vec::with_capacity(96);
        key.extend(self.remaining.iter().map(|&r| u64::from(r)));
        key.push(u64::MAX);
        key.extend(self.delivered.iter().copied());
        key.push(u64::MAX);
        key.push(self.abandoned);
        key.push(self.destroyed);
        self.ch.state_key(self.now, &mut key);
        key
    }

    fn choices(&self) -> Vec<Vec<usize>> {
        // Senders that can still inject; branch on every subset of them.
        let can: Vec<usize> = (0..self.senders.len())
            .filter(|&i| self.remaining[i] > 0)
            .collect();
        let mut out = Vec::with_capacity(1 << can.len());
        for mask in 0u32..(1u32 << can.len()) {
            out.push(
                can.iter()
                    .enumerate()
                    .filter(|&(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &i)| i)
                    .collect(),
            );
        }
        out
    }

    fn step(&mut self, inject: &[usize]) -> Result<CycleEvents, String> {
        for &idx in inject {
            if self.remaining[idx] == 0 {
                return Err(format!("sender index {idx} has no packets left"));
            }
            let seq = self.initial - self.remaining[idx];
            let src = self.senders[idx];
            self.ch.enqueue(Packet {
                id: self.packet_id(idx, seq),
                src_core: crate::convert::narrow_u32(src * 2),
                src_node: crate::convert::narrow_u32(src),
                dst_node: crate::convert::narrow_u32(self.home),
                kind: PacketKind::Data,
                generated_at: self.now,
                enqueued_at: self.now,
                sent_at: 0,
                sends: 0,
                measured: false,
                tag: 0,
                class: 0,
            });
            self.remaining[idx] -= 1;
            self.metrics.generated += 1;
        }
        if self.sabotage_forget_accepted {
            self.ch.forget_accepted_ids();
        }
        let abandoned_before = self.metrics.abandoned;
        let destroyed_before = self.fault_destroyed();
        self.scratch.clear();
        let now = self.now;
        self.ch.phase_advance();
        self.ch.phase_arrival(now, &mut self.metrics);
        self.ch.phase_acks(now, &mut self.metrics);
        self.ch.phase_transmit(now, &mut self.metrics);
        self.ch.phase_tokens(now, &mut self.metrics);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.ch.phase_eject(now, &mut self.metrics, &mut scratch);
        self.now += 1;
        let mut events = CycleEvents::default();
        let mut duplicate = None;
        for d in &scratch {
            if self.delivered.insert(d.pkt.id) {
                events.delivered.push(d.pkt.id);
            } else {
                duplicate = Some(d.pkt.id);
                break;
            }
        }
        self.scratch = scratch;
        if let Some(id) = duplicate {
            return Err(format!("packet {id} delivered twice"));
        }
        events.abandoned = self.metrics.abandoned - abandoned_before;
        events.destroyed = self.fault_destroyed() - destroyed_before;
        self.abandoned += events.abandoned;
        self.destroyed += events.destroyed;
        self.ch
            .try_check_invariants()
            .map_err(|why| format!("cycle {now}: {why}"))?;
        Ok(events)
    }

    fn drained(&self) -> bool {
        self.ch.is_drained()
    }

    fn pending_injections(&self) -> bool {
        self.remaining.iter().any(|&r| r > 0)
    }

    fn unaccounted_packets(&self) -> u64 {
        self.total_packets()
            .saturating_sub(self.delivered_count() + self.abandoned + self.destroyed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn tiny(scheme: Scheme) -> NetworkConfig {
        let mut cfg = NetworkConfig::paper_default(scheme);
        cfg.nodes = 2;
        cfg.cores_per_node = 2;
        cfg.ring_segments = 2;
        cfg.input_buffer = 2;
        cfg.router_latency = 1;
        cfg
    }

    #[test]
    fn model_reaches_drain_under_eager_injection() {
        for scheme in Scheme::paper_set(1) {
            let mut m = ChannelModel::new(&tiny(scheme), &[1], 2);
            // Inject as fast as allowed, then run to drain.
            for _ in 0..200 {
                let inject: Vec<usize> = if m.pending_injections() {
                    vec![0]
                } else {
                    vec![]
                };
                m.step(&inject).expect("step must not violate invariants");
                if m.drained() && !m.pending_injections() {
                    break;
                }
            }
            assert!(m.drained(), "{scheme:?} did not drain");
            assert_eq!(m.unaccounted_packets(), 0, "{scheme:?} lost packets");
            assert_eq!(m.delivered_count(), 2, "{scheme:?}");
        }
    }

    #[test]
    fn state_keys_are_time_shift_invariant() {
        // Two models: one idles 7 cycles before injecting, one injects
        // immediately. After both drain and idle one extra cycle, their
        // dynamic state is identical, so their keys must collide.
        let cfg = tiny(Scheme::Dhs { setaside: 1 });
        let run = |idle: u32| {
            let mut m = ChannelModel::new(&cfg, &[1], 1);
            for _ in 0..idle {
                m.step(&[]).unwrap();
            }
            m.step(&[0]).unwrap();
            while !m.drained() {
                m.step(&[]).unwrap();
            }
            m.step(&[]).unwrap();
            m.state_key()
        };
        assert_eq!(run(0), run(7), "drained states must dedupe across time");
    }

    #[test]
    fn choices_enumerate_injection_subsets() {
        let cfg = tiny(Scheme::TokenSlot);
        let mut big = cfg;
        big.nodes = 4;
        big.ring_segments = 4;
        big.cores_per_node = 2;
        let m = ChannelModel::new(&big, &[1, 2, 3], 1);
        assert_eq!(m.choices().len(), 8, "2^3 subsets of 3 ready senders");
        let m2 = ChannelModel::new(&big, &[1, 2, 3], 0);
        assert_eq!(m2.choices().len(), 1, "only the empty choice remains");
    }
}
