//! Flow control: how a sender's packet claims (and releases) home buffer
//! space.
//!
//! The paper's schemes split along one axis: *credit reservation* (a token
//! carries or embodies guaranteed buffer space, so arrivals can never
//! overflow) versus *handshake* (senders transmit optimistically and the
//! home answers with an ACK/NACK `R + 1` cycles later). This module owns
//! everything on that axis:
//!
//! * [`CreditFlow`] — the token channel's credit ledger (credits riding the
//!   token, uncommitted reimbursements, fault leaks);
//! * [`SlotFlow`] — the token slot's distributed reservations (one token =
//!   one committed buffer slot, in-flight accounting, lost reservations);
//! * [`HandshakeFlow`] — GHS/DHS: the ACK/NACK calendar, sender-side
//!   retransmit timers, and the accepted-id set for duplicate suppression;
//! * [`FlowKind`] — the construction-time dispatch wrapper. The variant is
//!   chosen once in [`super::build`]; per-cycle hooks are direct enum
//!   branches, never a re-match on [`crate::config::Scheme`].
//!
//! The arbiter side of a scheme (who may transmit next) lives in
//! [`super::arbiter`]; a [`crate::channel::Channel`] composes one of each.

use crate::calendar::Calendar;
use crate::metrics::NetworkMetrics;
use crate::outqueue::{OutQueue, TimeoutAction};
use crate::packet::Packet;
use crate::slots::SlotRing;
use pnoc_faults::{AckFate, ChannelInjector, RecoveryConfig};
use pnoc_obs::EventKind;
use pnoc_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::idset::SortedIdSet;
use super::sendable::SendableSet;

/// An ACK/NACK in flight on the handshake channel.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Sender node the handshake addresses.
    pub sender: usize,
    /// Packet id the handshake resolves.
    pub id: u64,
    /// `true` = ACK (accepted), `false` = NACK (dropped or corrupt).
    pub ok: bool,
}

/// Token-channel credit ledger: the home's `input_buffer` credits ride the
/// global token and are reimbursed only when the token passes home.
#[derive(Debug, Clone)]
pub struct CreditFlow {
    /// Credits currently riding the token.
    pub credits: u32,
    /// Credits freed by ejections, awaiting the token's next home pass.
    pub uncommitted: u32,
    /// Credits permanently destroyed by faults (flits lost while holding a
    /// reservation, credits riding a destroyed token). Balances the
    /// conservation invariant `credits + uncommitted + outstanding + leaked
    /// == buffer_cap`.
    pub leaked: u32,
}

impl CreditFlow {
    /// A fresh ledger holding all `credits`.
    pub fn new(credits: u32) -> Self {
        Self {
            credits,
            uncommitted: 0,
            leaked: 0,
        }
    }
}

/// Token-slot reservations: each distributed token embodies one committed
/// buffer slot.
#[derive(Debug, Clone, Default)]
pub struct SlotFlow {
    /// Reservations travelling with granted tokens / flits in flight.
    pub inflight: u32,
    /// Reservations destroyed by token-loss faults. The home cannot observe
    /// the destruction, so the slots stay committed forever — this is the
    /// credit leak the handshake schemes are immune to.
    pub lost_reservations: u32,
}

/// GHS/DHS handshake state: ACK/NACK events in flight, sender-side
/// retransmit timers, and the accepted-id set for duplicate suppression.
#[derive(Debug, Clone)]
pub struct HandshakeFlow {
    /// Handshake events in flight.
    pub acks: Calendar<AckEvent>,
    /// Armed ACK timers, earliest deadline first: `(deadline, sender, id)`.
    /// Entries are validated lazily against the sender queue when they
    /// fire, so stale timers (handshake arrived first) are harmless.
    pub ack_timers: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    /// Packet ids already accepted into the input buffer, kept while
    /// recovery is enabled so a retransmission after a *lost ACK* is
    /// discarded (and re-ACKed) instead of delivered twice.
    pub accepted_ids: SortedIdSet,
    /// Whether the scheme uses setaside buffers (`setaside > 0`): sent
    /// packets leave the queue at transmission and return on NACK, instead
    /// of blocking the head until their handshake resolves.
    pub setaside: bool,
}

impl HandshakeFlow {
    /// Handshake state for a ring of `segments` segments (the calendar
    /// horizon covers the fixed `segments + 1` handshake delay).
    pub fn new(segments: usize, setaside: bool) -> Self {
        Self {
            acks: Calendar::new(segments + 2),
            ack_timers: BinaryHeap::new(),
            accepted_ids: SortedIdSet::new(),
            setaside,
        }
    }

    /// Deliver this cycle's handshakes to their senders, then fire expired
    /// ACK timers. `queued_total` is the channel's cached cross-sender
    /// backlog, adjusted here exactly as the send-mode bookkeeping demands;
    /// `sendable` is the channel's sendable-sender mask, refreshed after
    /// every queue mutation (ACKs unblock `HoldHead` heads, NACKs and
    /// timeouts re-queue setaside packets).
    #[allow(clippy::too_many_arguments)]
    pub fn phase_acks(
        &mut self,
        now: Cycle,
        home: usize,
        senders: &mut [OutQueue],
        dist_of: &[usize],
        sendable: &mut SendableSet,
        queued_total: &mut usize,
        mut injector: Option<&mut ChannelInjector>,
        recovery: &RecoveryConfig,
        handshake_delay: Cycle,
        m: &mut NetworkMetrics,
    ) {
        let setaside = self.setaside;
        for ev in self.acks.drain(now) {
            // Handshake-channel fault: the pulse never reaches the sender.
            // The sender learns nothing; with recovery enabled its ACK timer
            // eventually retransmits, without it the packet wedges.
            if let Some(inj) = injector.as_deref_mut() {
                if inj.active() && inj.ack_fate(handshake_delay) == AckFate::Lost {
                    m.faults_acks_lost += 1;
                    m.trace(now, home, ev.sender, ev.id, EventKind::AckLost);
                    continue;
                }
            }
            let q = &mut senders[ev.sender];
            if ev.ok {
                if q.ack(ev.id).is_some() {
                    m.trace(now, home, ev.sender, ev.id, EventKind::Ack);
                    // HoldHead keeps the packet queued until the ACK:
                    // account for its departure now. Setaside removed it
                    // from the queue at transmission time.
                    if !setaside {
                        *queued_total -= 1;
                    }
                } else {
                    // A re-ACK for a suppressed duplicate can land after the
                    // first ACK already released the packet; only recovery
                    // produces that. Always-on: an unexpected ACK in a
                    // recovery-free run means the handshake FSM desynced.
                    assert!(recovery.enabled, "ACK for unknown packet {}", ev.id);
                }
            } else if q.nack(ev.id) {
                m.retransmissions += 1;
                m.trace(now, home, ev.sender, ev.id, EventKind::Nack);
                // Setaside NACK pushes the packet back into the queue.
                if setaside {
                    *queued_total += 1;
                }
            } else {
                // The packet already timed out and retransmitted; this NACK
                // answers a transmission the sender no longer tracks. Only
                // recovery can produce that race.
                assert!(recovery.enabled, "NACK for unknown packet {}", ev.id);
            }
            sendable.set(dist_of[ev.sender], senders[ev.sender].sendable() > 0);
        }
        // Expired ACK timers (armed per transmission when recovery is on).
        // A timer firing while the packet still awaits its handshake means
        // the flit or its ACK was lost: retransmit, like a NACK, under
        // exponential backoff and a bounded retry budget.
        while let Some(&Reverse((deadline, sender, id))) = self.ack_timers.peek() {
            if deadline > now {
                break;
            }
            self.ack_timers.pop();
            match senders[sender].timeout(id, recovery.max_retries) {
                TimeoutAction::Retry => {
                    m.timeout_retransmissions += 1;
                    m.trace(now, home, sender, id, EventKind::TimeoutRetransmit);
                    // Setaside: the packet moved back from setaside into the
                    // queue, mirroring the NACK bookkeeping above.
                    if setaside {
                        *queued_total += 1;
                    }
                }
                TimeoutAction::Abandon => {
                    m.abandoned += 1;
                    m.trace(now, home, sender, id, EventKind::Abandon);
                    // A HoldHead abandon pops the pending head off the queue.
                    if !setaside {
                        *queued_total -= 1;
                    }
                }
                TimeoutAction::Stale => {}
            }
            sendable.set(dist_of[sender], senders[sender].sendable() > 0);
        }
    }
}

/// What the flow-control layer may touch while deciding an arrival's fate.
/// Field-level borrows keep the hot path free of whole-`Channel` aliasing.
#[derive(Debug)]
pub struct ArrivalCx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// The home node id (trace-event addressing).
    pub home: usize,
    /// The home's ring segment (for circulation reinjects).
    pub home_seg: usize,
    /// Fixed handshake delay (`segments + 1`).
    pub handshake_delay: Cycle,
    /// Whether timeout/retransmit recovery is armed.
    pub recovery_enabled: bool,
    /// Whether the home buffer has room (queued + draining < capacity).
    pub has_room: bool,
    /// The home input buffer.
    pub input_queue: &'a mut VecDeque<Packet>,
    /// The data ring (circulation puts rejected flits back).
    pub data: &'a mut SlotRing<Packet>,
    /// Channel flag: a reinjection this cycle suppresses token emission.
    pub suppress_token: &'a mut bool,
}

/// Construction-time flow-control dispatch (see module docs).
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// Token channel: credits ride the global token.
    Credit(CreditFlow),
    /// Token slot: one distributed token = one committed buffer slot.
    Slot(SlotFlow),
    /// GHS/DHS: ACK/NACK handshake with optional setaside buffers.
    Handshake(HandshakeFlow),
    /// DHS with circulation: no handshake, no reservation — a full home
    /// reinjects the flit into its own data channel.
    Circulation,
}

impl FlowKind {
    /// The handshake state, if this is a handshake scheme.
    #[inline]
    pub fn handshake(&self) -> Option<&HandshakeFlow> {
        match self {
            FlowKind::Handshake(h) => Some(h),
            _ => None,
        }
    }

    /// Mutable access to the handshake state.
    #[inline]
    pub fn handshake_mut(&mut self) -> Option<&mut HandshakeFlow> {
        match self {
            FlowKind::Handshake(h) => Some(h),
            _ => None,
        }
    }

    /// Whether a grant may be issued right now (token channel: a credit
    /// must ride the token; every other scheme gates elsewhere).
    #[inline]
    pub fn has_credit(&self) -> bool {
        match self {
            FlowKind::Credit(c) => c.credits > 0,
            _ => true,
        }
    }

    /// A grant was issued by the *global* arbiter: spend the credit it
    /// carries.
    #[inline]
    pub fn spend_credit(&mut self) {
        if let FlowKind::Credit(c) = self {
            c.credits -= 1;
        }
    }

    /// A grant was issued by the *distributed* arbiter: the token slot's
    /// reservation starts travelling with the grant.
    #[inline]
    pub fn on_grant(&mut self) {
        if let FlowKind::Slot(s) = self {
            s.inflight += 1;
        }
    }

    /// The global token passed home: the token channel reimburses every
    /// credit freed since the last pass (paper Fig. 2a); GHS has nothing
    /// to do.
    #[inline]
    pub fn on_home_pass(&mut self) {
        if let FlowKind::Credit(c) = self {
            c.credits += c.uncommitted;
            c.uncommitted = 0;
        }
    }

    /// A buffer slot was freed by an ejection; for the token channel it
    /// becomes a reimbursable credit on the token's next home pass.
    #[inline]
    pub fn on_slot_freed(&mut self) {
        if let FlowKind::Credit(c) = self {
            c.uncommitted += 1;
        }
    }

    /// The sweeping global token was destroyed by a fault. Token-channel
    /// credits ride on the token and die with it — an unrecoverable leak.
    /// (The GHS token carries nothing; it is fully replaced.)
    #[inline]
    pub fn on_sweeping_token_lost(&mut self, m: &mut NetworkMetrics) {
        if let FlowKind::Credit(c) = self {
            m.credit_leaks += u64::from(c.credits);
            c.leaked += c.credits;
            c.credits = 0;
        }
    }

    /// `destroyed` distributed tokens were lost to faults. The token slot's
    /// reservations stay committed forever — a permanent leak of buffer
    /// capacity. (DHS re-emits every cycle, so a lost token costs one cycle
    /// of arbitration, nothing more.)
    #[inline]
    pub fn on_tokens_destroyed(&mut self, destroyed: usize, m: &mut NetworkMetrics) {
        if let FlowKind::Slot(s) = self {
            s.lost_reservations += crate::convert::narrow_u32(destroyed);
            m.credit_leaks += destroyed as u64;
        }
    }

    /// Whether the home may emit a distributed token this cycle:
    /// the token slot regenerates only while it has uncommitted buffer
    /// space; DHS emits unconditionally; circulation skips the cycle a
    /// reinjection virtually consumed.
    #[inline]
    pub fn may_emit(
        &self,
        buffered: usize,
        tokens_out: usize,
        buffer_cap: usize,
        suppressed: bool,
    ) -> bool {
        match self {
            FlowKind::Slot(s) => {
                let committed =
                    buffered + s.inflight as usize + s.lost_reservations as usize + tokens_out;
                committed < buffer_cap
            }
            FlowKind::Handshake(_) => true,
            FlowKind::Circulation => !suppressed,
            FlowKind::Credit(_) => {
                unreachable!("global credit flow never pairs with distributed arbitration")
            }
        }
    }

    /// A flit was destroyed in flight: the home never sees it, so no
    /// handshake fires and no buffer slot is touched; reservation-carrying
    /// schemes leak the space it had claimed.
    #[inline]
    pub fn on_data_lost(&mut self, m: &mut NetworkMetrics) {
        match self {
            // The credit reserved for this flit can never be reimbursed
            // (the slot is never occupied, so it is never ejected): a
            // permanent leak.
            FlowKind::Credit(c) => {
                c.leaked += 1;
                m.credit_leaks += 1;
            }
            // The in-flight reservation is never returned (`inflight`
            // stays elevated forever).
            FlowKind::Slot(_) => m.credit_leaks += 1,
            // Handshake senders recover by ACK timeout; circulation has no
            // sender copy — a true loss.
            FlowKind::Handshake(_) | FlowKind::Circulation => {}
        }
    }

    /// A flit arrived corrupted (CRC failure at the home).
    #[inline]
    pub fn on_data_corrupt(&mut self, pkt: &Packet, handshake_delay: Cycle) {
        match self {
            // Discarded at the home; generously return the credit (the flit
            // itself is still gone for good — credit schemes cannot ask for
            // a retransmission).
            FlowKind::Credit(c) => c.uncommitted += 1,
            FlowKind::Slot(s) => {
                assert!(s.inflight > 0, "inflight underflow");
                s.inflight -= 1;
            }
            // CRC failure ⇒ NACK; the sender retransmits exactly as after a
            // full-buffer drop.
            FlowKind::Handshake(h) => {
                h.acks.schedule(
                    pkt.sent_at + handshake_delay,
                    AckEvent {
                        sender: pkt.src_node as usize,
                        id: pkt.id,
                        ok: false,
                    },
                );
            }
            FlowKind::Circulation => {}
        }
    }

    /// An intact, non-duplicate flit reached the home: accept it into the
    /// buffer, or apply the scheme's rejection behaviour (handshake NACK /
    /// circulation reinject). Credit-reserved schemes can never reject.
    pub fn accept(&mut self, mut pkt: Packet, cx: &mut ArrivalCx<'_>, m: &mut NetworkMetrics) {
        match self {
            FlowKind::Credit(_) | FlowKind::Slot(_) => {
                // Credit-reserved: space is guaranteed by construction.
                // Always-on check: a violation here means corrupted credit
                // state, which a release-mode harness run must not silently
                // pass through.
                assert!(cx.has_room, "reservation accounting violated");
                if let FlowKind::Slot(s) = self {
                    assert!(s.inflight > 0, "inflight underflow");
                    s.inflight -= 1;
                }
                cx.input_queue.push_back(pkt);
            }
            FlowKind::Handshake(h) => {
                let ack_at = pkt.sent_at + cx.handshake_delay;
                debug_assert!(ack_at > cx.now, "handshake must arrive in the future");
                if cx.has_room {
                    h.acks.schedule(
                        ack_at,
                        AckEvent {
                            sender: pkt.src_node as usize,
                            id: pkt.id,
                            ok: true,
                        },
                    );
                    if cx.recovery_enabled {
                        h.accepted_ids.insert(pkt.id);
                    }
                    cx.input_queue.push_back(pkt);
                } else {
                    // Drop; the sender retransmits on NACK (§III-A).
                    m.drops += 1;
                    m.trace(
                        cx.now,
                        cx.home,
                        pkt.src_node as usize,
                        pkt.id,
                        EventKind::Drop,
                    );
                    h.acks.schedule(
                        ack_at,
                        AckEvent {
                            sender: pkt.src_node as usize,
                            id: pkt.id,
                            ok: false,
                        },
                    );
                }
            }
            FlowKind::Circulation => {
                if cx.has_room {
                    cx.input_queue.push_back(pkt);
                } else {
                    // Reinject: the packet stays on the ring for another
                    // loop; the home consumes this cycle's token virtually
                    // (§III-C).
                    let (src, id) = (pkt.src_node as usize, pkt.id);
                    pkt.sends += 1;
                    pkt.sent_at = cx.now; // next arrival check in R cycles
                    cx.data.put(cx.home_seg, pkt);
                    *cx.suppress_token = true;
                    m.circulations += 1;
                    m.trace(cx.now, cx.home, src, id, EventKind::Circulate);
                }
            }
        }
    }

    /// Handshake events still in flight (0 for handshake-free schemes).
    #[inline]
    pub fn pending_acks(&self) -> usize {
        match self {
            FlowKind::Handshake(h) => h.acks.pending(),
            _ => 0,
        }
    }

    /// Credits riding the global token (token channel only).
    #[inline]
    pub fn credits(&self) -> Option<u32> {
        match self {
            FlowKind::Credit(c) => Some(c.credits),
            _ => None,
        }
    }

    /// Credits freed by ejections, awaiting the token (token channel only).
    #[inline]
    pub fn uncommitted(&self) -> u32 {
        match self {
            FlowKind::Credit(c) => c.uncommitted,
            _ => 0,
        }
    }

    /// Reservations travelling with grants / flits (token slot only).
    #[inline]
    pub fn inflight(&self) -> u32 {
        match self {
            FlowKind::Slot(s) => s.inflight,
            _ => 0,
        }
    }

    /// Reservations destroyed by token-loss faults (token slot only).
    #[inline]
    pub fn lost_reservations(&self) -> u32 {
        match self {
            FlowKind::Slot(s) => s.lost_reservations,
            _ => 0,
        }
    }

    /// Credits permanently destroyed by faults (token channel only).
    #[inline]
    pub fn leaked_credits(&self) -> u32 {
        match self {
            FlowKind::Credit(c) => c.leaked,
            _ => 0,
        }
    }
}
