//! Flow control: how a sender's packet claims (and releases) home buffer
//! space.
//!
//! The paper's schemes split along one axis: *credit reservation* (a token
//! carries or embodies guaranteed buffer space, so arrivals can never
//! overflow) versus *handshake* (senders transmit optimistically and the
//! home answers with an ACK/NACK `R + 1` cycles later). This module owns
//! everything on that axis:
//!
//! * [`CreditFlow`] — the token channel's credit ledger (credits riding the
//!   token, uncommitted reimbursements, fault leaks);
//! * [`SlotFlow`] — the token slot's distributed reservations (one token =
//!   one committed buffer slot, in-flight accounting, lost reservations);
//! * [`HandshakeFlow`] — GHS/DHS: the ACK/NACK calendar, sender-side
//!   retransmit timers, and the accepted-id set for duplicate suppression;
//! * [`CirculationFlow`] — DHS with circulation: no handshake, no
//!   reservation — a full home reinjects the flit into its own channel;
//! * [`FlowKind`] — the runtime dispatch wrapper over the four, for
//!   callers that hold a scheme chosen at runtime (the bounded model
//!   checker, unit rigs).
//!
//! Every concrete flow implements the [`Flow`] trait. The hot path never
//! sees `FlowKind`: [`crate::network::Network`] builds each channel as a
//! monomorphized `Channel<A, F>` over the concrete pairing, so the per-cycle
//! hooks below inline with zero enum dispatch — a hook that is a no-op for
//! the scheme (most of them are, for most schemes) folds away entirely.
//!
//! The arbiter side of a scheme (who may transmit next) lives in
//! [`super::arbiter`]; a [`crate::channel::Channel`] composes one of each.

use crate::calendar::Calendar;
use crate::metrics::NetworkMetrics;
use crate::outqueue::{OutQueue, TimeoutAction};
use crate::packet::{FlitRef, Packet, PacketArena, PacketRef};
use crate::slots::SlotRing;
use pnoc_faults::{AckFate, ChannelInjector, RecoveryConfig};
use pnoc_obs::EventKind;
use pnoc_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::bitplane::{Planes, SortedIdSet};

/// An ACK/NACK in flight on the handshake channel.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Sender node the handshake addresses.
    pub sender: usize,
    /// Packet id the handshake resolves.
    pub id: u64,
    /// `true` = ACK (accepted), `false` = NACK (dropped or corrupt).
    pub ok: bool,
}

/// What the flow-control layer may touch while deciding an arrival's fate.
/// Field-level borrows keep the hot path free of whole-`Channel` aliasing.
///
/// Arena ownership at arrival: for the credit-reserved schemes the ring
/// *owned* the flit's arena slot, so `accept` frees `handle` when it copies
/// the payload into the input buffer (or reinjects the bare handle, for
/// circulation). Handshake schemes transmit an aliased handle — the sender
/// keeps ownership until its ACK — so their `accept` never frees.
#[derive(Debug)]
pub struct ArrivalCx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// The home node id (trace-event addressing).
    pub home: usize,
    /// The home's ring segment (for circulation reinjects).
    pub home_seg: usize,
    /// Fixed handshake delay (`segments + 1`).
    pub handshake_delay: Cycle,
    /// Whether timeout/retransmit recovery is armed.
    pub recovery_enabled: bool,
    /// Whether the home buffer has room (queued + draining < capacity).
    pub has_room: bool,
    /// Arena handle of the arriving flit.
    pub handle: u32,
    /// The channel's packet arena.
    pub arena: &'a mut PacketArena,
    /// The home input buffer.
    pub input_queue: &'a mut VecDeque<Packet>,
    /// The data ring (circulation puts rejected flits back).
    pub data: &'a mut SlotRing<FlitRef>,
    /// Channel flag: a reinjection this cycle suppresses token emission.
    pub suppress_token: &'a mut bool,
}

/// The flow-control side of a scheme: buffer-space hooks called by the
/// channel phases and the arbiter sweeps. Every method except
/// [`Flow::may_emit`] and [`Flow::accept`] has a no-op (or constant)
/// default, so a concrete flow implements only the hooks its scheme uses
/// and a monomorphized channel pays nothing for the rest.
pub trait Flow {
    /// The handshake state, if this is a handshake scheme.
    #[inline]
    fn handshake(&self) -> Option<&HandshakeFlow> {
        None
    }

    /// Mutable access to the handshake state.
    #[inline]
    fn handshake_mut(&mut self) -> Option<&mut HandshakeFlow> {
        None
    }

    /// Whether a grant may be issued right now (token channel: a credit
    /// must ride the token; every other scheme gates elsewhere).
    #[inline]
    fn has_credit(&self) -> bool {
        true
    }

    /// A grant was issued by the *global* arbiter: spend the credit it
    /// carries.
    #[inline]
    fn spend_credit(&mut self) {}

    /// A grant was issued by the *distributed* arbiter: the token slot's
    /// reservation starts travelling with the grant.
    #[inline]
    fn on_grant(&mut self) {}

    /// The global token passed home: the token channel reimburses every
    /// credit freed since the last pass (paper Fig. 2a); GHS has nothing
    /// to do.
    #[inline]
    fn on_home_pass(&mut self) {}

    /// A buffer slot was freed by an ejection; for the token channel it
    /// becomes a reimbursable credit on the token's next home pass.
    #[inline]
    fn on_slot_freed(&mut self) {}

    /// The sweeping global token was destroyed by a fault. Token-channel
    /// credits ride on the token and die with it — an unrecoverable leak.
    /// (The GHS token carries nothing; it is fully replaced.)
    #[inline]
    fn on_sweeping_token_lost(&mut self, _m: &mut NetworkMetrics) {}

    /// `destroyed` distributed tokens were lost to faults. The token slot's
    /// reservations stay committed forever — a permanent leak of buffer
    /// capacity. (DHS re-emits every cycle, so a lost token costs one cycle
    /// of arbitration, nothing more.)
    #[inline]
    fn on_tokens_destroyed(&mut self, _destroyed: usize, _m: &mut NetworkMetrics) {}

    /// Whether the home may emit a distributed token this cycle:
    /// the token slot regenerates only while it has uncommitted buffer
    /// space; DHS emits unconditionally; circulation skips the cycle a
    /// reinjection virtually consumed.
    fn may_emit(
        &self,
        buffered: usize,
        tokens_out: usize,
        buffer_cap: usize,
        suppressed: bool,
    ) -> bool;

    /// A flit was destroyed in flight: the home never sees it, so no
    /// handshake fires and no buffer slot is touched; reservation-carrying
    /// schemes leak the space it had claimed.
    #[inline]
    fn on_data_lost(&mut self, _m: &mut NetworkMetrics) {}

    /// A flit arrived corrupted (CRC failure at the home). Receives the
    /// ring-side snapshot, not the payload: the flit may be a stale
    /// duplicate whose arena slot has already been released.
    #[inline]
    fn on_data_corrupt(&mut self, _flit: &FlitRef, _handshake_delay: Cycle) {}

    /// An intact, non-duplicate flit reached the home: accept it into the
    /// buffer, or apply the scheme's rejection behaviour (handshake NACK /
    /// circulation reinject). Credit-reserved schemes can never reject.
    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, m: &mut NetworkMetrics);

    /// Deliver this cycle's handshakes and fire expired ACK timers.
    /// A no-op for every scheme without a handshake channel; see
    /// [`HandshakeFlow::phase_acks`] for the real one.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn phase_acks(
        &mut self,
        _now: Cycle,
        _home: usize,
        _senders: &mut [OutQueue<PacketRef>],
        _arena: &mut PacketArena,
        _dist_of: &[usize],
        _planes: &mut Planes,
        _queued_total: &mut usize,
        _injector: Option<&mut ChannelInjector>,
        _recovery: &RecoveryConfig,
        _handshake_delay: Cycle,
        _m: &mut NetworkMetrics,
    ) {
    }

    /// Handshake events still in flight (0 for handshake-free schemes).
    #[inline]
    fn pending_acks(&self) -> usize {
        0
    }

    /// Credits riding the global token (token channel only).
    #[inline]
    fn credits(&self) -> Option<u32> {
        None
    }

    /// Credits freed by ejections, awaiting the token (token channel only).
    #[inline]
    fn uncommitted(&self) -> u32 {
        0
    }

    /// Reservations travelling with grants / flits (token slot only).
    #[inline]
    fn inflight(&self) -> u32 {
        0
    }

    /// Reservations destroyed by token-loss faults (token slot only).
    #[inline]
    fn lost_reservations(&self) -> u32 {
        0
    }

    /// Credits permanently destroyed by faults (token channel only).
    #[inline]
    fn leaked_credits(&self) -> u32 {
        0
    }
}

/// Token-channel credit ledger: the home's `input_buffer` credits ride the
/// global token and are reimbursed only when the token passes home.
#[derive(Debug, Clone)]
pub struct CreditFlow {
    /// Credits currently riding the token.
    pub credits: u32,
    /// Credits freed by ejections, awaiting the token's next home pass.
    pub uncommitted: u32,
    /// Credits permanently destroyed by faults (flits lost while holding a
    /// reservation, credits riding a destroyed token). Balances the
    /// conservation invariant `credits + uncommitted + outstanding + leaked
    /// == buffer_cap`.
    pub leaked: u32,
}

impl CreditFlow {
    /// A fresh ledger holding all `credits`.
    pub fn new(credits: u32) -> Self {
        Self {
            credits,
            uncommitted: 0,
            leaked: 0,
        }
    }
}

impl Flow for CreditFlow {
    #[inline]
    fn has_credit(&self) -> bool {
        self.credits > 0
    }

    #[inline]
    fn spend_credit(&mut self) {
        self.credits -= 1;
    }

    #[inline]
    fn on_home_pass(&mut self) {
        self.credits += self.uncommitted;
        self.uncommitted = 0;
    }

    #[inline]
    fn on_slot_freed(&mut self) {
        self.uncommitted += 1;
    }

    #[inline]
    fn on_sweeping_token_lost(&mut self, m: &mut NetworkMetrics) {
        m.credit_leaks += u64::from(self.credits);
        self.leaked += self.credits;
        self.credits = 0;
    }

    fn may_emit(&self, _: usize, _: usize, _: usize, _: bool) -> bool {
        unreachable!("global credit flow never pairs with distributed arbitration")
    }

    /// The credit reserved for this flit can never be reimbursed (the slot
    /// is never occupied, so it is never ejected): a permanent leak.
    #[inline]
    fn on_data_lost(&mut self, m: &mut NetworkMetrics) {
        self.leaked += 1;
        m.credit_leaks += 1;
    }

    /// Discarded at the home; generously return the credit (the flit
    /// itself is still gone for good — credit schemes cannot ask for a
    /// retransmission).
    #[inline]
    fn on_data_corrupt(&mut self, _flit: &FlitRef, _handshake_delay: Cycle) {
        self.uncommitted += 1;
    }

    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, _m: &mut NetworkMetrics) {
        // Credit-reserved: space is guaranteed by construction. Always-on
        // check: a violation here means corrupted credit state, which a
        // release-mode harness run must not silently pass through.
        assert!(cx.has_room, "reservation accounting violated");
        cx.arena.free(cx.handle);
        cx.input_queue.push_back(pkt);
    }

    #[inline]
    fn credits(&self) -> Option<u32> {
        Some(self.credits)
    }

    #[inline]
    fn uncommitted(&self) -> u32 {
        self.uncommitted
    }

    #[inline]
    fn leaked_credits(&self) -> u32 {
        self.leaked
    }
}

/// Token-slot reservations: each distributed token embodies one committed
/// buffer slot.
#[derive(Debug, Clone, Default)]
pub struct SlotFlow {
    /// Reservations travelling with granted tokens / flits in flight.
    pub inflight: u32,
    /// Reservations destroyed by token-loss faults. The home cannot observe
    /// the destruction, so the slots stay committed forever — this is the
    /// credit leak the handshake schemes are immune to.
    pub lost_reservations: u32,
}

impl Flow for SlotFlow {
    #[inline]
    fn on_grant(&mut self) {
        self.inflight += 1;
    }

    #[inline]
    fn on_tokens_destroyed(&mut self, destroyed: usize, m: &mut NetworkMetrics) {
        self.lost_reservations += crate::convert::narrow_u32(destroyed);
        m.credit_leaks += destroyed as u64;
    }

    #[inline]
    fn may_emit(
        &self,
        buffered: usize,
        tokens_out: usize,
        buffer_cap: usize,
        _suppressed: bool,
    ) -> bool {
        let committed =
            buffered + self.inflight as usize + self.lost_reservations as usize + tokens_out;
        committed < buffer_cap
    }

    /// The in-flight reservation is never returned (`inflight` stays
    /// elevated forever).
    #[inline]
    fn on_data_lost(&mut self, m: &mut NetworkMetrics) {
        m.credit_leaks += 1;
    }

    #[inline]
    fn on_data_corrupt(&mut self, _flit: &FlitRef, _handshake_delay: Cycle) {
        assert!(self.inflight > 0, "inflight underflow");
        self.inflight -= 1;
    }

    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, _m: &mut NetworkMetrics) {
        assert!(cx.has_room, "reservation accounting violated");
        assert!(self.inflight > 0, "inflight underflow");
        self.inflight -= 1;
        cx.arena.free(cx.handle);
        cx.input_queue.push_back(pkt);
    }

    #[inline]
    fn inflight(&self) -> u32 {
        self.inflight
    }

    #[inline]
    fn lost_reservations(&self) -> u32 {
        self.lost_reservations
    }
}

/// GHS/DHS handshake state: ACK/NACK events in flight, sender-side
/// retransmit timers, and the accepted-id set for duplicate suppression.
#[derive(Debug, Clone)]
pub struct HandshakeFlow {
    /// Handshake events in flight.
    pub acks: Calendar<AckEvent>,
    /// Armed ACK timers, earliest deadline first: `(deadline, sender, id)`.
    /// Entries are validated lazily against the sender queue when they
    /// fire, so stale timers (handshake arrived first) are harmless.
    pub ack_timers: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    /// Packet ids already accepted into the input buffer, kept while
    /// recovery is enabled so a retransmission after a *lost ACK* is
    /// discarded (and re-ACKed) instead of delivered twice.
    pub accepted_ids: SortedIdSet,
    /// Whether the scheme uses setaside buffers (`setaside > 0`): sent
    /// packets leave the queue at transmission and return on NACK, instead
    /// of blocking the head until their handshake resolves.
    pub setaside: bool,
}

impl HandshakeFlow {
    /// Handshake state for a ring of `segments` segments (the calendar
    /// horizon covers the fixed `segments + 1` handshake delay).
    pub fn new(segments: usize, setaside: bool) -> Self {
        Self {
            acks: Calendar::new(segments + 2),
            ack_timers: BinaryHeap::new(),
            accepted_ids: SortedIdSet::new(),
            setaside,
        }
    }

    /// Deliver this cycle's handshakes to their senders, then fire expired
    /// ACK timers. `queued_total` is the channel's cached cross-sender
    /// backlog, adjusted here exactly as the send-mode bookkeeping demands;
    /// `planes` are the channel's per-node predicate planes, refreshed
    /// after every queue mutation (ACKs unblock `HoldHead` heads, NACKs and
    /// timeouts re-queue setaside packets). An ACK or abandon retires the
    /// sender's retained copy — the last owner of the arena payload — so
    /// both release the handle here.
    #[allow(clippy::too_many_arguments)]
    pub fn phase_acks(
        &mut self,
        now: Cycle,
        home: usize,
        senders: &mut [OutQueue<PacketRef>],
        arena: &mut PacketArena,
        dist_of: &[usize],
        planes: &mut Planes,
        queued_total: &mut usize,
        mut injector: Option<&mut ChannelInjector>,
        recovery: &RecoveryConfig,
        handshake_delay: Cycle,
        m: &mut NetworkMetrics,
    ) {
        // Quiet-cycle early-out: no handshakes in flight and no armed
        // timers. The calendar frontier still advances (O(1)) so a later
        // schedule sees a current horizon.
        if self.acks.is_empty() && self.ack_timers.is_empty() {
            self.acks.fast_forward(now);
            return;
        }
        let setaside = self.setaside;
        for ev in self.acks.drain(now) {
            // Handshake-channel fault: the pulse never reaches the sender.
            // The sender learns nothing; with recovery enabled its ACK timer
            // eventually retransmits, without it the packet wedges.
            if let Some(inj) = injector.as_deref_mut() {
                if inj.active() && inj.ack_fate(handshake_delay) == AckFate::Lost {
                    m.faults_acks_lost += 1;
                    m.trace(now, home, ev.sender, ev.id, EventKind::AckLost);
                    continue;
                }
            }
            let q = &mut senders[ev.sender];
            if ev.ok {
                if let Some(released) = q.ack(ev.id) {
                    arena.free(released.handle);
                    m.trace(now, home, ev.sender, ev.id, EventKind::Ack);
                    // HoldHead keeps the packet queued until the ACK:
                    // account for its departure now. Setaside removed it
                    // from the queue at transmission time.
                    if !setaside {
                        *queued_total -= 1;
                    }
                } else {
                    // A re-ACK for a suppressed duplicate can land after the
                    // first ACK already released the packet; only recovery
                    // produces that. Always-on: an unexpected ACK in a
                    // recovery-free run means the handshake FSM desynced.
                    assert!(recovery.enabled, "ACK for unknown packet {}", ev.id);
                }
            } else if q.nack(ev.id) {
                m.retransmissions += 1;
                m.trace(now, home, ev.sender, ev.id, EventKind::Nack);
                // Setaside NACK pushes the packet back into the queue.
                if setaside {
                    *queued_total += 1;
                }
            } else {
                // The packet already timed out and retransmitted; this NACK
                // answers a transmission the sender no longer tracks. Only
                // recovery can produce that race.
                assert!(recovery.enabled, "NACK for unknown packet {}", ev.id);
            }
            planes.refresh(dist_of[ev.sender], &senders[ev.sender]);
        }
        // Expired ACK timers (armed per transmission when recovery is on).
        // A timer firing while the packet still awaits its handshake means
        // the flit or its ACK was lost: retransmit, like a NACK, under
        // exponential backoff and a bounded retry budget.
        while let Some(&Reverse((deadline, sender, id))) = self.ack_timers.peek() {
            if deadline > now {
                break;
            }
            self.ack_timers.pop();
            match senders[sender].timeout(id, recovery.max_retries) {
                TimeoutAction::Retry => {
                    m.timeout_retransmissions += 1;
                    m.trace(now, home, sender, id, EventKind::TimeoutRetransmit);
                    // Setaside: the packet moved back from setaside into the
                    // queue, mirroring the NACK bookkeeping above.
                    if setaside {
                        *queued_total += 1;
                    }
                }
                TimeoutAction::Abandon(dropped) => {
                    arena.free(dropped.handle);
                    m.abandoned += 1;
                    m.trace(now, home, sender, id, EventKind::Abandon);
                    // A HoldHead abandon pops the pending head off the queue.
                    if !setaside {
                        *queued_total -= 1;
                    }
                }
                TimeoutAction::Stale => {}
            }
            planes.refresh(dist_of[sender], &senders[sender]);
        }
    }
}

impl Flow for HandshakeFlow {
    #[inline]
    fn handshake(&self) -> Option<&HandshakeFlow> {
        Some(self)
    }

    #[inline]
    fn handshake_mut(&mut self) -> Option<&mut HandshakeFlow> {
        Some(self)
    }

    #[inline]
    fn may_emit(&self, _: usize, _: usize, _: usize, _: bool) -> bool {
        true
    }

    /// CRC failure ⇒ NACK; the sender retransmits exactly as after a
    /// full-buffer drop.
    #[inline]
    fn on_data_corrupt(&mut self, flit: &FlitRef, handshake_delay: Cycle) {
        self.acks.schedule(
            flit.sent_at + handshake_delay,
            AckEvent {
                sender: flit.src as usize,
                id: flit.id,
                ok: false,
            },
        );
    }

    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, m: &mut NetworkMetrics) {
        let ack_at = pkt.sent_at + cx.handshake_delay;
        debug_assert!(ack_at > cx.now, "handshake must arrive in the future");
        if cx.has_room {
            self.acks.schedule(
                ack_at,
                AckEvent {
                    sender: pkt.src_node as usize,
                    id: pkt.id,
                    ok: true,
                },
            );
            if cx.recovery_enabled {
                self.accepted_ids.insert(pkt.id);
            }
            cx.input_queue.push_back(pkt);
        } else {
            // Drop; the sender retransmits on NACK (§III-A).
            m.drops += 1;
            m.trace(
                cx.now,
                cx.home,
                pkt.src_node as usize,
                pkt.id,
                EventKind::Drop,
            );
            self.acks.schedule(
                ack_at,
                AckEvent {
                    sender: pkt.src_node as usize,
                    id: pkt.id,
                    ok: false,
                },
            );
        }
    }

    #[inline]
    fn phase_acks(
        &mut self,
        now: Cycle,
        home: usize,
        senders: &mut [OutQueue<PacketRef>],
        arena: &mut PacketArena,
        dist_of: &[usize],
        planes: &mut Planes,
        queued_total: &mut usize,
        injector: Option<&mut ChannelInjector>,
        recovery: &RecoveryConfig,
        handshake_delay: Cycle,
        m: &mut NetworkMetrics,
    ) {
        HandshakeFlow::phase_acks(
            self,
            now,
            home,
            senders,
            arena,
            dist_of,
            planes,
            queued_total,
            injector,
            recovery,
            handshake_delay,
            m,
        );
    }

    #[inline]
    fn pending_acks(&self) -> usize {
        self.acks.pending()
    }
}

/// DHS with circulation: no handshake, no reservation — a full home
/// reinjects the flit into its own data channel (§III-C). Stateless; the
/// per-cycle suppression flag lives on the channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CirculationFlow;

impl Flow for CirculationFlow {
    #[inline]
    fn may_emit(&self, _: usize, _: usize, _: usize, suppressed: bool) -> bool {
        !suppressed
    }

    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, m: &mut NetworkMetrics) {
        if cx.has_room {
            cx.arena.free(cx.handle);
            cx.input_queue.push_back(pkt);
        } else {
            // Reinject: the packet stays on the ring for another loop; the
            // home consumes this cycle's token virtually (§III-C). Only the
            // handle goes back on the ring — the payload never moves.
            let live = cx.arena.get_mut(cx.handle);
            live.sends += 1;
            live.sent_at = cx.now; // next arrival check in R cycles
            cx.data.put(
                cx.home_seg,
                FlitRef {
                    id: live.id,
                    handle: cx.handle,
                    sends: live.sends,
                    src: live.src_node,
                    sent_at: cx.now,
                },
            );
            *cx.suppress_token = true;
            m.circulations += 1;
            m.trace(
                cx.now,
                cx.home,
                pkt.src_node as usize,
                pkt.id,
                EventKind::Circulate,
            );
        }
    }
}

/// Runtime flow-control dispatch for callers that pick the scheme at
/// runtime (the bounded model checker, unit rigs). The network's hot path
/// uses the concrete types directly — see the module docs.
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// Token channel: credits ride the global token.
    Credit(CreditFlow),
    /// Token slot: one distributed token = one committed buffer slot.
    Slot(SlotFlow),
    /// GHS/DHS: ACK/NACK handshake with optional setaside buffers.
    Handshake(HandshakeFlow),
    /// DHS with circulation: no handshake, no reservation.
    Circulation(CirculationFlow),
}

/// Delegate one `Flow` call to whichever concrete flow the kind wraps.
macro_rules! each_flow {
    ($self:expr, $f:ident => $body:expr) => {
        match $self {
            FlowKind::Credit($f) => $body,
            FlowKind::Slot($f) => $body,
            FlowKind::Handshake($f) => $body,
            FlowKind::Circulation($f) => $body,
        }
    };
}

impl Flow for FlowKind {
    #[inline]
    fn handshake(&self) -> Option<&HandshakeFlow> {
        each_flow!(self, f => f.handshake())
    }

    #[inline]
    fn handshake_mut(&mut self) -> Option<&mut HandshakeFlow> {
        each_flow!(self, f => f.handshake_mut())
    }

    #[inline]
    fn has_credit(&self) -> bool {
        each_flow!(self, f => f.has_credit())
    }

    #[inline]
    fn spend_credit(&mut self) {
        each_flow!(self, f => f.spend_credit());
    }

    #[inline]
    fn on_grant(&mut self) {
        each_flow!(self, f => f.on_grant());
    }

    #[inline]
    fn on_home_pass(&mut self) {
        each_flow!(self, f => f.on_home_pass());
    }

    #[inline]
    fn on_slot_freed(&mut self) {
        each_flow!(self, f => f.on_slot_freed());
    }

    #[inline]
    fn on_sweeping_token_lost(&mut self, m: &mut NetworkMetrics) {
        each_flow!(self, f => f.on_sweeping_token_lost(m));
    }

    #[inline]
    fn on_tokens_destroyed(&mut self, destroyed: usize, m: &mut NetworkMetrics) {
        each_flow!(self, f => f.on_tokens_destroyed(destroyed, m));
    }

    #[inline]
    fn may_emit(
        &self,
        buffered: usize,
        tokens_out: usize,
        buffer_cap: usize,
        suppressed: bool,
    ) -> bool {
        each_flow!(self, f => f.may_emit(buffered, tokens_out, buffer_cap, suppressed))
    }

    #[inline]
    fn on_data_lost(&mut self, m: &mut NetworkMetrics) {
        each_flow!(self, f => f.on_data_lost(m));
    }

    #[inline]
    fn on_data_corrupt(&mut self, flit: &FlitRef, handshake_delay: Cycle) {
        each_flow!(self, f => f.on_data_corrupt(flit, handshake_delay));
    }

    #[inline]
    fn accept(&mut self, pkt: Packet, cx: &mut ArrivalCx<'_>, m: &mut NetworkMetrics) {
        each_flow!(self, f => f.accept(pkt, cx, m));
    }

    #[inline]
    fn phase_acks(
        &mut self,
        now: Cycle,
        home: usize,
        senders: &mut [OutQueue<PacketRef>],
        arena: &mut PacketArena,
        dist_of: &[usize],
        planes: &mut Planes,
        queued_total: &mut usize,
        injector: Option<&mut ChannelInjector>,
        recovery: &RecoveryConfig,
        handshake_delay: Cycle,
        m: &mut NetworkMetrics,
    ) {
        each_flow!(self, f => Flow::phase_acks(
            f,
            now,
            home,
            senders,
            arena,
            dist_of,
            planes,
            queued_total,
            injector,
            recovery,
            handshake_delay,
            m,
        ));
    }

    #[inline]
    fn pending_acks(&self) -> usize {
        each_flow!(self, f => f.pending_acks())
    }

    #[inline]
    fn credits(&self) -> Option<u32> {
        each_flow!(self, f => f.credits())
    }

    #[inline]
    fn uncommitted(&self) -> u32 {
        each_flow!(self, f => f.uncommitted())
    }

    #[inline]
    fn inflight(&self) -> u32 {
        each_flow!(self, f => f.inflight())
    }

    #[inline]
    fn lost_reservations(&self) -> u32 {
        each_flow!(self, f => f.lost_reservations())
    }

    #[inline]
    fn leaked_credits(&self) -> u32 {
        each_flow!(self, f => f.leaked_credits())
    }
}
