//! A dense bitmask of sendable senders, indexed by downstream distance.
//!
//! Token sweeps ([`super::arbiter`]) examine a window of senders every
//! cycle, and on a contended channel almost every examined sender has
//! nothing it can send — its queue is empty, or (basic GHS/DHS) its head is
//! blocked awaiting a handshake. The channel maintains this set as an
//! *exact* mirror of `senders[n].sendable() > 0` (refreshed after every
//! queue mutation: push, grant, transmit, ACK, NACK, timeout), so a window
//! scan is a couple of word operations instead of a per-sender probe, and
//! an all-clear mask lets the distributed arbiter advance its whole token
//! stream in bulk.
//!
//! Exactness matters: the arbiter still calls
//! [`crate::outqueue::OutQueue::eligible`] on every candidate the mask
//! yields (fairness sit-outs are time-dependent and not mirrored here), but
//! a *missing* bit would silently skip an eligible sender and change
//! arbitration. [`crate::channel::Channel::try_check_invariants`]
//! cross-checks the mask against the queues.

/// Bitmask over downstream distances `0..len` (see module docs).
#[derive(Debug, Clone)]
pub struct SendableSet {
    words: Vec<u64>,
    /// Number of set bits (cheap `any()` without scanning words).
    live: usize,
}

impl SendableSet {
    /// An empty set over `len` distances.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64).max(1)],
            live: 0,
        }
    }

    /// Set or clear the bit for distance `d`, keeping the live count exact.
    #[inline]
    pub fn set(&mut self, d: usize, on: bool) {
        let w = &mut self.words[d / 64];
        let bit = 1u64 << (d % 64);
        let was = *w & bit != 0;
        if on && !was {
            *w |= bit;
            self.live += 1;
        } else if !on && was {
            *w &= !bit;
            self.live -= 1;
        }
    }

    /// Whether distance `d` is marked sendable.
    #[inline]
    pub fn get(&self, d: usize) -> bool {
        self.words[d / 64] & (1u64 << (d % 64)) != 0
    }

    /// Whether any sender is marked sendable.
    #[inline]
    pub fn any(&self) -> bool {
        self.live > 0
    }

    /// The smallest marked distance in `[lo, hi)`, if any.
    #[inline]
    pub fn first_in(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi || self.live == 0 {
            return None;
        }
        let (lo_w, hi_w) = (lo / 64, (hi - 1) / 64);
        for w in lo_w..=hi_w {
            let mut bits = self.words[w];
            if w == lo_w {
                bits &= !0u64 << (lo % 64);
            }
            if bits == 0 {
                continue;
            }
            let d = w * 64 + bits.trailing_zeros() as usize;
            return (d < hi).then_some(d);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_live_count() {
        let mut s = SendableSet::new(130);
        assert!(!s.any());
        s.set(0, true);
        s.set(129, true);
        s.set(129, true); // idempotent
        assert!(s.any());
        assert!(s.get(0) && s.get(129) && !s.get(64));
        s.set(0, false);
        s.set(0, false); // idempotent
        s.set(129, false);
        assert!(!s.any());
    }

    #[test]
    fn first_in_respects_the_window() {
        let mut s = SendableSet::new(200);
        s.set(70, true);
        s.set(150, true);
        assert_eq!(s.first_in(0, 200), Some(70));
        assert_eq!(s.first_in(71, 200), Some(150));
        assert_eq!(s.first_in(0, 70), None);
        assert_eq!(s.first_in(70, 71), Some(70));
        assert_eq!(s.first_in(151, 200), None);
        assert_eq!(s.first_in(5, 5), None);
    }

    #[test]
    fn first_in_scans_within_one_word() {
        let mut s = SendableSet::new(64);
        s.set(3, true);
        s.set(9, true);
        assert_eq!(s.first_in(0, 64), Some(3));
        assert_eq!(s.first_in(4, 64), Some(9));
        assert_eq!(s.first_in(4, 9), None);
        assert_eq!(s.first_in(10, 64), None);
    }
}
