//! Per-class fair admission control: deterministic token buckets that
//! ration *grants* between traffic classes.
//!
//! Admission sits between the arbiter and the senders: when a sweep finds a
//! sendable sender, the sender is admitted only if the bucket of its head
//! packet's class is non-empty ([`AdmissionCtl::admits`]), and every grant
//! drains one credit from that class's bucket
//! ([`AdmissionCtl::on_grant`]). Buckets refill on a fixed period
//! ([`AdmissionCtl::tick`], called at the top of the token phase), so the
//! policy is a pure function of configuration and cycle count — no RNG, no
//! floating point — and the differential oracle can mirror it exactly.
//!
//! Gating *grants* rather than injections keeps the `QoS` decision at the
//! resource actually contended (the home's arbitration bandwidth) and keeps
//! the flow-control layer untouched: an unadmitted sender simply looks
//! ineligible to the token sweep, exactly like a fairness sit-out. Because
//! [`crate::config::AdmissionPolicy::validate`] requires every class to
//! refill at ≥ 1 credit per period, no backlogged class is starved forever
//! — the liveness half of the starvation audit
//! ([`crate::audit::InvariantAuditor`]).
//!
//! The struct exists only when admission is configured; the `QoS`-off hot
//! path never touches it (the `Option` is checked once per sweep window,
//! and the None arm folds to the pre-`QoS` code).

use crate::config::AdmissionPolicy;
use pnoc_sim::Cycle;
use pnoc_traffic::MAX_CLASSES;

/// Runtime token-bucket state for one channel (see module docs).
#[derive(Debug, Clone)]
pub struct AdmissionCtl {
    /// Refill interval in cycles.
    period: u32,
    /// Credits added per refill, per class.
    refill: [u8; MAX_CLASSES],
    /// Bucket capacity, per class.
    burst: [u8; MAX_CLASSES],
    /// Current bucket levels, per class.
    tokens: [u8; MAX_CLASSES],
    /// Grants issued per class over the channel's lifetime (observability
    /// and the starvation audit's progress witness).
    pub granted_by_class: [u64; MAX_CLASSES],
}

impl AdmissionCtl {
    /// Build the bucket state for `policy`, or `None` when admission is
    /// off. Buckets start full so the first cycles are not artificially
    /// throttled.
    pub fn from_policy(policy: &AdmissionPolicy) -> Option<Self> {
        match *policy {
            AdmissionPolicy::None => None,
            AdmissionPolicy::TokenBucket {
                period,
                refill,
                burst,
            } => Some(Self {
                period,
                refill,
                burst,
                tokens: burst,
                granted_by_class: [0; MAX_CLASSES],
            }),
        }
    }

    /// Refill every bucket if `now` is on a period boundary. Called once
    /// per cycle at the top of the token phase, before any sweep.
    #[inline]
    pub fn tick(&mut self, now: Cycle) {
        if now.is_multiple_of(Cycle::from(self.period)) {
            for c in 0..MAX_CLASSES {
                self.tokens[c] = self.tokens[c]
                    .saturating_add(self.refill[c])
                    .min(self.burst[c]);
            }
        }
    }

    /// Whether a sender whose head packet carries `class` may take a grant.
    #[inline]
    pub fn admits(&self, class: u8) -> bool {
        self.tokens[usize::from(class)] > 0
    }

    /// Account a grant to `class`, draining its bucket by one.
    #[inline]
    pub fn on_grant(&mut self, class: u8) {
        let c = usize::from(class);
        debug_assert!(self.tokens[c] > 0, "grant admitted with an empty bucket");
        self.tokens[c] -= 1;
        self.granted_by_class[c] += 1;
    }

    /// Current bucket levels (state keys, invariant checks).
    pub fn tokens(&self) -> [u8; MAX_CLASSES] {
        self.tokens
    }

    /// Bucket capacities (invariant checks).
    pub fn burst(&self) -> [u8; MAX_CLASSES] {
        self.burst
    }

    /// Refill interval in cycles.
    pub fn period(&self) -> u32 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(period: u32, refill: u8, burst: u8) -> AdmissionCtl {
        AdmissionCtl::from_policy(&AdmissionPolicy::TokenBucket {
            period,
            refill: [refill; MAX_CLASSES],
            burst: [burst; MAX_CLASSES],
        })
        .expect("token bucket builds")
    }

    #[test]
    fn none_policy_builds_no_state() {
        assert!(AdmissionCtl::from_policy(&AdmissionPolicy::None).is_none());
    }

    #[test]
    fn buckets_start_full_and_drain_per_grant() {
        let mut a = ctl(4, 1, 2);
        assert!(a.admits(0));
        a.on_grant(0);
        a.on_grant(0);
        assert!(!a.admits(0), "bucket drained");
        assert!(a.admits(1), "classes are independent");
        assert_eq!(a.granted_by_class[0], 2);
    }

    #[test]
    fn tick_refills_only_on_period_boundaries() {
        let mut a = ctl(4, 1, 2);
        a.on_grant(0);
        a.on_grant(0);
        a.tick(1);
        a.tick(2);
        a.tick(3);
        assert!(!a.admits(0), "mid-period ticks must not refill");
        a.tick(4);
        assert!(a.admits(0), "period boundary refills");
        assert_eq!(a.tokens()[0], 1);
    }

    #[test]
    fn refill_saturates_at_burst() {
        let mut a = ctl(1, 3, 4);
        a.tick(1);
        a.tick(2);
        assert_eq!(a.tokens()[0], 4, "bucket saturates at burst");
    }
}
