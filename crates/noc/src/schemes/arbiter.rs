//! Arbitration: which sender may transmit on a channel next.
//!
//! The paper's schemes split along a second axis, orthogonal to flow
//! control: *global* arbitration (one token relayed among all senders —
//! token channel, GHS) versus *distributed* arbitration (the home emits a
//! stream of tokens that sweep the ring — token slot, DHS, DHS with
//! circulation). This module owns the token state machines:
//!
//! * [`GlobalArbiter`] — the single sweeping/held/lost token, including the
//!   loss watchdog that re-emits a replacement after two silent loop times;
//! * [`DistributedArbiter`] — the oldest-first token queue, per-cycle
//!   emission (gated by the flow layer), disjoint window sweeps, and a bulk
//!   fast path for idle cycles;
//! * [`ArbiterKind`] — the runtime dispatch wrapper for callers that pick
//!   the scheme at runtime (the model checker, unit rigs); the network's
//!   hot path monomorphizes over the concrete arbiters instead.
//!
//! Arbiters issue *grants* (via [`crate::outqueue::OutQueue::take_grant`])
//! and refresh the channel's predicate bit-planes; everything about buffer
//! space lives in [`super::flow`]. The two layers meet at narrow hooks
//! ([`Flow::has_credit`], [`Flow::may_emit`], …) so a new scheme
//! combination is a new pairing, not a new `Channel`. The sweep loops are
//! generic over [`Flow`], so a monomorphized channel compiles them with the
//! concrete flow's hooks inlined — the per-cycle path has zero enum
//! dispatch.

use crate::config::FairnessPolicy;
use crate::metrics::NetworkMetrics;
use crate::outqueue::OutQueue;
use crate::packet::PacketRef;
use pnoc_faults::ChannelInjector;
use pnoc_obs::{EventKind, NO_PACKET};
use pnoc_sim::Cycle;

use super::admission::AdmissionCtl;
use super::bitplane::{AgeSet, Planes};
use super::flow::Flow;

/// State of the single global-arbitration token (token channel, GHS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalTokenState {
    /// Travelling; `next` is the first downstream distance not yet examined.
    Sweeping {
        /// First downstream distance the token has not yet examined.
        next: usize,
    },
    /// Held by the sender at the given node while it transmits.
    Held {
        /// Node currently holding the token.
        node: usize,
    },
    /// Destroyed by an injected fault; the home re-emits a replacement after
    /// a watchdog period of two silent loop times.
    Lost {
        /// Cycle the token was destroyed.
        since: Cycle,
    },
}

/// What the arbiters may touch while sweeping tokens. Field-level borrows
/// of the owning [`crate::channel::Channel`], plus its precomputed ring
/// lookup tables — the sweep loops run every cycle and must not divide.
#[derive(Debug)]
pub struct TokenCx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// The home node id (trace-event addressing).
    pub home: usize,
    /// Fairness policy senders are checked against.
    pub fairness: FairnessPolicy,
    /// Node count.
    pub nodes: usize,
    /// Nodes a token passes per cycle (`nodes / segments`).
    pub step: usize,
    /// Watchdog period for global-token loss (two handshake delays).
    pub watchdog: Cycle,
    /// Downstream distance → node id (precomputed, `nodes - 1` entries).
    pub by_distance: &'a [usize],
    /// Node id → downstream distance from home (precomputed).
    pub dist_of: &'a [usize],
    /// Per-sender output queues (arena-handle entries; see
    /// [`crate::packet::PacketArena`]).
    pub senders: &'a mut [OutQueue<PacketRef>],
    /// Per-node predicate bit-planes, by downstream distance — the sweep
    /// loops probe only set `sendable` bits, and grants refresh all planes.
    pub planes: &'a mut Planes,
    /// Home buffer occupancy (queued + draining), for the emission gate.
    pub buffered: usize,
    /// Home buffer capacity.
    pub buffer_cap: usize,
    /// Channel flag: a circulation reinjection suppresses this cycle's
    /// token emission.
    pub suppress_token: &'a mut bool,
    /// Per-class admission buckets (`None` when `QoS` is off — the admission
    /// probes below fold away).
    pub admission: Option<&'a mut AdmissionCtl>,
    /// Fault injection, if live on this channel.
    pub injector: Option<&'a mut ChannelInjector>,
}

impl TokenCx<'_> {
    /// Grant the channel to `node`. The refreshed `granted` plane is what
    /// puts the node on the transmit phase's scan path. Under admission
    /// control the grant is also charged to the head packet's class.
    #[inline]
    fn grant(&mut self, node: usize, m: &mut NetworkMetrics) {
        if let Some(ctl) = self.admission.as_deref_mut() {
            if let Some(class) = self.senders[node].head_class() {
                ctl.on_grant(class);
            }
        }
        self.senders[node].take_grant(self.now, self.fairness);
        m.trace(self.now, self.home, node, NO_PACKET, EventKind::TokenGrant);
        // A grant consumes sendable headroom (the transmission it owes) and
        // raises the granted bit.
        self.planes.refresh(self.dist_of[node], &self.senders[node]);
    }

    /// Whether admission control lets `node` take a grant right now: its
    /// head packet's class must have a non-empty bucket. Vacuously true
    /// with `QoS` off or an empty queue.
    #[inline]
    fn admits(&self, node: usize) -> bool {
        match self.admission.as_deref() {
            None => true,
            Some(ctl) => self.senders[node]
                .head_class()
                .is_none_or(|class| ctl.admits(class)),
        }
    }

    /// First sender in the distance window `[lo, hi)` that may take a token
    /// right now. The sendable plane prunes to senders with sendable work;
    /// `eligible` stays authoritative (fairness sit-outs are time-dependent),
    /// and admission buckets gate by the head packet's class.
    #[inline]
    fn first_eligible_in(&self, lo: usize, hi: usize) -> Option<usize> {
        let mut d = lo;
        while let Some(hit) = self.planes.sendable.first_in(d, hi) {
            let node = self.by_distance[hit];
            if self.senders[node].eligible(self.now, self.fairness) && self.admits(node) {
                return Some(node);
            }
            d = hit + 1;
        }
        None
    }
}

/// The arbitration side of a scheme: one cycle of token motion, plus the
/// state the channel's audit/model-checking hooks need. `step` is generic
/// over the paired [`Flow`] so the monomorphized channel inlines both
/// layers into one compiled loop.
pub trait Arbiter {
    /// One cycle of token relay/streaming: fault exposure, emission or
    /// watchdog, window sweeps, grants.
    fn step<F: Flow>(&mut self, flow: &mut F, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics);

    /// Live distributed tokens (0 under global arbitration).
    fn outstanding_tokens(&self) -> usize;

    /// Append the arbiter's canonical state encoding for
    /// [`crate::channel::Channel::state_key`]. `credits_word` is the paired
    /// flow's credit count (or the caller's separator sentinel) — the global
    /// token carries it, so it is part of the token's state; distributed
    /// arbiters ignore it.
    fn state_key_into(&self, now: Cycle, credits_word: u64, out: &mut Vec<u64>);
}

/// The single-token state machine (token channel, GHS). Credits, if any,
/// live in the paired flow; the arbiter asks before granting.
#[derive(Debug, Clone)]
pub struct GlobalArbiter {
    /// Current token state.
    pub state: GlobalTokenState,
}

impl GlobalArbiter {
    /// A fresh token sweeping from the node just past the home.
    pub fn new() -> Self {
        Self {
            state: GlobalTokenState::Sweeping { next: 0 },
        }
    }

    /// Continue the sweep at `next`, wrapping past the home (which
    /// reimburses credits via [`Flow::on_home_pass`]).
    fn wrap_or_continue<F: Flow>(next: usize, nodes: usize, flow: &mut F) -> GlobalTokenState {
        if next >= nodes - 1 {
            flow.on_home_pass();
            GlobalTokenState::Sweeping { next: 0 }
        } else {
            GlobalTokenState::Sweeping { next }
        }
    }
}

impl Arbiter for GlobalArbiter {
    /// One cycle of token relay: fault exposure, watchdog re-emission,
    /// hold/release, and the sweep window.
    fn step<F: Flow>(&mut self, flow: &mut F, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics) {
        // Fault: the circulating token is destroyed. Only a sweeping token
        // is exposed (a held one is latched at its sender).
        if let Some(inj) = cx.injector.as_deref_mut() {
            if inj.active()
                && matches!(self.state, GlobalTokenState::Sweeping { .. })
                && inj.token_lost()
            {
                m.faults_tokens_lost += 1;
                m.trace(cx.now, cx.home, cx.home, NO_PACKET, EventKind::TokenLost);
                flow.on_sweeping_token_lost(m);
                self.state = GlobalTokenState::Lost { since: cx.now };
            }
        }
        match self.state {
            GlobalTokenState::Lost { since } => {
                // Watchdog: after two silent loop times the home emits a
                // replacement. It cannot know how many credits died with
                // the old token, so the replacement starts empty and must
                // live off future ejection reimbursements.
                if cx.now.saturating_sub(since) >= cx.watchdog {
                    self.state = GlobalTokenState::Sweeping { next: 0 };
                }
            }
            GlobalTokenState::Held { node } => {
                let has_credit = flow.has_credit();
                let q = &cx.senders[node];
                if q.granted() > 0 {
                    // Transmission still owed; keep holding.
                } else if has_credit && q.eligible(cx.now, cx.fairness) && cx.admits(node) {
                    cx.grant(node, m);
                    flow.spend_credit();
                } else {
                    // Release: the token resumes its sweep from just past
                    // the holder; downstream nodes see it from the next
                    // cycle (paper Fig. 3c→d).
                    let next = cx.dist_of[node] + 1;
                    self.state = Self::wrap_or_continue(next, cx.nodes, flow);
                }
            }
            GlobalTokenState::Sweeping { next } => {
                let hi = (next + cx.step).min(cx.nodes - 1);
                let mut grabbed = None;
                if flow.has_credit() {
                    grabbed = cx.first_eligible_in(next, hi);
                }
                if let Some(node) = grabbed {
                    cx.grant(node, m);
                    flow.spend_credit();
                    self.state = GlobalTokenState::Held { node };
                } else {
                    self.state = Self::wrap_or_continue(hi, cx.nodes, flow);
                }
            }
        }
    }

    #[inline]
    fn outstanding_tokens(&self) -> usize {
        0
    }

    fn state_key_into(&self, now: Cycle, credits_word: u64, out: &mut Vec<u64>) {
        out.push(0);
        match self.state {
            GlobalTokenState::Sweeping { next } => {
                out.push(0);
                out.push(next as u64);
            }
            GlobalTokenState::Held { node } => {
                out.push(1);
                out.push(node as u64);
            }
            GlobalTokenState::Lost { since } => {
                out.push(2);
                out.push(now.saturating_sub(since));
            }
        }
        out.push(credits_word);
    }
}

impl Default for GlobalArbiter {
    fn default() -> Self {
        Self::new()
    }
}

/// The token-stream state machine (token slot, DHS, DHS with circulation).
///
/// A live token's sweep window is a pure function of its age — a token
/// emitted `a` cycles ago covers distances `[a·step, (a+1)·step)` — so the
/// stream is stored as an [`AgeSet`]: one bit per live age. Advancing every
/// token is a word shift, membership is a bit test, and grants/faults are
/// bit clears. (The first representation stored positions and re-wrote
/// every token each cycle — an O(loop-time) walk per channel per cycle; a
/// sorted emission-cycle deque fixed the walk but left a binary search per
/// probed window.)
#[derive(Debug, Clone, Default)]
pub struct DistributedArbiter {
    /// Live tokens, one bit per age.
    pub tokens: AgeSet,
}

impl DistributedArbiter {
    /// An arbiter with no tokens in flight (the home emits from cycle 0).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arbiter for DistributedArbiter {
    /// One cycle of the token stream: ageing, fault exposure, emission
    /// (gated by the flow layer), and the window sweep.
    fn step<F: Flow>(&mut self, flow: &mut F, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics) {
        // Age the stream: every live token advances one window.
        self.tokens.tick();
        // Fault: in-flight tokens are exposed every cycle, oldest first
        // (the emission order, so fault draws replay identically).
        if let Some(inj) = cx.injector.as_deref_mut() {
            if inj.active() && self.tokens.any() {
                let destroyed = self.tokens.retain_oldest_first(|| !inj.token_lost());
                if destroyed > 0 {
                    m.faults_tokens_lost += destroyed as u64;
                    for _ in 0..destroyed {
                        m.trace(cx.now, cx.home, cx.home, NO_PACKET, EventKind::TokenLost);
                    }
                    flow.on_tokens_destroyed(destroyed, m);
                }
            }
        }
        // Emission.
        let emit = flow.may_emit(
            cx.buffered,
            self.tokens.count(),
            cx.buffer_cap,
            *cx.suppress_token,
        );
        *cx.suppress_token = false;
        if emit {
            self.tokens.emit();
        }
        // Sweep the token stream. Windows are disjoint: the token of age
        // `a` covers distances [a·step, (a+1)·step) this cycle, so instead
        // of probing every live token's window (O(loop-time) per busy
        // cycle), scan the set `sendable` bits — usually a handful — and
        // bit-test the one age whose window covers each. Grants touch only
        // their own window's sender, so windows never interact and scan
        // order is immaterial.
        let last = cx.nodes - 1;
        let mut d = 0;
        while let Some(hit) = cx.planes.sendable.first_in(d, last) {
            let age = hit / cx.step;
            let hi = (age * cx.step + cx.step).min(last);
            if self.tokens.contains(age) {
                if let Some(node) = cx.first_eligible_in(hit, hi) {
                    cx.grant(node, m);
                    flow.on_grant();
                    self.tokens.clear(age);
                }
            }
            d = hi;
        }
        // Retire the tokens whose window reached the last distance: they
        // completed the loop un-taken and die at the home (the home
        // re-emits fresh ones; for token slot the reservation returns to
        // the pool implicitly).
        let die_at = last.saturating_sub(cx.step);
        self.tokens.retire(die_at.div_ceil(cx.step));
    }

    #[inline]
    fn outstanding_tokens(&self) -> usize {
        self.tokens.count()
    }

    fn state_key_into(&self, _now: Cycle, _credits_word: u64, out: &mut Vec<u64>) {
        out.push(1);
        // Token ages, oldest first: time-translation invariant, so
        // recurring channel states key identically.
        for age in self.tokens.iter_oldest_first() {
            out.push(age as u64);
        }
    }
}

/// Runtime arbitration dispatch for callers that pick the scheme at
/// runtime (the bounded model checker, unit rigs). The network's hot path
/// uses the concrete arbiters directly — see the module docs.
#[derive(Debug, Clone)]
pub enum ArbiterKind {
    /// One token relayed among all senders (token channel, GHS).
    Global(GlobalArbiter),
    /// A stream of tokens swept from the home (token slot, DHS variants).
    Distributed(DistributedArbiter),
}

impl Arbiter for ArbiterKind {
    #[inline]
    fn step<F: Flow>(&mut self, flow: &mut F, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics) {
        match self {
            ArbiterKind::Global(g) => g.step(flow, cx, m),
            ArbiterKind::Distributed(d) => d.step(flow, cx, m),
        }
    }

    #[inline]
    fn outstanding_tokens(&self) -> usize {
        match self {
            ArbiterKind::Global(g) => g.outstanding_tokens(),
            ArbiterKind::Distributed(d) => d.outstanding_tokens(),
        }
    }

    #[inline]
    fn state_key_into(&self, now: Cycle, credits_word: u64, out: &mut Vec<u64>) {
        match self {
            ArbiterKind::Global(g) => g.state_key_into(now, credits_word, out),
            ArbiterKind::Distributed(d) => d.state_key_into(now, credits_word, out),
        }
    }
}
