//! Arbitration: which sender may transmit on a channel next.
//!
//! The paper's schemes split along a second axis, orthogonal to flow
//! control: *global* arbitration (one token relayed among all senders —
//! token channel, GHS) versus *distributed* arbitration (the home emits a
//! stream of tokens that sweep the ring — token slot, DHS, DHS with
//! circulation). This module owns the token state machines:
//!
//! * [`GlobalArbiter`] — the single sweeping/held/lost token, including the
//!   loss watchdog that re-emits a replacement after two silent loop times;
//! * [`DistributedArbiter`] — the oldest-first token queue, per-cycle
//!   emission (gated by the flow layer), disjoint window sweeps, and a bulk
//!   fast path for idle cycles;
//! * [`ArbiterKind`] — the construction-time dispatch wrapper chosen once
//!   in [`super::build`].
//!
//! Arbiters issue *grants* (via [`crate::outqueue::OutQueue::take_grant`])
//! and maintain the channel's active-sender list; everything about buffer
//! space lives in [`super::flow`]. The two layers meet at narrow hooks
//! ([`FlowKind::has_credit`], [`FlowKind::may_emit`], …) so a new scheme
//! combination is a new pairing, not a new `Channel`.

use crate::config::FairnessPolicy;
use crate::metrics::NetworkMetrics;
use crate::outqueue::OutQueue;
use pnoc_faults::ChannelInjector;
use pnoc_obs::{EventKind, NO_PACKET};
use pnoc_sim::Cycle;
use std::collections::VecDeque;

use super::flow::FlowKind;
use super::sendable::SendableSet;

/// State of the single global-arbitration token (token channel, GHS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalTokenState {
    /// Travelling; `next` is the first downstream distance not yet examined.
    Sweeping {
        /// First downstream distance the token has not yet examined.
        next: usize,
    },
    /// Held by the sender at the given node while it transmits.
    Held {
        /// Node currently holding the token.
        node: usize,
    },
    /// Destroyed by an injected fault; the home re-emits a replacement after
    /// a watchdog period of two silent loop times.
    Lost {
        /// Cycle the token was destroyed.
        since: Cycle,
    },
}

/// What the arbiters may touch while sweeping tokens. Field-level borrows
/// of the owning [`crate::channel::Channel`], plus its precomputed ring
/// lookup tables — the sweep loops run every cycle and must not divide.
#[derive(Debug)]
pub struct TokenCx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// The home node id (trace-event addressing).
    pub home: usize,
    /// Fairness policy senders are checked against.
    pub fairness: FairnessPolicy,
    /// Node count.
    pub nodes: usize,
    /// Nodes a token passes per cycle (`nodes / segments`).
    pub step: usize,
    /// Watchdog period for global-token loss (two handshake delays).
    pub watchdog: Cycle,
    /// Downstream distance → node id (precomputed, `nodes - 1` entries).
    pub by_distance: &'a [usize],
    /// Node id → downstream distance from home (precomputed).
    pub dist_of: &'a [usize],
    /// Per-sender output queues.
    pub senders: &'a mut [OutQueue],
    /// Senders with unconsumed grants.
    pub active: &'a mut Vec<usize>,
    /// Exact mask of senders with sendable work, by distance — the sweep
    /// loops probe only its set bits, and grants refresh it.
    pub sendable: &'a mut SendableSet,
    /// Home buffer occupancy (queued + draining), for the emission gate.
    pub buffered: usize,
    /// Home buffer capacity.
    pub buffer_cap: usize,
    /// Channel flag: a circulation reinjection suppresses this cycle's
    /// token emission.
    pub suppress_token: &'a mut bool,
    /// Fault injection, if live on this channel.
    pub injector: Option<&'a mut ChannelInjector>,
}

impl TokenCx<'_> {
    /// Grant the channel to `node` and put it on the active list.
    #[inline]
    fn grant(&mut self, node: usize, m: &mut NetworkMetrics) {
        self.senders[node].take_grant(self.now, self.fairness);
        m.trace(self.now, self.home, node, NO_PACKET, EventKind::TokenGrant);
        if !self.active.contains(&node) {
            self.active.push(node);
        }
        // A grant consumes sendable headroom (the transmission it owes).
        self.sendable
            .set(self.dist_of[node], self.senders[node].sendable() > 0);
    }

    /// First sender in the distance window `[lo, hi)` that may take a token
    /// right now. The mask prunes to senders with sendable work; `eligible`
    /// stays authoritative (fairness sit-outs are time-dependent).
    #[inline]
    fn first_eligible_in(&self, lo: usize, hi: usize) -> Option<usize> {
        let mut d = lo;
        while let Some(hit) = self.sendable.first_in(d, hi) {
            let node = self.by_distance[hit];
            if self.senders[node].eligible(self.now, self.fairness) {
                return Some(node);
            }
            d = hit + 1;
        }
        None
    }
}

/// The single-token state machine (token channel, GHS). Credits, if any,
/// live in the paired [`FlowKind`]; the arbiter asks before granting.
#[derive(Debug, Clone)]
pub struct GlobalArbiter {
    /// Current token state.
    pub state: GlobalTokenState,
}

impl GlobalArbiter {
    /// A fresh token sweeping from the node just past the home.
    pub fn new() -> Self {
        Self {
            state: GlobalTokenState::Sweeping { next: 0 },
        }
    }

    /// One cycle of token relay: fault exposure, watchdog re-emission,
    /// hold/release, and the sweep window.
    pub fn step(&mut self, flow: &mut FlowKind, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics) {
        // Fault: the circulating token is destroyed. Only a sweeping token
        // is exposed (a held one is latched at its sender).
        if let Some(inj) = cx.injector.as_deref_mut() {
            if inj.active()
                && matches!(self.state, GlobalTokenState::Sweeping { .. })
                && inj.token_lost()
            {
                m.faults_tokens_lost += 1;
                m.trace(cx.now, cx.home, cx.home, NO_PACKET, EventKind::TokenLost);
                flow.on_sweeping_token_lost(m);
                self.state = GlobalTokenState::Lost { since: cx.now };
            }
        }
        match self.state {
            GlobalTokenState::Lost { since } => {
                // Watchdog: after two silent loop times the home emits a
                // replacement. It cannot know how many credits died with
                // the old token, so the replacement starts empty and must
                // live off future ejection reimbursements.
                if cx.now.saturating_sub(since) >= cx.watchdog {
                    self.state = GlobalTokenState::Sweeping { next: 0 };
                }
            }
            GlobalTokenState::Held { node } => {
                let has_credit = flow.has_credit();
                let q = &mut cx.senders[node];
                if q.granted() > 0 {
                    // Transmission still owed; keep holding.
                } else if has_credit && q.eligible(cx.now, cx.fairness) {
                    cx.grant(node, m);
                    flow.spend_credit();
                } else {
                    // Release: the token resumes its sweep from just past
                    // the holder; downstream nodes see it from the next
                    // cycle (paper Fig. 3c→d).
                    let next = cx.dist_of[node] + 1;
                    self.state = Self::wrap_or_continue(next, cx.nodes, flow);
                }
            }
            GlobalTokenState::Sweeping { next } => {
                let hi = (next + cx.step).min(cx.nodes - 1);
                let mut grabbed = None;
                if flow.has_credit() {
                    grabbed = cx.first_eligible_in(next, hi);
                }
                if let Some(node) = grabbed {
                    cx.grant(node, m);
                    flow.spend_credit();
                    self.state = GlobalTokenState::Held { node };
                } else {
                    self.state = Self::wrap_or_continue(hi, cx.nodes, flow);
                }
            }
        }
    }

    /// Continue the sweep at `next`, wrapping past the home (which
    /// reimburses credits via [`FlowKind::on_home_pass`]).
    fn wrap_or_continue(next: usize, nodes: usize, flow: &mut FlowKind) -> GlobalTokenState {
        if next >= nodes - 1 {
            flow.on_home_pass();
            GlobalTokenState::Sweeping { next: 0 }
        } else {
            GlobalTokenState::Sweeping { next }
        }
    }
}

impl Default for GlobalArbiter {
    fn default() -> Self {
        Self::new()
    }
}

/// The token-stream state machine (token slot, DHS, DHS with circulation):
/// tokens indexed oldest-first, each holding the first downstream distance
/// not yet examined.
#[derive(Debug, Clone, Default)]
pub struct DistributedArbiter {
    /// Live tokens, oldest first (positions strictly decrease toward the
    /// back: each token advances one window per cycle and new ones start
    /// at distance 0).
    pub tokens: VecDeque<usize>,
}

impl DistributedArbiter {
    /// An arbiter with no tokens in flight (the home emits from cycle 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// One cycle of the token stream: fault exposure, emission (gated by
    /// the flow layer), and every live token's window sweep.
    pub fn step(&mut self, flow: &mut FlowKind, cx: &mut TokenCx<'_>, m: &mut NetworkMetrics) {
        // Fault: in-flight tokens are exposed every cycle.
        if let Some(inj) = cx.injector.as_deref_mut() {
            if inj.active() && !self.tokens.is_empty() {
                let before = self.tokens.len();
                self.tokens.retain(|_| !inj.token_lost());
                let destroyed = before - self.tokens.len();
                if destroyed > 0 {
                    m.faults_tokens_lost += destroyed as u64;
                    for _ in 0..destroyed {
                        m.trace(cx.now, cx.home, cx.home, NO_PACKET, EventKind::TokenLost);
                    }
                    flow.on_tokens_destroyed(destroyed, m);
                }
            }
        }
        // Emission.
        let emit = flow.may_emit(
            cx.buffered,
            self.tokens.len(),
            cx.buffer_cap,
            *cx.suppress_token,
        );
        *cx.suppress_token = false;
        if emit {
            self.tokens.push_back(0);
        }
        // Sweep every live token. Windows are disjoint: the token emitted
        // `a` cycles ago covers distances [a·step, (a+1)·step) this cycle,
        // maintained per token as `next`.
        if !cx.sendable.any() {
            // Fast path: with no sender holding sendable work — queues
            // empty, or (basic GHS/DHS) every head blocked on a pending
            // handshake — no token can be taken, so every window sweep
            // trivially fails; advance the whole stream in bulk. Positions
            // strictly decrease from front to back, so the tokens that die
            // at the home this cycle (`next + step` reaching the last
            // distance) are exactly a front prefix.
            debug_assert!(self.tokens.iter().is_sorted_by(|a, b| a >= b));
            let die_at = (cx.nodes - 1).saturating_sub(cx.step);
            while self.tokens.front().is_some_and(|&t| t >= die_at) {
                self.tokens.pop_front();
            }
            for t in &mut self.tokens {
                *t += cx.step;
            }
            return;
        }
        let mut idx = 0;
        while idx < self.tokens.len() {
            let next = self.tokens[idx];
            let hi = (next + cx.step).min(cx.nodes - 1);
            let mut grabbed = false;
            if let Some(node) = cx.first_eligible_in(next, hi) {
                cx.grant(node, m);
                flow.on_grant();
                grabbed = true;
            }
            if grabbed {
                self.tokens.remove(idx);
                // do not advance idx: the next token shifted in
            } else {
                self.tokens[idx] = hi;
                if hi >= cx.nodes - 1 {
                    // Token completed the loop un-taken and dies at the
                    // home (the home re-emits fresh ones; for token slot
                    // the reservation returns to the pool implicitly).
                    self.tokens.remove(idx);
                } else {
                    idx += 1;
                }
            }
        }
    }
}

/// Construction-time arbitration dispatch (see module docs).
#[derive(Debug, Clone)]
pub enum ArbiterKind {
    /// One token relayed among all senders (token channel, GHS).
    Global(GlobalArbiter),
    /// A stream of tokens swept from the home (token slot, DHS variants).
    Distributed(DistributedArbiter),
}

impl ArbiterKind {
    /// Live distributed tokens (0 under global arbitration).
    #[inline]
    pub fn outstanding_tokens(&self) -> usize {
        match self {
            ArbiterKind::Global(_) => 0,
            ArbiterKind::Distributed(d) => d.tokens.len(),
        }
    }
}
