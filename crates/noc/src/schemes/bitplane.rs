//! Packed per-node predicate bit-planes and the deterministic id set.
//!
//! The per-cycle kernel is data-oriented: instead of probing each
//! [`crate::outqueue::OutQueue`] for "can this sender transmit?", "does this
//! sender hold a grant?", and so on, the channel mirrors every per-node
//! predicate into a packed `u64` [`BitPlane`] indexed by downstream
//! distance. Phase loops then become word-at-a-time scans —
//! `trailing_zeros` iteration over set bits — so a 64-node channel examines
//! one machine word where the scalar loop examined 63 queues.
//!
//! [`Planes`] bundles the planes the channel maintains:
//!
//! * `sendable` — `senders[n].sendable() > 0`: the sender has backlog its
//!   send mode allows it to offer. Token sweeps ([`super::arbiter`]) use it
//!   to skip hopeless windows and to bulk-advance an idle token stream.
//! * `granted` — `senders[n].granted() > 0`: the sender holds at least one
//!   transmission grant. The transmit phase serves set bits in ascending
//!   distance order (nearest-first, the paper's service order), replacing a
//!   grant list that had to be re-sorted every cycle.
//! * `backlogged` — `senders[n].backlog() > 0`: the sender has waiting
//!   packets, whether or not its send mode lets it offer them. Drain checks
//!   reduce to `!backlogged.any()`.
//! * `unresolved` — the sender has transmitted copies awaiting an
//!   ACK/NACK/timeout verdict (a pending held head or occupied setaside
//!   slots). This is the retransmit-pending predicate: ACK processing and
//!   timeout sweeps only ever touch set bits.
//!
//! Exactness matters: the arbiter still calls
//! [`crate::outqueue::OutQueue::eligible`] on every candidate the
//! `sendable` mask yields (fairness sit-outs are time-dependent and not
//! mirrored here), but a *missing* bit would silently skip an eligible
//! sender and change arbitration.
//! [`crate::channel::Channel::try_check_invariants`] cross-checks every
//! plane against its scalar predicate under `verify-invariants`.
//!
//! [`SortedIdSet`] lives here too: it is the other deterministic set in the
//! kernel (duplicate suppression over packet ids), kept as a sorted vec
//! because ids are allocated by a monotone counter, so inserts land at or
//! near the tail and membership is a cache-friendly binary search. The
//! determinism lint `no-unordered-collections` bans hash collections in
//! simulation state; both structures here iterate in canonical order.

/// Bitmask over downstream distances `0..len` (see module docs).
#[derive(Debug, Clone)]
pub struct BitPlane {
    words: Vec<u64>,
    /// Number of set bits (cheap `any()` without scanning words).
    live: usize,
}

impl BitPlane {
    /// An empty plane over `len` distances.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64).max(1)],
            live: 0,
        }
    }

    /// Set or clear the bit for distance `d`, keeping the live count exact.
    #[inline]
    pub fn set(&mut self, d: usize, on: bool) {
        let w = &mut self.words[d / 64];
        let bit = 1u64 << (d % 64);
        let was = *w & bit != 0;
        if on && !was {
            *w |= bit;
            self.live += 1;
        } else if !on && was {
            *w &= !bit;
            self.live -= 1;
        }
    }

    /// Whether distance `d` is marked.
    #[inline]
    pub fn get(&self, d: usize) -> bool {
        self.words[d / 64] & (1u64 << (d % 64)) != 0
    }

    /// Whether any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.live > 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.live
    }

    /// Clear every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.live = 0;
    }

    /// The smallest marked distance in `[lo, hi)`, if any.
    #[inline]
    pub fn first_in(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi || self.live == 0 {
            return None;
        }
        let (lo_w, hi_w) = (lo / 64, (hi - 1) / 64);
        for w in lo_w..=hi_w {
            let mut bits = self.words[w];
            if w == lo_w {
                bits &= !0u64 << (lo % 64);
            }
            if bits == 0 {
                continue;
            }
            let d = w * 64 + bits.trailing_zeros() as usize;
            return (d < hi).then_some(d);
        }
        None
    }

    /// Iterate the set distances in ascending order, one `trailing_zeros`
    /// word scan at a time.
    #[inline]
    pub fn iter(&self) -> BitPlaneIter<'_> {
        BitPlaneIter {
            words: &self.words,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterate the distances set in *both* planes, in ascending order.
    /// The planes must cover the same length.
    pub fn iter_and<'a>(&'a self, other: &'a BitPlane) -> AndIter<'a> {
        debug_assert_eq!(self.words.len(), other.words.len());
        AndIter {
            a: &self.words,
            b: &other.words,
            word: 0,
            bits: match (self.words.first(), other.words.first()) {
                (Some(&x), Some(&y)) => x & y,
                _ => 0,
            },
        }
    }
}

/// Word-scan iterator over the set bits of a [`BitPlane`], yielding
/// distances in ascending order.
#[derive(Debug)]
pub struct BitPlaneIter<'a> {
    words: &'a [u64],
    word: usize,
    bits: u64,
}

impl<'a> IntoIterator for &'a BitPlane {
    type Item = usize;
    type IntoIter = BitPlaneIter<'a>;

    fn into_iter(self) -> BitPlaneIter<'a> {
        self.iter()
    }
}

impl Iterator for BitPlaneIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word * 64 + tz)
    }
}

/// Ascending iterator over the bitwise AND of two planes' words.
#[derive(Debug)]
pub struct AndIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word: usize,
    bits: u64,
}

impl Iterator for AndIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.a.len() {
                return None;
            }
            self.bits = self.a[self.word] & self.b[self.word];
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word * 64 + tz)
    }
}

/// Per-class views of the channel's predicate planes, maintained only when
/// admission control (`QoS`) is configured. Each class `c` gets:
///
/// * `sendable[c]` — the sender is sendable *and* its head packet belongs
///   to class `c` (the grant an admission bucket would pay for),
/// * `granted[c]` — the sender holds a grant and its head is class `c`,
/// * `backlogged[c]` — the sender's queue contains *any* class-`c` packet
///   (from [`crate::outqueue::OutQueue::class_backlog_mask`]) — the
///   starvation audit's "class is waiting" predicate.
///
/// Head-class predicates partition their parent plane: each distance is set
/// in at most one class's `sendable`/`granted` view, and the union over
/// classes equals the parent bit exactly
/// ([`crate::channel::Channel::try_check_invariants`] cross-checks this).
#[derive(Debug, Clone)]
pub struct ClassPlanes {
    /// Sendable with a class-`c` head, per class.
    pub sendable: [BitPlane; crate::MAX_CLASSES],
    /// Granted with a class-`c` head, per class.
    pub granted: [BitPlane; crate::MAX_CLASSES],
    /// Any class-`c` packet queued, per class.
    pub backlogged: [BitPlane; crate::MAX_CLASSES],
}

impl ClassPlanes {
    /// Empty per-class planes over `len` distances.
    pub fn new(len: usize) -> Self {
        Self {
            sendable: std::array::from_fn(|_| BitPlane::new(len)),
            granted: std::array::from_fn(|_| BitPlane::new(len)),
            backlogged: std::array::from_fn(|_| BitPlane::new(len)),
        }
    }

    /// Re-derive every class's bits for distance `d` from the queue's
    /// scalar state (same exactness contract as [`Planes::refresh`]).
    #[inline]
    pub fn refresh<T: crate::outqueue::QueueItem>(
        &mut self,
        d: usize,
        q: &crate::outqueue::OutQueue<T>,
    ) {
        let head = q.head_class();
        let sendable = q.sendable() > 0;
        let granted = q.granted() > 0;
        let mask = q.class_backlog_mask();
        for c in 0..crate::MAX_CLASSES {
            let is_head = head.map(usize::from) == Some(c);
            self.sendable[c].set(d, sendable && is_head);
            self.granted[c].set(d, granted && is_head);
            self.backlogged[c].set(d, mask & (1 << c) != 0);
        }
    }
}

/// The channel's bundle of per-node predicate planes, all indexed by
/// downstream distance (see module docs for the predicate each mirrors).
#[derive(Debug, Clone)]
pub struct Planes {
    /// `senders[n].sendable() > 0` — backlog the send mode can offer.
    pub sendable: BitPlane,
    /// `senders[n].granted() > 0` — holds at least one grant.
    pub granted: BitPlane,
    /// `senders[n].backlog() > 0` — any waiting packets at all.
    pub backlogged: BitPlane,
    /// Pending held head or occupied setaside — copies awaiting a verdict.
    pub unresolved: BitPlane,
    /// Per-class views, allocated only when admission control is on. `None`
    /// keeps the `QoS`-off refresh path identical to the pre-`QoS` kernel.
    pub classes: Option<Box<ClassPlanes>>,
}

impl Planes {
    /// Empty planes over `len` distances, without per-class views.
    pub fn new(len: usize) -> Self {
        Self {
            sendable: BitPlane::new(len),
            granted: BitPlane::new(len),
            backlogged: BitPlane::new(len),
            unresolved: BitPlane::new(len),
            classes: None,
        }
    }

    /// Empty planes with per-class views enabled (admission control on).
    pub fn with_classes(len: usize) -> Self {
        let mut p = Self::new(len);
        p.classes = Some(Box::new(ClassPlanes::new(len)));
        p
    }

    /// Re-derive every plane's bit for distance `d` from the queue's scalar
    /// state. Called after any queue mutation (push, grant, transmit, ACK,
    /// NACK, timeout) — the planes are exact mirrors, never approximations.
    #[inline]
    pub fn refresh<T: crate::outqueue::QueueItem>(
        &mut self,
        d: usize,
        q: &crate::outqueue::OutQueue<T>,
    ) {
        self.sendable.set(d, q.sendable() > 0);
        self.granted.set(d, q.granted() > 0);
        self.backlogged.set(d, q.backlog() > 0);
        self.unresolved.set(d, q.unresolved_len() > 0);
        if let Some(cp) = self.classes.as_deref_mut() {
            cp.refresh(d, q);
        }
    }
}

/// Live distributed-arbitration tokens as a bit-set over *ages*.
///
/// A token emitted `a` cycles ago sweeps the window
/// `[a·step, (a+1)·step)` — its position is a pure function of its age —
/// so the stream's whole state is "which ages are alive". Bit `a` set
/// means a token emitted `a` cycles ago is still circulating. Advancing
/// every token one window is then a single word shift per cycle
/// ([`AgeSet::tick`]), a membership probe is a bit test, and a grant or
/// fault removal is a bit clear. At most one token is emitted per cycle,
/// so ages are distinct and the mapping is exact.
///
/// The word vector is kept canonical (no trailing zero words) so that
/// structural equality compares token streams, not allocation history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgeSet {
    words: Vec<u64>,
}

impl AgeSet {
    /// An empty stream.
    pub fn new() -> Self {
        Self { words: vec![0] }
    }

    /// Age every live token by one cycle (bit `a` → bit `a + 1`).
    #[inline]
    pub fn tick(&mut self) {
        let mut carry = 0u64;
        for w in &mut self.words {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
        if carry != 0 {
            self.words.push(carry);
        }
    }

    /// Emit a fresh token (age 0). At most one emission per cycle.
    #[inline]
    pub fn emit(&mut self) {
        debug_assert!(self.words[0] & 1 == 0, "two tokens emitted in one cycle");
        self.words[0] |= 1;
    }

    /// Whether a token of age `age` is alive.
    #[inline]
    pub fn contains(&self, age: usize) -> bool {
        self.words
            .get(age / 64)
            .is_some_and(|w| w & (1u64 << (age % 64)) != 0)
    }

    /// Remove the token of age `age` (taken by a sender, or destroyed).
    #[inline]
    pub fn clear(&mut self, age: usize) {
        if let Some(w) = self.words.get_mut(age / 64) {
            *w &= !(1u64 << (age % 64));
        }
        self.canonicalize();
    }

    /// Visit every live token oldest-first, dropping those for which
    /// `keep` returns `false`; returns the number removed. The visit order
    /// is the emission order, so per-token fault draws replay identically
    /// across representations.
    pub fn retain_oldest_first(&mut self, mut keep: impl FnMut() -> bool) -> usize {
        let mut removed = 0;
        for i in (0..self.words.len()).rev() {
            let mut bits = self.words[i];
            while bits != 0 {
                let bit = 1u64 << bits.ilog2();
                bits &= !bit;
                if !keep() {
                    self.words[i] &= !bit;
                    removed += 1;
                }
            }
        }
        self.canonicalize();
        removed
    }

    /// Remove every token of age ≥ `max_age` (completed the loop and died
    /// at the home).
    pub fn retire(&mut self, max_age: usize) {
        let cut = max_age / 64;
        for (i, w) in self.words.iter_mut().enumerate() {
            if i > cut {
                *w = 0;
            } else if i == cut {
                *w &= (1u64 << (max_age % 64)) - 1;
            }
        }
        self.canonicalize();
    }

    /// Live token count.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any token is alive.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterate live ages oldest-first (descending age) — the emission
    /// order, which fault draws and state keys both follow.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().rev().flat_map(|(i, &w)| {
            std::iter::successors(
                (w != 0).then(|| 63 - w.leading_zeros() as usize),
                move |&a| {
                    let rest = w & ((1u64 << (a % 64)) - 1);
                    (rest != 0).then(|| 63 - rest.leading_zeros() as usize)
                },
            )
            .map(move |a| i * 64 + a)
        })
    }

    /// Drop trailing zero words so equality is structural.
    fn canonicalize(&mut self) {
        while self.words.len() > 1 && self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl Default for AgeSet {
    fn default() -> Self {
        Self::new()
    }
}

/// A set of `u64` ids stored as a sorted vector (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SortedIdSet {
    ids: Vec<u64>,
}

impl SortedIdSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        // Fast path: ids arrive in roughly increasing order, so most probes
        // are beyond the current maximum.
        match self.ids.last() {
            None => false,
            Some(&max) if id > max => false,
            Some(&max) if id == max => true,
            _ => self.ids.binary_search(&id).is_ok(),
        }
    }

    /// Insert `id`; returns `false` if it was already present.
    pub fn insert(&mut self, id: u64) -> bool {
        if self.ids.last().is_none_or(|&max| id > max) {
            self.ids.push(id);
            return true;
        }
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterate the ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_live_count() {
        let mut s = BitPlane::new(130);
        assert!(!s.any());
        s.set(0, true);
        s.set(129, true);
        s.set(129, true); // idempotent
        assert!(s.any());
        assert_eq!(s.count(), 2);
        assert!(s.get(0) && s.get(129) && !s.get(64));
        s.set(0, false);
        s.set(0, false); // idempotent
        s.set(129, false);
        assert!(!s.any());
    }

    #[test]
    fn first_in_respects_the_window() {
        let mut s = BitPlane::new(200);
        s.set(70, true);
        s.set(150, true);
        assert_eq!(s.first_in(0, 200), Some(70));
        assert_eq!(s.first_in(71, 200), Some(150));
        assert_eq!(s.first_in(0, 70), None);
        assert_eq!(s.first_in(70, 71), Some(70));
        assert_eq!(s.first_in(151, 200), None);
        assert_eq!(s.first_in(5, 5), None);
    }

    #[test]
    fn first_in_scans_within_one_word() {
        let mut s = BitPlane::new(64);
        s.set(3, true);
        s.set(9, true);
        assert_eq!(s.first_in(0, 64), Some(3));
        assert_eq!(s.first_in(4, 64), Some(9));
        assert_eq!(s.first_in(4, 9), None);
        assert_eq!(s.first_in(10, 64), None);
    }

    #[test]
    fn iter_scans_words_in_ascending_order() {
        let mut s = BitPlane::new(200);
        for d in [0usize, 63, 64, 127, 128, 199] {
            s.set(d, true);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 199]);
        s.clear();
        assert!(!s.any());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn iter_and_yields_the_intersection() {
        let mut a = BitPlane::new(150);
        let mut b = BitPlane::new(150);
        for d in [1usize, 60, 70, 149] {
            a.set(d, true);
        }
        for d in [1usize, 70, 100, 149] {
            b.set(d, true);
        }
        let got: Vec<usize> = a.iter_and(&b).collect();
        assert_eq!(got, vec![1, 70, 149]);
    }

    #[test]
    fn insert_contains_and_order() {
        let mut s = SortedIdSet::new();
        assert!(s.is_empty());
        for id in [5u64, 1, 9, 3, 9, 5] {
            s.insert(id);
        }
        assert_eq!(s.len(), 4, "duplicates are not stored twice");
        for id in [1u64, 3, 5, 9] {
            assert!(s.contains(id));
        }
        for id in [0u64, 2, 4, 8, 10] {
            assert!(!s.contains(id));
        }
        let ordered: Vec<u64> = s.iter().collect();
        assert_eq!(ordered, vec![1, 3, 5, 9], "iteration is in id order");
    }

    #[test]
    fn insert_reports_novelty_and_clear_resets() {
        let mut s = SortedIdSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.insert(2), "out-of-order insert still works");
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(7));
    }

    #[test]
    fn ageset_tick_emit_and_probe() {
        let mut s = AgeSet::new();
        assert!(!s.any());
        s.emit();
        assert!(s.contains(0));
        s.tick();
        s.emit();
        assert!(s.contains(0) && s.contains(1));
        assert_eq!(s.count(), 2);
        s.clear(1);
        assert!(!s.contains(1) && s.contains(0));
        let ages: Vec<usize> = s.iter_oldest_first().collect();
        assert_eq!(ages, vec![0]);
    }

    #[test]
    fn ageset_shifts_across_word_boundaries() {
        let mut s = AgeSet::new();
        s.emit();
        for _ in 0..100 {
            s.tick();
        }
        assert!(s.contains(100), "token aged across the word boundary");
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter_oldest_first().collect::<Vec<_>>(), vec![100]);
        s.retire(100);
        assert!(!s.any());
        assert_eq!(s, AgeSet::new(), "retire canonicalizes trailing words");
    }

    #[test]
    fn ageset_retire_drops_only_old_tokens() {
        let mut s = AgeSet::new();
        for _ in 0..10 {
            s.emit();
            s.tick();
        }
        // Ages now 1..=10.
        assert_eq!(s.count(), 10);
        s.retire(8);
        assert_eq!(
            s.iter_oldest_first().collect::<Vec<_>>(),
            vec![7, 6, 5, 4, 3, 2, 1]
        );
    }

    #[test]
    fn ageset_iterates_oldest_first_across_words() {
        let mut s = AgeSet::new();
        s.emit();
        for _ in 0..70 {
            s.tick();
        }
        s.emit();
        s.tick();
        s.emit();
        // Ages: 71, 1, 0.
        assert_eq!(s.iter_oldest_first().collect::<Vec<_>>(), vec![71, 1, 0]);
    }

    #[test]
    fn monotone_appends_use_the_tail_fast_path() {
        let mut s = SortedIdSet::new();
        for id in 0..1000u64 {
            assert!(s.insert(id));
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(999));
        assert!(!s.contains(1000));
    }
}
