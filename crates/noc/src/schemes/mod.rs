//! The scheme pipeline: arbitration × flow control, composed at
//! construction.
//!
//! Every scheme the paper evaluates is a pairing of one [`Arbiter`]
//! strategy (who may transmit next) with one [`Flow`] strategy (how
//! buffer space is claimed and released):
//!
//! | Scheme              | Arbitration                       | Flow control        |
//! |---------------------|-----------------------------------|---------------------|
//! | Token channel       | [`GlobalArbiter`] (one token)     | [`CreditFlow`]      |
//! | GHS (± setaside)    | [`GlobalArbiter`] (one token)     | [`HandshakeFlow`]   |
//! | Token slot          | [`DistributedArbiter`] (stream)   | [`SlotFlow`]        |
//! | DHS (± setaside)    | [`DistributedArbiter`] (stream)   | [`HandshakeFlow`]   |
//! | DHS w/ circulation  | [`DistributedArbiter`] (stream)   | [`CirculationFlow`] |
//!
//! [`build`] resolves a [`Scheme`] into an ([`ArbiterKind`], [`FlowKind`])
//! pair exactly once, when a runtime-dispatched channel is constructed (the
//! model checker, unit rigs). The network's hot path goes further: it
//! monomorphizes [`crate::channel::Channel`] over the concrete pairing, so
//! the per-cycle phase bodies compile with both layers' hooks inlined and
//! zero enum dispatch — adding a scheme variant means writing (or reusing)
//! one arbiter and one flow implementation, not editing every phase of a
//! monolithic channel.
//!
//! The layers meet only at the narrow hooks on [`Flow`]
//! (`has_credit`/`spend_credit` for credit-gated grants, `may_emit` for
//! token regeneration, `on_home_pass` for reimbursement, fault hooks for
//! leak accounting), so each side can be unit-tested in isolation — see the
//! tests in [`arbiter`] and [`flow`]. Per-node predicates (sendable,
//! granted, …) live in the packed [`bitplane`] layer both sides scan and
//! refresh.

pub mod admission;
pub mod arbiter;
pub mod bitplane;
pub mod flow;

pub use admission::AdmissionCtl;
pub use arbiter::{
    Arbiter, ArbiterKind, DistributedArbiter, GlobalArbiter, GlobalTokenState, TokenCx,
};
pub use bitplane::{BitPlane, ClassPlanes, Planes, SortedIdSet};
pub use flow::{
    AckEvent, ArrivalCx, CirculationFlow, CreditFlow, Flow, FlowKind, HandshakeFlow, SlotFlow,
};

use crate::config::{NetworkConfig, Scheme};

/// Resolve `cfg.scheme` into its arbitration/flow-control pairing. Called
/// once per channel at construction; the runtime-dispatched channel matches
/// on the returned enum variants, the monomorphized network destructures
/// them into concrete types.
pub fn build(cfg: &NetworkConfig) -> (ArbiterKind, FlowKind) {
    let arbiter = if cfg.scheme.is_global() {
        ArbiterKind::Global(GlobalArbiter::new())
    } else {
        ArbiterKind::Distributed(DistributedArbiter::new())
    };
    let flow = match cfg.scheme {
        Scheme::TokenChannel => FlowKind::Credit(CreditFlow::new(crate::convert::narrow_u32(
            cfg.input_buffer,
        ))),
        Scheme::TokenSlot => FlowKind::Slot(SlotFlow::default()),
        Scheme::Ghs { setaside } | Scheme::Dhs { setaside } => {
            FlowKind::Handshake(HandshakeFlow::new(cfg.ring_segments, setaside > 0))
        }
        Scheme::DhsCirculation => FlowKind::Circulation(CirculationFlow),
    };
    (arbiter, flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairnessPolicy;
    use crate::metrics::NetworkMetrics;
    use crate::outqueue::{OutQueue, SendMode};
    use crate::packet::{Packet, PacketArena, PacketKind, PacketRef};

    fn pkt(id: u64, src: usize) -> Packet {
        Packet {
            id,
            src_core: (src * 2) as u32,
            src_node: src as u32,
            dst_node: 0,
            kind: PacketKind::Data,
            generated_at: 0,
            enqueued_at: 0,
            sent_at: 0,
            sends: 0,
            measured: false,
            tag: 0,
            class: 0,
        }
    }

    /// A 16-node, 4-segment test harness around one arbiter/flow pairing.
    struct Rig {
        senders: Vec<OutQueue<PacketRef>>,
        by_distance: Vec<usize>,
        dist_of: Vec<usize>,
        suppress: bool,
        planes: Planes,
    }

    impl Rig {
        fn new(mode: SendMode) -> Self {
            let nodes = 16;
            let home = 0;
            let mut by_distance = vec![0; nodes - 1];
            let mut dist_of = vec![usize::MAX; nodes];
            for (d, slot) in by_distance.iter_mut().enumerate() {
                let n = (home + 1 + d) % nodes;
                *slot = n;
                dist_of[n] = d;
            }
            Self {
                senders: (0..nodes).map(|_| OutQueue::new(mode)).collect(),
                by_distance,
                dist_of,
                suppress: false,
                planes: Planes::new(nodes - 1),
            }
        }

        fn cx(&mut self, now: u64) -> TokenCx<'_> {
            TokenCx {
                now,
                home: 0,
                fairness: FairnessPolicy::None,
                nodes: 16,
                step: 4,
                watchdog: 10,
                by_distance: &self.by_distance,
                dist_of: &self.dist_of,
                senders: &mut self.senders,
                planes: &mut self.planes,
                buffered: 0,
                buffer_cap: 4,
                suppress_token: &mut self.suppress,
                admission: None,
                injector: None,
            }
        }

        fn enqueue(&mut self, p: Packet) {
            let src = p.src_node as usize;
            // The rig exercises arbitration only — a dummy handle stands in
            // for the arena the real channel owns.
            self.senders[src].push(PacketRef {
                id: p.id,
                handle: 0,
                sends: 0,
                class: p.class,
            });
            self.refresh(src);
        }

        fn refresh(&mut self, node: usize) {
            self.planes.refresh(self.dist_of[node], &self.senders[node]);
        }
    }

    #[test]
    fn build_pairs_every_scheme_correctly() {
        let check = |scheme: Scheme, global: bool| {
            let cfg = NetworkConfig::small(scheme);
            let (a, f) = build(&cfg);
            assert_eq!(matches!(a, ArbiterKind::Global(_)), global, "{scheme:?}");
            match scheme {
                Scheme::TokenChannel => assert!(matches!(f, FlowKind::Credit(_))),
                Scheme::TokenSlot => assert!(matches!(f, FlowKind::Slot(_))),
                Scheme::Ghs { .. } | Scheme::Dhs { .. } => {
                    assert!(matches!(f, FlowKind::Handshake(_)));
                }
                Scheme::DhsCirculation => assert!(matches!(f, FlowKind::Circulation(_))),
            }
        };
        for scheme in Scheme::paper_set(4) {
            check(scheme, scheme.is_global());
        }
    }

    #[test]
    fn token_slot_regenerates_only_with_uncommitted_space() {
        // Token regeneration: with buffer_cap 4 the home emits at most 4
        // concurrent commitments; an idle network just recycles them.
        let mut rig = Rig::new(SendMode::Forget);
        let mut d = DistributedArbiter::new();
        let mut f = FlowKind::Slot(SlotFlow::default());
        let mut m = NetworkMetrics::new();
        for now in 0..32u64 {
            let mut cx = rig.cx(now);
            d.step(&mut f, &mut cx, &mut m);
            assert!(
                d.tokens.count() <= 4,
                "cycle {now}: {} tokens exceed the 4 buffer commitments",
                d.tokens.count()
            );
        }
        // DHS has no such gate: one token per cycle until the ring is full
        // of them (a token lives segments = nodes/step = 4 cycles).
        let mut rig = Rig::new(SendMode::Forget);
        let mut d = DistributedArbiter::new();
        let mut f = FlowKind::Handshake(HandshakeFlow::new(4, false));
        for now in 0..32u64 {
            let mut cx = rig.cx(now);
            d.step(&mut f, &mut cx, &mut m);
        }
        assert!(d.tokens.count() >= 3, "DHS keeps the ring saturated");
    }

    #[test]
    fn global_token_reimburses_credits_on_home_pass() {
        // Credit reimbursement: spend both credits, free them via
        // on_slot_freed, and watch them return only when the sweep wraps.
        let mut rig = Rig::new(SendMode::Forget);
        let mut g = GlobalArbiter::new();
        let mut f = FlowKind::Credit(CreditFlow::new(2));
        let mut m = NetworkMetrics::new();
        rig.enqueue(pkt(1, 2));
        rig.enqueue(pkt(2, 2));
        // Sweep until both packets are granted (credits hit 0).
        for now in 0..16u64 {
            let mut cx = rig.cx(now);
            g.step(&mut f, &mut cx, &mut m);
            let granted = rig.senders[2].granted();
            if granted > 0 {
                // Consume the grant so the holder releases the token.
                rig.senders[2].transmit(now);
                rig.refresh(2);
            }
        }
        assert_eq!(f.credits(), Some(0), "both credits spent");
        // The ejections free the slots; credits wait as `uncommitted`.
        f.on_slot_freed();
        f.on_slot_freed();
        assert_eq!(f.uncommitted(), 2);
        assert_eq!(f.credits(), Some(0), "reimbursement waits for home pass");
        // Let the token finish its loop: the wrap reimburses.
        for now in 16..32u64 {
            let mut cx = rig.cx(now);
            g.step(&mut f, &mut cx, &mut m);
        }
        assert_eq!(f.credits(), Some(2), "home pass reimbursed the credits");
        assert_eq!(f.uncommitted(), 0);
    }

    #[test]
    fn global_token_without_credits_never_blocks() {
        // GHS: the token carries nothing, so has_credit is always true.
        let f = FlowKind::Handshake(HandshakeFlow::new(4, false));
        assert!(f.has_credit());
        let f = FlowKind::Credit(CreditFlow::new(0));
        assert!(!f.has_credit(), "an empty token channel must block");
    }

    #[test]
    fn idle_bulk_advance_matches_the_sweep_loop() {
        // Run two identical DHS arbiters, one with backlog (scan path) and
        // one without (bulk path) but where the scan also never grabs
        // (eligible() is false for empty queues): token streams must match.
        let mut rig_idle = Rig::new(SendMode::HoldHead);
        let mut rig_scan = Rig::new(SendMode::HoldHead);
        // Force the scan path with a deliberately stale plane bit: the probe
        // at distance 14 finds nothing sendable, so no token is grabbed.
        rig_scan.planes.sendable.set(14, true);
        let mut a_idle = DistributedArbiter::new();
        let mut a_scan = DistributedArbiter::new();
        let mut f_idle = FlowKind::Handshake(HandshakeFlow::new(4, false));
        let mut f_scan = FlowKind::Handshake(HandshakeFlow::new(4, false));
        let mut m = NetworkMetrics::new();
        for now in 0..40u64 {
            let mut cx = rig_idle.cx(now);
            a_idle.step(&mut f_idle, &mut cx, &mut m);
            let mut cx = rig_scan.cx(now);
            a_scan.step(&mut f_scan, &mut cx, &mut m);
            assert_eq!(a_idle.tokens, a_scan.tokens, "cycle {now}");
        }
    }

    #[test]
    fn ack_timer_arms_and_fires_as_a_timeout_retransmission() {
        // ACK-timer arming: transmit under recovery, never deliver the
        // handshake, and check the timer retransmits exactly once per
        // deadline with the timeout metric (not the NACK metric).
        let mut senders: Vec<OutQueue<PacketRef>> =
            (0..2).map(|_| OutQueue::new(SendMode::HoldHead)).collect();
        let dist_of = [usize::MAX, 0]; // node 1 sits at distance 0
        let mut planes = Planes::new(1);
        let mut queued = 1usize;
        let mut h = HandshakeFlow::new(4, false);
        let recovery = pnoc_faults::RecoveryConfig::for_ring(4);
        assert!(recovery.enabled);
        let mut m = NetworkMetrics::new();
        let mut arena = PacketArena::new();
        let handle = arena.alloc(pkt(7, 1));
        senders[1].push(PacketRef {
            id: 7,
            handle,
            sends: 0,
            class: 0,
        });
        senders[1].take_grant(0, FairnessPolicy::None);
        let sent = senders[1].transmit(0);
        assert!(sent.is_some());
        let deadline = recovery.timeout_for_attempt(1);
        h.ack_timers.push(std::cmp::Reverse((deadline, 1, 7)));
        for now in 0..=deadline {
            let fired_before = m.timeout_retransmissions;
            h.phase_acks(
                now,
                0,
                &mut senders,
                &mut arena,
                &dist_of,
                &mut planes,
                &mut queued,
                None,
                &recovery,
                5,
                &mut m,
            );
            if now < deadline {
                assert_eq!(m.timeout_retransmissions, fired_before, "early fire");
            }
        }
        assert_eq!(m.timeout_retransmissions, 1, "timer fired exactly once");
        assert_eq!(m.retransmissions, 0, "timeout path, not NACK path");
        assert_eq!(queued, 1, "HoldHead: the packet is back awaiting resend");
    }

    #[test]
    fn duplicate_ids_are_tracked_in_order() {
        let mut h = HandshakeFlow::new(4, true);
        for id in [9u64, 3, 12] {
            h.accepted_ids.insert(id);
        }
        assert!(h.accepted_ids.contains(3));
        assert!(!h.accepted_ids.contains(4));
        let ids: Vec<u64> = h.accepted_ids.iter().collect();
        assert_eq!(ids, vec![3, 9, 12]);
    }
}
