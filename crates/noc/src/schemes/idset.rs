//! A deterministic sorted-vec id set for duplicate suppression.
//!
//! The home keeps the set of packet ids it has accepted while
//! timeout/retransmit recovery is enabled, so a retransmission whose
//! original ACK was lost is discarded instead of delivered twice. The set
//! must iterate in a canonical order (the model checker's state keys are
//! built from it, and the determinism lint `no-unordered-collections` bans
//! hash collections in simulation state), and membership tests sit on the
//! per-arrival hot path.
//!
//! A sorted `Vec<u64>` beats the previous `BTreeSet<u64>` here: membership
//! is a cache-friendly binary search over contiguous memory, iteration is a
//! linear scan in id order, and — because packet ids are allocated by a
//! monotone counter — inserts land at or near the tail, so the amortized
//! shift cost stays small.

/// A set of `u64` ids stored as a sorted vector (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SortedIdSet {
    ids: Vec<u64>,
}

impl SortedIdSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        // Fast path: ids arrive in roughly increasing order, so most probes
        // are beyond the current maximum.
        match self.ids.last() {
            None => false,
            Some(&max) if id > max => false,
            Some(&max) if id == max => true,
            _ => self.ids.binary_search(&id).is_ok(),
        }
    }

    /// Insert `id`; returns `false` if it was already present.
    pub fn insert(&mut self, id: u64) -> bool {
        if self.ids.last().is_none_or(|&max| id > max) {
            self.ids.push(id);
            return true;
        }
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterate the ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_order() {
        let mut s = SortedIdSet::new();
        assert!(s.is_empty());
        for id in [5u64, 1, 9, 3, 9, 5] {
            s.insert(id);
        }
        assert_eq!(s.len(), 4, "duplicates are not stored twice");
        for id in [1u64, 3, 5, 9] {
            assert!(s.contains(id));
        }
        for id in [0u64, 2, 4, 8, 10] {
            assert!(!s.contains(id));
        }
        let ordered: Vec<u64> = s.iter().collect();
        assert_eq!(ordered, vec![1, 3, 5, 9], "iteration is in id order");
    }

    #[test]
    fn insert_reports_novelty_and_clear_resets() {
        let mut s = SortedIdSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.insert(2), "out-of-order insert still works");
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(7));
    }

    #[test]
    fn monotone_appends_use_the_tail_fast_path() {
        let mut s = SortedIdSet::new();
        for id in 0..1000u64 {
            assert!(s.insert(id));
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(999));
        assert!(!s.contains(1000));
    }
}
