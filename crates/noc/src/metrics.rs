//! Measurement: per-run counters and the derived run summary.

use pnoc_obs::LatencyRecorder;
use pnoc_sim::stats::{jain_index, Running};
use pnoc_sim::{BatchMeans, Cycle};
use pnoc_traffic::MAX_CLASSES;
use serde::Serialize;

/// Raw counters accumulated while the network runs.
#[derive(Debug, Clone)]
pub struct NetworkMetrics {
    /// End-to-end latency of measured packets (generation → ejection).
    pub latency: Running,
    /// Latency distribution for percentiles: exact 1-cycle bins over
    /// 0..2048 (where the paper's figures live), ~3 % log buckets beyond.
    /// Replaces the fixed 2048-bin histogram that clipped tail samples into
    /// an overflow bucket and reported `p99 = +inf` near saturation.
    pub latency_rec: LatencyRecorder,
    /// Batch-means accumulator for a confidence interval on the mean latency
    /// (consecutive packet latencies are autocorrelated; see
    /// [`pnoc_sim::batch`]).
    pub latency_batches: BatchMeans,
    /// Output-queue wait of measured packets (enqueue → first transmission);
    /// this is the paper's "token waiting time" component.
    pub queue_wait: Running,
    /// Packets generated (all / measured window).
    pub generated: u64,
    /// Packets generated inside the measurement window.
    pub generated_measured: u64,
    /// Packets delivered to their destination cores (all / measured).
    pub delivered: u64,
    /// Measured packets delivered.
    pub delivered_measured: u64,
    /// Ring transmissions (including retransmissions and recirculated loops).
    pub sends: u64,
    /// Packets that reached a full home buffer and were dropped (`NACKed`).
    pub drops: u64,
    /// Retransmissions performed after NACKs.
    pub retransmissions: u64,
    /// Extra loops taken by packets under circulation.
    pub circulations: u64,
    /// Packets that arrived at a home (pre-buffer-check).
    pub arrivals: u64,

    // --- multi-tenant (per-class) counters ---
    /// Measured deliveries per traffic class. Class 0 is the default:
    /// untagged traffic (every pre-`QoS` call site) lands there, so these
    /// always sum to the global measured delivery count.
    pub class_delivered: [u64; MAX_CLASSES],
    /// Per-class end-to-end latency running mean/variance.
    pub class_latency: [Running; MAX_CLASSES],
    /// Per-class latency distributions (same binning as `latency_rec`, so
    /// the class recorders partition the global one bin-for-bin).
    pub class_latency_rec: [LatencyRecorder; MAX_CLASSES],

    // --- reliability counters (all zero on fault-free runs) ---
    /// Data flits destroyed in flight by the fault engine.
    pub faults_data_lost: u64,
    /// Data flits that arrived corrupt (failed the home's CRC).
    pub faults_data_corrupt: u64,
    /// ACK/NACK pulses lost on the handshake channel.
    pub faults_acks_lost: u64,
    /// Arbitration tokens destroyed in flight.
    pub faults_tokens_lost: u64,
    /// Home-ejection cycles lost to injected drain stalls.
    pub stall_cycles: u64,
    /// Retransmissions triggered by an ACK timeout (as opposed to a NACK).
    pub timeout_retransmissions: u64,
    /// Duplicate arrivals the home discarded (retransmit after a lost ACK);
    /// each was re-ACKed so the sender could release its copy.
    pub duplicates_suppressed: u64,
    /// Packets abandoned after exhausting `max_retries` transmissions.
    pub abandoned: u64,
    /// Flow-control credits permanently destroyed by faults: token-channel
    /// credits on lost flits/tokens and token-slot reservations that can
    /// never be returned. Nonzero here is the credit-leak signature the
    /// handshake schemes are immune to.
    pub credit_leaks: u64,

    /// Packet-lifecycle trace sink (`obs-trace` feature). Disabled by
    /// default even when compiled in; enable with
    /// [`crate::Network::attach_trace`].
    #[cfg(feature = "obs-trace")]
    pub obs: pnoc_obs::ObsSink,
}

impl NetworkMetrics {
    /// Zeroed counters. The latency recorder is exact over 0..2048 cycles.
    pub fn new() -> Self {
        Self {
            latency: Running::new(),
            latency_rec: LatencyRecorder::cycles(),
            latency_batches: BatchMeans::new(256),
            queue_wait: Running::new(),
            generated: 0,
            generated_measured: 0,
            delivered: 0,
            delivered_measured: 0,
            sends: 0,
            drops: 0,
            retransmissions: 0,
            circulations: 0,
            arrivals: 0,
            class_delivered: [0; MAX_CLASSES],
            class_latency: std::array::from_fn(|_| Running::new()),
            class_latency_rec: std::array::from_fn(|_| LatencyRecorder::cycles()),
            faults_data_lost: 0,
            faults_data_corrupt: 0,
            faults_acks_lost: 0,
            faults_tokens_lost: 0,
            stall_cycles: 0,
            timeout_retransmissions: 0,
            duplicates_suppressed: 0,
            abandoned: 0,
            credit_leaks: 0,
            #[cfg(feature = "obs-trace")]
            obs: pnoc_obs::ObsSink::default(),
        }
    }

    /// Record one measured end-to-end latency sample into all three
    /// estimators at once: the running mean/variance, the percentile
    /// recorder, and the batch-means CI accumulator. The single entry
    /// point keeps the three views of the distribution in lockstep across
    /// every network implementation (MWSR channel, SWMR ring, electrical
    /// mesh) — a sample recorded into one but not the others would let a
    /// reported mean and its confidence interval disagree about the data.
    #[inline]
    pub fn record_latency(&mut self, lat: f64) {
        self.record_latency_class(0, lat);
    }

    /// Class-tagged variant of [`NetworkMetrics::record_latency`]: records
    /// the same three global estimators *plus* the class's own recorder,
    /// running stats, and delivery counter. Because the untagged path
    /// delegates here with class 0, the per-class views partition the
    /// global distribution on every network implementation — per-bin
    /// recorder counts and delivery totals sum exactly to the global ones.
    #[inline]
    pub fn record_latency_class(&mut self, class: u8, lat: f64) {
        self.latency.record(lat);
        self.latency_rec.record(lat);
        self.latency_batches.record(lat);
        let c = usize::from(class);
        self.class_delivered[c] += 1;
        self.class_latency[c].record(lat);
        self.class_latency_rec[c].record(lat);
    }

    /// Record a packet-lifecycle trace event (`obs-trace` builds with a
    /// trace attached; a no-op branch otherwise).
    #[cfg(feature = "obs-trace")]
    #[inline]
    pub fn trace(
        &mut self,
        cycle: Cycle,
        channel: usize,
        node: usize,
        packet: u64,
        kind: pnoc_obs::EventKind,
    ) {
        self.obs
            .emit(pnoc_obs::Event::new(cycle, channel, node, packet, kind));
    }

    /// Traces-off twin of [`NetworkMetrics::trace`]: compiles to nothing, so
    /// hook call sites cost the default build zero cycles.
    #[cfg(not(feature = "obs-trace"))]
    #[inline(always)]
    #[allow(clippy::unused_self)]
    pub fn trace(
        &mut self,
        _cycle: Cycle,
        _channel: usize,
        _node: usize,
        _packet: u64,
        _kind: pnoc_obs::EventKind,
    ) {
    }

    /// Retransmissions (NACK- plus timeout-triggered) per ring transmission.
    pub fn retransmit_rate(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            (self.retransmissions + self.timeout_retransmissions) as f64 / self.sends as f64
        }
    }

    /// Drop-plus-retransmission rate relative to arrivals — the quantity the
    /// paper reports as "below 1 % even in high workloads".
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }

    /// Circulation rate relative to arrivals.
    pub fn circulation_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.circulations as f64 / self.arrivals as f64
        }
    }
}

impl Default for NetworkMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-class digest of one run — the `QoS` view of a figure point.
#[derive(Debug, Clone, Serialize)]
pub struct ClassSummary {
    /// Traffic class (0 = default/untagged).
    pub class: u8,
    /// Measured packets delivered for this class.
    pub delivered: u64,
    /// Mean end-to-end latency, cycles; 0.0 when the class saw no traffic
    /// (a defined value, never NaN — see [`defined`]).
    pub avg_latency: f64,
    /// 99th-percentile latency, cycles; 0.0 when the class saw no traffic.
    pub p99_latency: f64,
}

/// Zero-sample guard for summary statistics: the underlying estimators
/// report NaN when they hold no samples, but a *summary* of a degenerate
/// run must stay defined — a figure point with zero packets has zero
/// latency, not an undefined one, and the JSON writer serializes NaN as
/// `null`, which breaks downstream aggregation and plotting.
fn defined(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

/// Digest of one open-loop run — one point on a paper figure.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Offered load, packets/cycle/core (what the x-axes of Figs. 2, 8, 9 show).
    pub offered_per_core: f64,
    /// Mean latency of measured packets, cycles (the y-axes).
    pub avg_latency: f64,
    /// 95% confidence half-width on the mean latency (batch means, batches
    /// of 256 packets); `NaN` when fewer than two batches completed.
    pub latency_ci95: f64,
    /// 99th-percentile latency, cycles.
    pub p99_latency: f64,
    /// Mean output-queue wait, cycles.
    pub avg_queue_wait: f64,
    /// Delivered measured packets per cycle per core (accepted throughput).
    pub throughput_per_core: f64,
    /// Measured packets delivered.
    pub delivered: u64,
    /// Drop (NACK) rate per arrival.
    pub drop_rate: f64,
    /// Circulation rate per arrival.
    pub circulation_rate: f64,
    /// Jain fairness index over sender service counts, averaged across
    /// channels that saw traffic; 1.0 (vacuously fair) when no channel saw
    /// any — a defined value, never NaN.
    pub jain_fairness: f64,
    /// Jain index of the *least fair* channel — the number positional
    /// starvation shows up in (hotspot channels dilute out of the average).
    /// 1.0 when no channel saw traffic.
    pub jain_worst: f64,
    /// Jain fairness index over per-class measured delivery counts
    /// (classes `0..=` the highest active class); 1.0 when at most one
    /// class is active (vacuously fair).
    pub class_jain: f64,
    /// Per-class latency/throughput digest. Empty when all traffic is
    /// untagged class 0 (single-tenant runs keep their JSON unchanged);
    /// populated for classes `0..=` the highest active class otherwise.
    pub class_summaries: Vec<ClassSummary>,
    /// Whether the run saturated (a large fraction of measured packets never
    /// finished, a heavy latency tail past 2048 cycles, or any sample past
    /// the recorder's range cap).
    pub saturated: bool,

    // --- reliability digest (zero on fault-free runs) ---
    /// Packets generated but never delivered to a core, counted after the
    /// drain grace period: flits destroyed by faults, corrupt deliveries
    /// credit schemes cannot retransmit, and traffic wedged behind leaked
    /// credits all land here.
    pub lost_packets: u64,
    /// Duplicate arrivals suppressed at homes (each re-ACKed; cores never
    /// see a packet twice).
    pub duplicates: u64,
    /// Retransmissions per ring transmission (NACK- plus timeout-triggered).
    pub retransmit_rate: f64,
    /// Retransmissions triggered specifically by ACK timeouts.
    pub timeout_retransmissions: u64,
    /// Packets abandoned after `max_retries` attempts.
    pub abandoned: u64,
    /// Flow-control credits/reservations permanently destroyed by faults.
    pub credit_leaks: u64,
}

impl RunSummary {
    /// Build a summary from metrics plus run geometry. Service counts are
    /// accepted as anything slice-of-`u64`-shaped (`&[Vec<u64>]`,
    /// `&[&[u64]]`) so callers can pass borrows of live counters.
    pub fn from_metrics<S: AsRef<[u64]>>(
        m: &NetworkMetrics,
        per_channel_service: &[S],
        measure_cycles: Cycle,
        cores: usize,
        offered_per_core: f64,
    ) -> Self {
        let denom = (measure_cycles.max(1) as f64) * cores as f64;
        let throughput = m.delivered_measured as f64 / denom;
        let jains: Vec<f64> = per_channel_service
            .iter()
            .map(AsRef::as_ref)
            .filter(|s| s.iter().any(|&c| c > 0))
            .map(|s| {
                let v: Vec<f64> = s.iter().map(|&c| c as f64).collect();
                jain_index(&v)
            })
            .collect();
        // No channel saw traffic → vacuously fair, matching `jain_index`'s
        // all-zero convention. The old NaN here poisoned fleet-level sums.
        let (jain, jain_worst) = if jains.is_empty() {
            (1.0, 1.0)
        } else {
            let avg = jains.iter().sum::<f64>() / jains.len() as f64;
            let worst = jains.iter().copied().fold(f64::INFINITY, f64::min);
            (avg, worst)
        };
        let top_class = (0..MAX_CLASSES).rev().find(|&c| m.class_delivered[c] > 0);
        let (class_jain, class_summaries) = match top_class {
            // Tagged traffic present: digest every class up to the highest
            // active one (idle classes in between report defined zeros).
            Some(top) if top > 0 => {
                let counts: Vec<f64> = m.class_delivered[..=top]
                    .iter()
                    .map(|&d| d as f64)
                    .collect();
                let summaries = (0..=top)
                    .map(|c| ClassSummary {
                        class: u8::try_from(c).expect("MAX_CLASSES fits in u8"),
                        delivered: m.class_delivered[c],
                        avg_latency: defined(m.class_latency[c].mean()),
                        p99_latency: defined(m.class_latency_rec[c].quantile(0.99)),
                    })
                    .collect();
                (jain_index(&counts), summaries)
            }
            _ => (1.0, Vec::new()),
        };
        let unfinished = m.generated_measured.saturating_sub(m.delivered_measured);
        // Saturation: too many measured packets never finished, a heavy
        // latency tail (> 5 % of deliveries past 2048 cycles — the same
        // threshold the old fixed histogram's overflow bucket encoded), or
        // *any* sample past the recorder's 2^40-cycle cap (a run that slow
        // is broken regardless of how few packets hit it — recorder
        // overflow must never masquerade as a converged figure point).
        let saturated = m.generated_measured > 0
            && (unfinished as f64 > 0.10 * m.generated_measured as f64
                || m.latency_rec.count_ge(2048) > m.delivered_measured / 20
                || m.latency_rec.overflow() > 0);
        Self {
            offered_per_core,
            avg_latency: defined(m.latency.mean()),
            latency_ci95: m.latency_batches.ci95_half_width(),
            p99_latency: defined(m.latency_rec.quantile(0.99)),
            avg_queue_wait: defined(m.queue_wait.mean()),
            throughput_per_core: throughput,
            delivered: m.delivered_measured,
            drop_rate: m.drop_rate(),
            circulation_rate: m.circulation_rate(),
            jain_fairness: jain,
            jain_worst,
            class_jain,
            class_summaries,
            saturated,
            lost_packets: m.generated.saturating_sub(m.delivered),
            duplicates: m.duplicates_suppressed,
            retransmit_rate: m.retransmit_rate(),
            timeout_retransmissions: m.timeout_retransmissions,
            abandoned: m.abandoned,
            credit_leaks: m.credit_leaks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_arrivals_are_zero() {
        let m = NetworkMetrics::new();
        assert!(m.drop_rate().abs() < f64::EPSILON);
        assert!(m.circulation_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn drop_rate_ratio() {
        let mut m = NetworkMetrics::new();
        m.arrivals = 200;
        m.drops = 2;
        assert!((m.drop_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn summary_throughput_and_jain() {
        let mut m = NetworkMetrics::new();
        m.generated_measured = 1000;
        m.delivered_measured = 1000;
        for _ in 0..1000 {
            m.latency.record(20.0);
            m.latency_rec.record(20.0);
        }
        let service = vec![vec![10, 10, 10, 10], vec![0, 0, 0, 0], vec![20, 0, 0, 0]];
        let s = RunSummary::from_metrics(&m, &service, 1000, 4, 0.25);
        assert!((s.throughput_per_core - 0.25).abs() < 1e-12);
        // Average of 1.0 (even channel) and 0.25 (hog channel); idle excluded.
        assert!(
            (s.jain_fairness - 0.625).abs() < 1e-12,
            "idle channel excluded"
        );
        assert!(
            (s.jain_worst - 0.25).abs() < 1e-12,
            "worst channel surfaced"
        );
        assert!(!s.saturated);
        assert!((s.avg_latency - 20.0).abs() < 1e-12);
    }

    #[test]
    fn reliability_digest_mirrors_counters() {
        let mut m = NetworkMetrics::new();
        m.generated = 100;
        m.delivered = 90;
        m.sends = 200;
        m.retransmissions = 6;
        m.timeout_retransmissions = 4;
        m.duplicates_suppressed = 3;
        m.credit_leaks = 7;
        assert!((m.retransmit_rate() - 0.05).abs() < 1e-12);
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.1);
        assert_eq!(s.lost_packets, 10);
        assert_eq!(s.duplicates, 3);
        assert_eq!(s.timeout_retransmissions, 4);
        assert_eq!(s.credit_leaks, 7);
        assert!((s.retransmit_rate - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_packet_summary_is_fully_defined() {
        // The degenerate-statistics contract: a run that delivered nothing
        // reports defined numbers everywhere (no NaN Jain, no 0/0 means),
        // so fleet aggregation and JSON plotting never see `null`.
        let m = NetworkMetrics::new();
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.0);
        assert!(s.avg_latency.abs() < 1e-12);
        assert!(s.p99_latency.abs() < 1e-12);
        assert!(s.avg_queue_wait.abs() < 1e-12);
        assert!((s.jain_fairness - 1.0).abs() < 1e-12, "vacuously fair");
        assert!((s.jain_worst - 1.0).abs() < 1e-12);
        assert!((s.class_jain - 1.0).abs() < 1e-12);
        assert!(s.class_summaries.is_empty());
        assert!(!s.saturated);
    }

    #[test]
    fn untagged_runs_keep_class_summaries_empty() {
        let mut m = NetworkMetrics::new();
        m.generated_measured = 10;
        m.delivered_measured = 10;
        for _ in 0..10 {
            m.record_latency(12.0);
        }
        assert_eq!(m.class_delivered[0], 10, "untagged samples land in class 0");
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.1);
        assert!(
            s.class_summaries.is_empty(),
            "single-class JSON stays compact"
        );
        assert!((s.class_jain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classed_runs_partition_and_digest_per_class() {
        let mut m = NetworkMetrics::new();
        for _ in 0..30 {
            m.record_latency_class(0, 10.0);
        }
        for _ in 0..10 {
            m.record_latency_class(2, 40.0);
        }
        m.generated_measured = 40;
        m.delivered_measured = 40;
        assert_eq!(m.latency.count(), 40, "global estimator sees every class");
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.1);
        assert_eq!(s.class_summaries.len(), 3, "classes 0..=top active class");
        assert_eq!(s.class_summaries[0].delivered, 30);
        assert_eq!(s.class_summaries[1].delivered, 0);
        assert_eq!(s.class_summaries[2].delivered, 10);
        assert!((s.class_summaries[0].avg_latency - 10.0).abs() < 1e-12);
        assert!(
            s.class_summaries[1].avg_latency.abs() < 1e-12,
            "idle class reports defined zeros"
        );
        assert!(s.class_summaries[2].p99_latency >= 40.0);
        assert!((s.class_jain - jain_index(&[30.0, 0.0, 10.0])).abs() < 1e-12);
        assert!(
            (s.avg_latency - 17.5).abs() < 1e-12,
            "global mean is blended"
        );
    }

    #[test]
    fn summary_flags_saturation() {
        let mut m = NetworkMetrics::new();
        m.generated_measured = 1000;
        m.delivered_measured = 500; // half never finished
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.5);
        assert!(s.saturated);
    }

    #[test]
    fn tail_latency_past_2048_is_finite_and_flags_saturation() {
        // The headline bug: with the old fixed histogram, a run with > 5 %
        // of samples past 2048 cycles reported p99 = +inf.
        let mut m = NetworkMetrics::new();
        m.generated_measured = 100;
        m.delivered_measured = 100;
        for _ in 0..90 {
            m.latency.record(50.0);
            m.latency_rec.record(50.0);
        }
        for _ in 0..10 {
            m.latency.record(5000.0);
            m.latency_rec.record(5000.0);
        }
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.5);
        assert!(
            s.p99_latency.is_finite(),
            "p99 must never be clipped to inf"
        );
        assert!(
            s.p99_latency >= 5000.0 && s.p99_latency < 5200.0,
            "p99 {} not within one log bucket of 5000",
            s.p99_latency
        );
        assert!(s.saturated, "a 10 % tail past 2048 cycles is saturation");
    }

    #[test]
    fn recorder_overflow_always_flags_saturation() {
        // A single absurd sample (past the 2^40-cycle cap) must mark the
        // point unconverged even though unfinished == 0 and the tail is
        // otherwise tiny.
        let mut m = NetworkMetrics::new();
        m.generated_measured = 1000;
        m.delivered_measured = 1000;
        for _ in 0..999 {
            m.latency_rec.record(10.0);
        }
        m.latency_rec.record(2.0f64.powi(41));
        let s = RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.5);
        assert!(s.saturated, "recorder overflow must flag saturation");
        assert!(s.p99_latency.is_finite());
    }
}
