//! Phase-profiling span hooks, cfg-twinned on the `obs-trace` feature.
//!
//! `obs-trace` builds forward to [`pnoc_obs::prof`], which accumulates
//! call counts and wall-clock nanoseconds per phase in a thread-local
//! table. Default builds compile [`span`] to a unit-struct constructor the
//! optimizer deletes, so the perf-gated hot loop pays nothing.

#[cfg(feature = "obs-trace")]
#[inline]
pub(crate) fn span(name: &'static str) -> pnoc_obs::prof::SpanGuard {
    pnoc_obs::prof::enter(name)
}

/// Traces-off stand-in for `pnoc_obs::prof::SpanGuard`: zero-sized, no
/// `Drop`, so `let _span = span(...)` vanishes entirely.
#[cfg(not(feature = "obs-trace"))]
pub(crate) struct SpanGuard;

#[cfg(not(feature = "obs-trace"))]
#[allow(clippy::inline_always)] // the whole point: this must vanish
#[inline(always)]
pub(crate) fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}
