//! Checked narrowing conversions for packed simulator fields.
//!
//! Several hot structs ([`crate::packet::Packet`], per-channel counters)
//! pack node/core indices into `u32` to keep cache footprint down, while the
//! rest of the simulator works in `usize`. The `pnoc-verify`
//! `no-silent-truncation` lint bans bare `as u32` narrowing at call sites;
//! this module is the one reviewed place the narrowing happens, and it
//! panics instead of wrapping if a value ever exceeds the packed range.

/// Narrow a `usize` index to a packed `u32` field, panicking on overflow
/// (node/core/buffer indices are bounded by configuration validation at a
/// few thousand, so a failure here is a simulator bug, not a data issue).
#[inline]
pub fn narrow_u32(x: usize) -> u32 {
    u32::try_from(x).expect("value exceeds u32 packed-field range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrows_in_range_values() {
        assert_eq!(narrow_u32(0), 0);
        assert_eq!(narrow_u32(4096), 4096);
        assert_eq!(narrow_u32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn panics_on_overflow_instead_of_wrapping() {
        let r = std::panic::catch_unwind(|| narrow_u32(u32::MAX as usize + 1));
        assert!(r.is_err());
    }
}
