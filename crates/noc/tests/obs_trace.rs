//! Integration tests for the `obs-trace` feature: the event trace must
//! agree with the simulator's own counters, and attaching observability
//! must never change what the simulation computes.
#![cfg(feature = "obs-trace")]

use pnoc_noc::network::Network;
use pnoc_noc::sources::SyntheticSource;
use pnoc_noc::{NetworkConfig, Scheme};
use pnoc_obs::EventKind;
use pnoc_sim::RunPlan;
use pnoc_traffic::pattern::TrafficPattern;

fn source_for(cfg: &NetworkConfig, rate: f64) -> SyntheticSource {
    SyntheticSource::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.seed ^ 0x5EED_0001,
    )
}

fn count(net: &Network, kind: EventKind) -> u64 {
    net.trace()
        .expect("trace attached")
        .iter()
        .filter(|e| e.kind == kind)
        .count() as u64
}

/// With a trace large enough to hold every event, per-kind event counts
/// must equal the corresponding metrics counters exactly.
#[test]
fn event_counts_match_metrics_counters() {
    for scheme in [
        Scheme::TokenChannel,
        Scheme::TokenSlot,
        Scheme::Ghs { setaside: 0 },
        Scheme::Dhs { setaside: 2 },
    ] {
        let cfg = NetworkConfig::small(scheme);
        let mut net = Network::new(cfg).unwrap();
        net.attach_trace(1 << 20);
        let mut src = source_for(&cfg, 0.05);
        net.run_open_loop(&mut src, RunPlan::quick());
        let m = net.metrics();
        assert_eq!(
            net.trace().unwrap().dropped(),
            0,
            "{scheme:?}: trace must be large enough for an exact count check"
        );
        assert_eq!(count(&net, EventKind::Inject), m.generated, "{scheme:?}");
        assert_eq!(
            count(&net, EventKind::Send) + count(&net, EventKind::Retransmit),
            m.sends,
            "{scheme:?}"
        );
        assert_eq!(count(&net, EventKind::Arrival), m.arrivals, "{scheme:?}");
        assert_eq!(count(&net, EventKind::Eject), m.delivered, "{scheme:?}");
        assert!(
            count(&net, EventKind::TokenGrant) > 0,
            "{scheme:?}: arbitration must be visible in the trace"
        );
    }
}

/// Attaching the trace and sampler must not perturb the simulation: the
/// run summary is bit-identical with and without them.
#[test]
fn observation_does_not_feed_back() {
    let cfg = NetworkConfig::small(Scheme::Dhs { setaside: 2 });
    let run = |observed: bool| {
        let mut net = Network::new(cfg).unwrap();
        if observed {
            net.attach_trace(4096);
            net.attach_sampler(8);
        }
        let mut src = source_for(&cfg, 0.08);
        net.run_open_loop(&mut src, RunPlan::quick())
    };
    let plain = serde_json::to_string(&run(false)).unwrap();
    let observed = serde_json::to_string(&run(true)).unwrap();
    assert_eq!(plain, observed, "observation changed the simulation");
}

/// The trace itself is deterministic: two identical runs produce identical
/// event streams and occupancy series.
#[test]
fn trace_and_samples_are_deterministic() {
    let cfg = NetworkConfig::small(Scheme::Ghs { setaside: 0 });
    let run = || {
        let mut net = Network::new(cfg).unwrap();
        net.attach_trace(1 << 16);
        net.attach_sampler(4);
        let mut src = source_for(&cfg, 0.06);
        net.run_open_loop(&mut src, RunPlan::quick());
        (
            net.trace().unwrap().to_csv(),
            net.sampler().unwrap().to_csv(),
        )
    };
    assert_eq!(run(), run());
}

/// Lifecycle sanity on a faulty run: recovery-related events only appear
/// when faults are enabled, and every NACK/timeout is visible.
#[test]
fn fault_events_surface_in_the_trace() {
    let mut cfg = NetworkConfig::small(Scheme::Dhs { setaside: 2 });
    cfg.faults = pnoc_faults::FaultConfig::uniform(5e-4);
    cfg.recovery = pnoc_faults::RecoveryConfig::for_ring(cfg.ring_segments);
    let mut net = Network::new(cfg).unwrap();
    net.attach_trace(1 << 20);
    let mut src = source_for(&cfg, 0.05);
    net.run_open_loop(&mut src, RunPlan::quick());
    let m = net.metrics();
    assert_eq!(count(&net, EventKind::DataLost), m.faults_data_lost);
    assert_eq!(count(&net, EventKind::DataCorrupt), m.faults_data_corrupt);
    assert_eq!(count(&net, EventKind::AckLost), m.faults_acks_lost);
    assert!(
        m.faults_data_lost + m.faults_data_corrupt + m.faults_acks_lost > 0,
        "fault rate too low to exercise the trace"
    );
}
