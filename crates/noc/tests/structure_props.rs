//! Property tests for the simulator's core data structures: the rotating
//! slot ring, the bucket calendar, ring-topology arithmetic, and a
//! model-based check of the output-queue send disciplines.

use pnoc_noc::calendar::Calendar;
use pnoc_noc::config::FairnessPolicy;
use pnoc_noc::outqueue::{OutQueue, SendMode};
use pnoc_noc::packet::{Packet, PacketKind};
use pnoc_noc::slots::SlotRing;
use pnoc_noc::topology::Topology;
use proptest::prelude::*;

fn pkt(id: u64) -> Packet {
    Packet {
        id,
        src_core: 0,
        src_node: 1,
        dst_node: 0,
        kind: PacketKind::Data,
        generated_at: 0,
        enqueued_at: 0,
        sent_at: 0,
        sends: 0,
        measured: false,
        tag: 0,
        class: 0,
    }
}

proptest! {
    /// A payload placed at segment `g` is found at `(g + k) mod R` after `k`
    /// advances, for any ring size and distance.
    #[test]
    fn slot_ring_rotation(segments in 1usize..32, g in 0usize..32, k in 0usize..200) {
        let g = g % segments;
        let mut ring: SlotRing<u64> = SlotRing::new(segments);
        ring.put(g, 77);
        for _ in 0..k {
            ring.advance();
        }
        let expected = (g + k) % segments;
        prop_assert_eq!(ring.at(expected), Some(&77));
        prop_assert_eq!(ring.occupied(), 1);
        prop_assert_eq!(ring.take(expected), Some(77));
        prop_assert!(ring.is_empty());
    }

    /// Every event scheduled within the horizon is drained exactly at its
    /// cycle, independent of interleaving.
    #[test]
    fn calendar_drains_exactly_once(
        horizon in 2usize..32,
        offsets in proptest::collection::vec(0u64..31, 1..64),
    ) {
        let mut cal: Calendar<(u64, u64)> = Calendar::new(horizon);
        let mut pending: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        let mut next_tag = 0u64;
        let total = offsets.len();
        let mut drained = 0usize;
        for now in 0..(total as u64 + horizon as u64 + 2) {
            if let Some(&off) = offsets.get(now as usize) {
                let at = now + off % horizon as u64;
                cal.schedule(at, (at, next_tag));
                pending.entry(at).or_default().push(next_tag);
                next_tag += 1;
            }
            for (at, tag) in cal.drain(now) {
                prop_assert_eq!(at, now, "event fired at wrong cycle");
                let bucket = pending.get_mut(&now).expect("expected bucket");
                let idx = bucket.iter().position(|&t| t == tag).expect("unexpected event");
                bucket.remove(idx);
                drained += 1;
            }
        }
        prop_assert_eq!(drained, total, "events lost in the calendar");
    }

    /// `downstream_distance` and `node_at_distance` are inverse bijections,
    /// and data delays are within `[1, segments]` for every pair.
    #[test]
    fn topology_arithmetic(
        seg_pow in 1u32..4,      // 2..8 segments
        per_seg in 1usize..9,    // 1..8 nodes per segment
    ) {
        let segments = 1usize << seg_pow;
        let nodes = segments * per_seg;
        if nodes < 2 {
            return Ok(());
        }
        let t = Topology::new(nodes, segments);
        for home in 0..nodes {
            let mut seen = vec![false; nodes - 1];
            for i in 0..nodes {
                if i == home {
                    continue;
                }
                let d = t.downstream_distance(home, i);
                prop_assert!(d < nodes - 1);
                prop_assert!(!seen[d], "distance collision");
                seen[d] = true;
                prop_assert_eq!(t.node_at_distance(home, d), i);
                let delay = t.data_delay(i, home);
                prop_assert!(delay >= 1 && delay <= segments as u64);
            }
        }
    }

    /// Model-based OutQueue check: against a simple reference model, the
    /// grant/transmit/ack/nack state machine never loses or duplicates a
    /// packet, in any discipline and any operation order.
    #[test]
    fn outqueue_model_based(
        mode_sel in 0usize..3,
        setaside in 1usize..5,
        ops in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let mode = match mode_sel {
            0 => SendMode::HoldHead,
            1 => SendMode::Setaside(setaside),
            _ => SendMode::Forget,
        };
        let mut q = OutQueue::new(mode);
        let mut next_id = 0u64;
        // Reference model: ids currently queued (order matters) and ids
        // in-flight awaiting a handshake.
        let mut queued: Vec<u64> = Vec::new();
        let mut inflight: Vec<u64> = Vec::new();
        let mut completed: Vec<u64> = Vec::new();
        let mut now = 0u64;

        for op in ops {
            now += 1;
            match op {
                0 => {
                    q.push(pkt(next_id));
                    queued.push(next_id);
                    next_id += 1;
                }
                1 => {
                    // grant+transmit if allowed
                    if q.eligible(now, FairnessPolicy::None) {
                        q.take_grant(now, FairnessPolicy::None);
                        let sent = q.transmit(now).expect("grant implies transmit");
                        match mode {
                            SendMode::HoldHead => {
                                prop_assert_eq!(sent.id, queued[0]);
                                inflight.push(sent.id);
                            }
                            SendMode::Setaside(_) => {
                                prop_assert_eq!(sent.id, queued[0]);
                                queued.remove(0);
                                inflight.push(sent.id);
                            }
                            SendMode::Forget => {
                                prop_assert_eq!(sent.id, queued.remove(0));
                                completed.push(sent.id);
                            }
                        }
                    }
                }
                2 => {
                    // ack the oldest in-flight
                    if let Some(&id) = inflight.first() {
                        let acked = q.ack(id);
                        prop_assert!(acked.is_some());
                        inflight.remove(0);
                        if mode == SendMode::HoldHead {
                            prop_assert_eq!(queued.remove(0), id);
                        }
                        completed.push(id);
                    } else {
                        prop_assert!(q.ack(9999).is_none());
                    }
                }
                _ => {
                    // nack the oldest in-flight: it returns to the head
                    if let Some(&id) = inflight.first() {
                        prop_assert!(q.nack(id));
                        inflight.remove(0);
                        if mode != SendMode::HoldHead {
                            queued.insert(0, id);
                        }
                        // HoldHead: stays at head already.
                    } else {
                        prop_assert!(!q.nack(9999));
                    }
                }
            }
            // Invariants after every operation.
            prop_assert_eq!(q.backlog(), queued.len(), "backlog diverged");
            prop_assert_eq!(
                q.setaside_len(),
                if matches!(mode, SendMode::Setaside(_)) { inflight.len() } else { 0 }
            );
        }
        // Nothing vanished: every id is queued, in flight, or completed.
        // (In HoldHead mode the in-flight packet is still *in* the queue.)
        let accounted = match mode {
            SendMode::HoldHead => queued.len() + completed.len(),
            _ => queued.len() + inflight.len() + completed.len(),
        };
        prop_assert_eq!(accounted as u64, next_id, "packets lost by the model");
    }
}
