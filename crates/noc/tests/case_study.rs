//! The paper's motivating case study (§II-D, Figs. 2(a) and 4).
//!
//! Two senders S1 and S2 want to reach home node D. S1 is closer and greedy:
//! it exhausts all credits in the token-channel token. S2 must then wait for
//! the token to travel home, get reimbursed, and come around again (17 cycles
//! in the paper's 8-cycle ring) — whereas under handshake the token carries
//! no credits, so S2 waits only for the token relay (8 cycles in Fig. 4).

use pnoc_noc::channel::Channel;
use pnoc_noc::metrics::NetworkMetrics;
use pnoc_noc::packet::{Packet, PacketKind};
use pnoc_noc::{NetworkConfig, Scheme};

fn pkt(id: u64, src: usize) -> Packet {
    Packet {
        id,
        src_core: (src * 4) as u32,
        src_node: src as u32,
        dst_node: 0,
        kind: PacketKind::Data,
        generated_at: 0,
        enqueued_at: 0,
        sent_at: 0,
        sends: 0,
        measured: true,
        tag: 0,
        class: 0,
    }
}

/// Run one channel until S2's first transmission; return that cycle.
fn s2_first_send(scheme: Scheme) -> u64 {
    let cfg = NetworkConfig::paper_default(scheme); // 64 nodes, R=8, B=8
    let mut ch = Channel::new(0, &cfg);
    let mut m = NetworkMetrics::new();
    let mut deliveries = Vec::new();
    let s1 = 8usize; // distance 7 from home
    let s2 = 24usize; // distance 23, downstream of S1
                      // S1 floods (more than the 8 credits the token carries), S2 has one.
    for i in 0..12 {
        ch.enqueue(pkt(i, s1));
    }
    ch.enqueue(pkt(100, s2));
    for now in 0..400u64 {
        ch.phase_advance();
        ch.phase_arrival(now, &mut m);
        ch.phase_acks(now, &mut m);
        ch.phase_transmit(now, &mut m);
        ch.phase_tokens(now, &mut m);
        ch.phase_eject(now, &mut m, &mut deliveries);
        if let Some(d) = deliveries.iter().find(|d| d.pkt.id == 100) {
            return d.pkt.sent_at;
        }
    }
    panic!("{scheme:?}: S2 never transmitted");
}

#[test]
fn greedy_neighbor_delays_s2_far_more_under_token_channel() {
    let tc = s2_first_send(Scheme::TokenChannel);
    let ghs = s2_first_send(Scheme::Ghs { setaside: 8 });
    // Token channel: S1 drains the token's credits; S2 waits through a
    // reimbursement round trip. GHS: the token is credit-less, so S2 gets it
    // as soon as S1's burst ends — substantially sooner.
    assert!(
        tc >= ghs + 6,
        "token channel should delay S2 by ~a round trip more (TC {tc} vs GHS {ghs})"
    );
    // Sanity: GHS's wait is in the ballpark of a burst + token relay, not a
    // multi-round-trip stall.
    assert!(ghs <= 20, "GHS S2 wait should be short, got {ghs}");
}

#[test]
fn dhs_serves_s2_even_sooner_than_ghs() {
    // Distributed tokens arrive every cycle, so S2 need not wait for S1 to
    // finish its burst at all.
    let ghs = s2_first_send(Scheme::Ghs { setaside: 8 });
    let dhs = s2_first_send(Scheme::Dhs { setaside: 8 });
    assert!(
        dhs <= ghs,
        "DHS should serve S2 at least as fast as GHS ({dhs} vs {ghs})"
    );
}

#[test]
fn s2_wait_is_credit_independent_under_handshake() {
    // The §II-D problem scales with credits for token channel but not for
    // handshake schemes.
    let wait_with = |scheme: Scheme, credits: usize, s1_backlog: u64| {
        let mut cfg = NetworkConfig::paper_default(scheme);
        cfg.input_buffer = credits;
        let mut ch = Channel::new(0, &cfg);
        let mut m = NetworkMetrics::new();
        let mut deliveries = Vec::new();
        for i in 0..s1_backlog {
            ch.enqueue(pkt(i, 8));
        }
        ch.enqueue(pkt(100, 24));
        for now in 0..600u64 {
            ch.phase_advance();
            ch.phase_arrival(now, &mut m);
            ch.phase_acks(now, &mut m);
            ch.phase_transmit(now, &mut m);
            ch.phase_tokens(now, &mut m);
            ch.phase_eject(now, &mut m, &mut deliveries);
            if let Some(d) = deliveries.iter().find(|d| d.pkt.id == 100) {
                return d.pkt.sent_at;
            }
        }
        panic!("S2 never transmitted");
    };
    // Token channel: S1's greedy burst is capped by the credit count, so
    // more credits = a longer monopoly before S2's turn (S1 backlog tracks
    // the allowance so a single full burst happens).
    let tc4 = wait_with(Scheme::TokenChannel, 4, 4);
    let tc16 = wait_with(Scheme::TokenChannel, 16, 16);
    assert!(
        tc16 > tc4,
        "bigger credit burst delays S2 more ({tc16} vs {tc4})"
    );
    // DHS with a *fixed* S1 backlog: varying the buffer/credit count alone
    // must not move S2's wait at all — tokens carry no credit information.
    let d4 = wait_with(Scheme::Dhs { setaside: 8 }, 4, 8);
    let d16 = wait_with(Scheme::Dhs { setaside: 8 }, 16, 8);
    assert_eq!(
        d4, d16,
        "handshake S2 wait must be credit-independent ({d16} vs {d4})"
    );
}
