//! Failure-injection and invariant tests for every scheme: a home node whose
//! ejection port stalls arbitrarily must never corrupt flow-control
//! accounting — credit schemes never overflow the buffer, handshake schemes
//! drop-and-retransmit, circulation recirculates, and nothing is ever lost.

use pnoc_noc::channel::Channel;
use pnoc_noc::metrics::NetworkMetrics;
use pnoc_noc::packet::{Packet, PacketKind};
use pnoc_noc::{NetworkConfig, Scheme};
use pnoc_sim::SimRng;
use proptest::prelude::*;

fn pkt(id: u64, src: usize, dst: usize) -> Packet {
    Packet {
        id,
        src_core: (src * 2) as u32,
        src_node: src as u32,
        dst_node: dst as u32,
        kind: PacketKind::Data,
        generated_at: 0,
        enqueued_at: 0,
        sent_at: 0,
        sends: 0,
        measured: true,
        tag: 0,
        class: 0,
    }
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::TokenChannel),
        Just(Scheme::TokenSlot),
        (0usize..=3).prop_map(|s| Scheme::Ghs { setaside: s }),
        (0usize..=3).prop_map(|s| Scheme::Dhs { setaside: s }),
        Just(Scheme::DhsCirculation),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Randomly stall the home's ejection port while several senders flood
    /// one channel. Every packet must still be delivered exactly once, the
    /// buffer must never overflow, and scheme-specific accounting must hold.
    #[test]
    fn ejection_stalls_never_corrupt_flow_control(
        scheme in arb_scheme(),
        buffer in 2usize..=6,
        stall_p in 0.0f64..0.9,
        seed in 0u64..10_000,
    ) {
        let mut cfg = NetworkConfig::small(scheme); // 16 nodes, 4 segments
        cfg.input_buffer = buffer;
        let mut ch = Channel::new(0, &cfg);
        let mut m = NetworkMetrics::new();
        let mut deliveries = Vec::new();
        let mut rng = SimRng::seed_from(seed);

        // 3 senders × 10 packets into channel 0.
        let mut id = 0;
        for src in [3usize, 8, 14] {
            for _ in 0..10 {
                ch.enqueue(pkt(id, src, 0));
                id += 1;
            }
        }

        let mut now = 0u64;
        let horizon = 60_000u64;
        while now < horizon && !(ch.is_drained() && deliveries.len() == 30) {
            ch.set_ejection_per_cycle(if rng.chance(stall_p) { 0 } else { 1 });
            ch.phase_advance();
            ch.phase_arrival(now, &mut m);
            ch.phase_acks(now, &mut m);
            ch.phase_transmit(now, &mut m);
            ch.phase_tokens(now, &mut m);
            ch.phase_eject(now, &mut m, &mut deliveries);
            ch.check_invariants();
            prop_assert!(
                ch.buffer_occupancy() <= buffer,
                "buffer overflow under stall"
            );
            now += 1;
        }
        prop_assert_eq!(deliveries.len(), 30, "{:?} lost packets", scheme);
        prop_assert!(ch.is_drained(), "{:?} failed to drain", scheme);

        // No duplicates.
        let mut ids: Vec<u64> = deliveries.iter().map(|d| d.pkt.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), 30, "duplicate deliveries");

        match scheme {
            Scheme::TokenChannel | Scheme::TokenSlot => {
                prop_assert_eq!(m.drops, 0, "credit schemes never drop");
                prop_assert_eq!(m.circulations, 0);
            }
            Scheme::Ghs { .. } | Scheme::Dhs { .. } => {
                prop_assert_eq!(m.drops, m.retransmissions, "every drop retried");
                prop_assert_eq!(m.circulations, 0);
            }
            Scheme::DhsCirculation => {
                prop_assert_eq!(m.drops, 0, "circulation never drops");
            }
        }
        // Arrivals = deliveries + drops + circulations (each arrival either
        // enters the buffer, is dropped, or takes another loop).
        prop_assert_eq!(
            m.arrivals,
            m.delivered + m.drops + m.circulations,
            "arrival accounting broken"
        );
    }

    /// Config serde round-trip: any valid configuration survives JSON.
    #[test]
    fn config_serde_round_trip(scheme in arb_scheme(), buffer in 1usize..32) {
        let mut cfg = NetworkConfig::paper_default(scheme);
        cfg.input_buffer = buffer;
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: NetworkConfig = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(cfg, back);
    }
}
