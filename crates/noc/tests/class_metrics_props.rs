//! Property tests for the per-class metrics views: the per-class latency
//! recorders are an exact *partition* of the global recorder (bin-for-bin,
//! not approximately), and merging recorders commutes with splitting
//! traffic into classes — the algebra the fleet's streaming aggregation
//! and the per-class figure columns both lean on.

use pnoc_noc::metrics::NetworkMetrics;
use pnoc_noc::MAX_CLASSES;
use pnoc_obs::LatencyRecorder;
use proptest::prelude::*;

/// Record a tagged sample stream into a fresh metrics block.
fn record_all(samples: &[(u8, u32)]) -> NetworkMetrics {
    let mut m = NetworkMetrics::new();
    for &(class, lat) in samples {
        m.record_latency_class(class % MAX_CLASSES as u8, f64::from(lat));
    }
    m
}

proptest! {
    /// The per-class recorders partition the global recorder: merging the
    /// class views back together reproduces the global histogram exactly,
    /// and the per-class delivered/mean tallies partition the global ones.
    #[test]
    fn class_recorders_partition_the_global_recorder(
        samples in proptest::collection::vec((0u8..MAX_CLASSES as u8, 0u32..2_000_000), 0..300),
    ) {
        let m = record_all(&samples);

        let mut rebuilt = LatencyRecorder::cycles();
        for rec in &m.class_latency_rec {
            rebuilt.merge(rec);
        }
        prop_assert_eq!(rebuilt.to_sparse(), m.latency_rec.to_sparse());

        let delivered: u64 = m.class_delivered.iter().sum();
        prop_assert_eq!(delivered, m.latency.count());
        let class_count: u64 = m.class_latency.iter().map(|r| r.count()).sum();
        prop_assert_eq!(class_count, m.latency.count());
        // Sample totals agree too, so the class means are a weighted
        // decomposition of the global mean.
        let class_sum: f64 = m
            .class_latency
            .iter()
            .filter(|r| r.count() > 0)
            .map(|r| r.mean() * r.count() as f64)
            .sum();
        let global_sum = if m.latency.count() == 0 {
            0.0
        } else {
            m.latency.mean() * m.latency.count() as f64
        };
        prop_assert!((class_sum - global_sum).abs() < 1e-6 * class_sum.abs().max(1.0));
    }

    /// Merging commutes with class splitting: fold two tagged streams into
    /// separate metrics blocks, then either (a) merge the global recorders
    /// or (b) merge per class and then across classes — identical bins.
    #[test]
    fn merge_commutes_with_class_splitting(
        a in proptest::collection::vec((0u8..MAX_CLASSES as u8, 0u32..2_000_000), 0..200),
        b in proptest::collection::vec((0u8..MAX_CLASSES as u8, 0u32..2_000_000), 0..200),
    ) {
        let ma = record_all(&a);
        let mb = record_all(&b);

        // (a) merge the globals.
        let mut globals = LatencyRecorder::cycles();
        globals.merge(&ma.latency_rec);
        globals.merge(&mb.latency_rec);

        // (b) merge class-wise, then across classes.
        let mut class_wise = LatencyRecorder::cycles();
        for c in 0..MAX_CLASSES {
            let mut per_class = LatencyRecorder::cycles();
            per_class.merge(&ma.class_latency_rec[c]);
            per_class.merge(&mb.class_latency_rec[c]);
            class_wise.merge(&per_class);
        }
        prop_assert_eq!(class_wise.to_sparse(), globals.to_sparse());

        // Delivered counts split the same way.
        for c in 0..MAX_CLASSES {
            prop_assert_eq!(
                ma.class_delivered[c] + mb.class_delivered[c],
                ma.class_latency_rec[c].total() + mb.class_latency_rec[c].total()
            );
        }
    }

    /// Untagged recording is exactly class-0 recording: the legacy
    /// `record_latency` entry point and an explicit class-0 stream are
    /// indistinguishable, globally and per class.
    #[test]
    fn untagged_recording_is_class_zero(
        lats in proptest::collection::vec(0u32..2_000_000, 0..200),
    ) {
        let mut legacy = NetworkMetrics::new();
        let mut tagged = NetworkMetrics::new();
        for &lat in &lats {
            legacy.record_latency(f64::from(lat));
            tagged.record_latency_class(0, f64::from(lat));
        }
        prop_assert_eq!(legacy.latency_rec.to_sparse(), tagged.latency_rec.to_sparse());
        prop_assert_eq!(legacy.class_delivered, tagged.class_delivered);
        prop_assert_eq!(
            legacy.class_latency_rec[0].to_sparse(),
            tagged.class_latency_rec[0].to_sparse()
        );
        for c in 1..MAX_CLASSES {
            prop_assert_eq!(legacy.class_latency_rec[c].total(), 0);
        }
    }
}
