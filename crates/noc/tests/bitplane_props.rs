//! Property tests for the packed predicate bit-planes: every word-scan
//! operation is checked against a naive `Vec<bool>` model, and the
//! [`pnoc_noc::schemes::Planes`] mirrors are checked against their scalar
//! queue predicates across randomized operation sequences — the same
//! "planes are exact, never approximations" contract the runtime
//! invariant auditor samples, here explored over arbitrary histories.

use pnoc_noc::config::FairnessPolicy;
use pnoc_noc::outqueue::{OutQueue, SendMode};
use pnoc_noc::packet::{Packet, PacketKind};
use pnoc_noc::schemes::{BitPlane, Planes};
use proptest::prelude::*;

fn pkt(id: u64) -> Packet {
    Packet {
        id,
        src_core: 0,
        src_node: 1,
        dst_node: 0,
        kind: PacketKind::Data,
        generated_at: 0,
        enqueued_at: 0,
        sent_at: 0,
        sends: 0,
        measured: false,
        tag: 0,
        class: 0,
    }
}

/// First set index of the model within `[lo, hi)`.
fn model_first_in(model: &[bool], lo: usize, hi: usize) -> Option<usize> {
    (lo..hi.min(model.len())).find(|&d| model[d])
}

proptest! {
    /// Set/clear/get/count/first-set agree with a `Vec<bool>` model after
    /// any operation sequence, across word-boundary sizes.
    #[test]
    fn bitplane_matches_bool_model(
        len in 1usize..200,
        ops in proptest::collection::vec((0u8..2, 0usize..200, 0usize..201, 0usize..201), 1..300),
    ) {
        let mut plane = BitPlane::new(len);
        let mut model = vec![false; len];
        for (op, d, lo, hi) in ops {
            let d = d % len;
            match op {
                0 => {
                    plane.set(d, true);
                    model[d] = true;
                }
                _ => {
                    plane.set(d, false);
                    model[d] = false;
                }
            }
            // Point probes and aggregates after every mutation.
            prop_assert_eq!(plane.get(d), model[d]);
            prop_assert_eq!(plane.count(), model.iter().filter(|&&b| b).count());
            prop_assert_eq!(plane.any(), model.iter().any(|&b| b));
            // Windowed first-set with an arbitrary (possibly empty) window.
            let (lo, hi) = (lo % (len + 1), hi % (len + 1));
            prop_assert_eq!(
                plane.first_in(lo, hi),
                model_first_in(&model, lo, hi),
                "first_in([{}, {})) diverged", lo, hi
            );
        }
        // Full ascending scan at the end.
        let scanned: Vec<usize> = plane.iter().collect();
        let expected: Vec<usize> =
            (0..len).filter(|&d| model[d]).collect();
        prop_assert_eq!(scanned, expected, "iter() order or content diverged");
        plane.clear();
        prop_assert!(!plane.any());
        prop_assert_eq!(plane.iter().count(), 0);
    }

    /// The intersection iterator equals the model intersection, ascending.
    #[test]
    fn bitplane_intersection_matches_model(
        len in 1usize..200,
        a_bits in proptest::collection::vec(0usize..200, 0..64),
        b_bits in proptest::collection::vec(0usize..200, 0..64),
    ) {
        let mut a = BitPlane::new(len);
        let mut b = BitPlane::new(len);
        let mut ma = vec![false; len];
        let mut mb = vec![false; len];
        for d in a_bits {
            a.set(d % len, true);
            ma[d % len] = true;
        }
        for d in b_bits {
            b.set(d % len, true);
            mb[d % len] = true;
        }
        let got: Vec<usize> = a.iter_and(&b).collect();
        let expected: Vec<usize> =
            (0..len).filter(|&d| ma[d] && mb[d]).collect();
        prop_assert_eq!(got, expected);
    }

    /// After any randomized queue history (push / grant / transmit / ack /
    /// nack) with a refresh after each mutation — the call discipline the
    /// channel phases follow — every plane bit equals its scalar predicate
    /// for every distance. This is the exactness contract the arbiter
    /// word-scans rely on: a missing bit would silently skip an eligible
    /// sender and change arbitration.
    #[test]
    fn planes_mirror_scalar_predicates_after_random_phases(
        mode_sel in 0usize..3,
        setaside in 1usize..5,
        queues in 1usize..8,
        ops in proptest::collection::vec((0usize..8, 0u8..4), 1..250),
    ) {
        let mode = match mode_sel {
            0 => SendMode::HoldHead,
            1 => SendMode::Setaside(setaside),
            _ => SendMode::Forget,
        };
        let mut senders: Vec<OutQueue<Packet>> =
            (0..queues).map(|_| OutQueue::new(mode)).collect();
        let mut planes = Planes::new(queues);
        let mut inflight: Vec<Vec<u64>> = vec![Vec::new(); queues];
        let mut next_id = 0u64;
        let mut now = 0u64;

        for (d, op) in ops {
            now += 1;
            let d = d % queues;
            let q = &mut senders[d];
            match op {
                0 => {
                    q.push(pkt(next_id));
                    next_id += 1;
                }
                1 => {
                    if q.eligible(now, FairnessPolicy::None) {
                        q.take_grant(now, FairnessPolicy::None);
                        let sent = q.transmit(now).expect("grant implies transmit");
                        if mode != SendMode::Forget {
                            inflight[d].push(sent.id);
                        }
                    }
                }
                2 => {
                    if let Some(&id) = inflight[d].first() {
                        prop_assert!(q.ack(id).is_some());
                        inflight[d].remove(0);
                    }
                }
                _ => {
                    if let Some(&id) = inflight[d].first() {
                        prop_assert!(q.nack(id));
                        inflight[d].remove(0);
                    }
                }
            }
            planes.refresh(d, &senders[d]);
            // Every plane bit mirrors its scalar predicate, at every
            // distance — not just the one touched.
            for (i, q) in senders.iter().enumerate() {
                prop_assert_eq!(planes.sendable.get(i), q.sendable() > 0, "sendable[{}]", i);
                prop_assert_eq!(planes.granted.get(i), q.granted() > 0, "granted[{}]", i);
                prop_assert_eq!(planes.backlogged.get(i), q.backlog() > 0, "backlogged[{}]", i);
                prop_assert_eq!(
                    planes.unresolved.get(i),
                    q.unresolved_len() > 0,
                    "unresolved[{}]", i
                );
            }
        }
    }
}
