//! Fairness vs load: multi-tenant mixes (elephant/mice, bursty adversary,
//! hotspot tenant) through every paper scheme, with and without the
//! token-bucket admission stage.
//!
//! Shapes to reproduce: without admission, the aggressive tenant (the
//! elephants, the burster, the hotspot flow) monopolizes grants as load
//! rises and per-class Jain fairness decays; with admission armed, grant
//! credits are rationed per class, so fairness holds near 1.0 and the
//! quiet class's p99 stops tracking the aggressor's backlog.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let groups = pnoc_bench::figures::fairness_vs_load(fid);
    for (mix, curves) in &groups {
        let rates: Vec<f64> = curves[0].points.iter().map(|(r, _)| *r).collect();
        let mut header = vec!["scheme".to_string()];
        header.extend(rates.iter().map(|r| format!("{r}")));
        let mut t = Table::new(header);
        for c in curves {
            let jains: Vec<f64> = c.points.iter().map(|(_, s)| s.class_jain).collect();
            t.row_f64(&c.label, &jains, 3);
        }
        println!("Fairness ({mix}) — per-class Jain index vs load (pkt/cycle/core)");
        println!("{}", t.render());
        // Per-class tail latency at the highest unsaturated point of each
        // curve: the quiet class's p99 is where admission shows up.
        for c in curves {
            let Some((rate, s)) = c
                .points
                .iter()
                .rev()
                .find(|(_, s)| !s.saturated && s.delivered > 0)
            else {
                continue;
            };
            let classes: Vec<String> = s
                .class_summaries
                .iter()
                .map(|cs| format!("c{} p99 {:.0}", cs.class, cs.p99_latency))
                .collect();
            println!(
                "  {:<24} @{rate:.2}  jain {:.3}  [{}]",
                c.label,
                s.class_jain,
                classes.join(", ")
            );
        }
        println!();
    }
    pnoc_bench::export::maybe_export("fairness", &groups);
    if let Some(dir) = pnoc_bench::plot::svg_dir_from_args() {
        std::fs::create_dir_all(&dir).expect("create svg dir");
        for (mix, curves) in &groups {
            let spec = pnoc_bench::PlotSpec::jain(format!("Fairness vs load — {mix} tenant mix"));
            let path = dir.join(format!("fairness_{mix}.svg"));
            std::fs::write(&path, pnoc_bench::render_jain_svg(&spec, curves)).expect("write svg");
            println!("wrote {}", path.display());
        }
    }
}
