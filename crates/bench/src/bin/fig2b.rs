//! Fig. 2(b): token slot latency vs load with credits ∈ {4, 8, 16, 32}, UR.
//!
//! Shape to reproduce: saturation bandwidth scales with the credit count —
//! credit-based flow control coupled with token arbitration needs buffers
//! sized to the credit round-trip to perform.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let curves = pnoc_bench::figures::fig2b(fid);
    let rates: Vec<f64> = curves[0].points.iter().map(|(r, _)| *r).collect();
    let mut header = vec!["credits".to_string()];
    header.extend(rates.iter().map(|r| format!("{r}")));
    let mut t = Table::new(header);
    for c in &curves {
        t.row_f64(&c.label, &c.latencies(), 1);
    }
    println!("Fig. 2(b) — Token Slot, Uniform Random, latency (cycles) vs load (pkt/cycle/core)");
    println!("{}", t.render());
    println!("saturation bandwidth per curve:");
    for c in &curves {
        println!("  {:<10} {:.3}", c.label, c.saturation_rate());
    }
    pnoc_bench::export::maybe_export("fig2b", &curves);
    if let Some(dir) = pnoc_bench::plot::svg_dir_from_args() {
        let spec = pnoc_bench::PlotSpec::latency("Fig. 2(b) — Token Slot credit study (UR)");
        let charts = vec![("fig2b".to_string(), spec, curves)];
        for p in pnoc_bench::plot::write_charts(&dir, &charts).expect("write svg") {
            println!("wrote {}", p.display());
        }
    }
}
