//! Fig. 12: power and energy analysis.
//!
//! (a) total power breakdown per scheme: laser + ring heating dominate;
//! global-arbitration schemes burn more laser power (relayed 2-loop token;
//! token channel also carries credit bits); token slot is cheapest; the
//! handshake waveguide's overhead is negligible.
//! (b) energy per delivered packet: all schemes similar; circulation adds
//! essentially nothing thanks to nanophotonics' passive writing.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let rows = pnoc_bench::figures::fig12(fid);
    pnoc_bench::export::maybe_export("fig12", &rows);

    println!("Fig. 12(a) — total power breakdown (watts)");
    let mut t = Table::new([
        "scheme", "Laser", "Heating", "E/O", "O/E", "Router", "Total",
    ]);
    for r in &rows {
        let b = &r.breakdown;
        t.row_f64(
            &r.label,
            &[
                b.laser_w,
                b.heating_w,
                b.eo_w,
                b.oe_w,
                b.router_w,
                b.total_w(),
            ],
            2,
        );
    }
    println!("{}", t.render());

    println!("Fig. 12(b) — energy per packet (nJ)");
    let mut t = Table::new(["scheme", "nJ/packet"]);
    for r in &rows {
        t.row_f64(&r.label, &[r.energy_per_packet_j * 1e9], 2);
    }
    println!("{}", t.render());

    let static_min = rows
        .iter()
        .map(|r| r.breakdown.static_fraction())
        .fold(f64::INFINITY, f64::min);
    println!(
        "minimum static (laser+heating) share across schemes: {:.0}%",
        static_min * 100.0
    );
}
