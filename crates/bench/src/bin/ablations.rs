//! Ablation studies beyond the paper's figures (DESIGN.md §6):
//!
//! 1. **Ring size** — the paper argues credit-based flow control degrades as
//!    the ring's round trip grows; sweep network size with proportionate
//!    segment counts and compare token slot vs DHS w/ setaside.
//! 2. **Ejection bandwidth** — the home's drain rate bounds the credit loop;
//!    check its effect on both flow-control families.
//! 3. **Fairness** — with setaside/circulation, nodes near the home can
//!    starve downstream nodes; measure Jain's index with and without the
//!    sit-out policy (§III-D).

use pnoc_bench::figures::PAPER_SETASIDE;
use pnoc_bench::{Fidelity, Table};
use pnoc_noc::network::run_synthetic_point;
use pnoc_noc::{FairnessPolicy, NetworkConfig, Scheme};
use pnoc_sim::run_parallel;
use pnoc_traffic::pattern::TrafficPattern;

fn main() {
    let fid = Fidelity::from_args();
    let plan = fid.plan();
    let dhs = Scheme::Dhs {
        setaside: PAPER_SETASIDE,
    };

    // 1. Ring-size scaling at a fixed offered load.
    println!("Ablation 1 — ring size (round-trip time) scaling, UR @ 0.09");
    let sizes = [(32usize, 4usize), (64, 8), (128, 16)];
    let mut t = Table::new(["scheme", "N=32,R=4", "N=64,R=8", "N=128,R=16"]);
    for scheme in [Scheme::TokenSlot, dhs] {
        let lat = run_parallel(&sizes, |_, &(nodes, segments)| {
            let mut cfg = NetworkConfig::paper_default(scheme);
            cfg.nodes = nodes;
            cfg.ring_segments = segments;
            let s = run_synthetic_point(cfg, TrafficPattern::UniformRandom, 0.09, plan);
            if s.saturated {
                f64::INFINITY
            } else {
                s.avg_latency
            }
        });
        t.row_f64(&scheme.label(), &lat, 1);
    }
    println!("{}", t.render());

    // 2. Ejection bandwidth.
    println!("Ablation 2 — home ejection bandwidth, UR @ 0.13");
    let mut t = Table::new(["scheme", "eject=1", "eject=2"]);
    for scheme in [Scheme::TokenSlot, dhs] {
        let widths = [1usize, 2];
        let lat = run_parallel(&widths, |_, &e| {
            let mut cfg = NetworkConfig::paper_default(scheme);
            cfg.ejection_per_cycle = e;
            let s = run_synthetic_point(cfg, TrafficPattern::UniformRandom, 0.13, plan);
            if s.saturated {
                f64::INFINITY
            } else {
                s.avg_latency
            }
        });
        t.row_f64(&scheme.label(), &lat, 1);
    }
    println!("{}", t.render());

    // 3. Fairness policy on a contended (hotspot) channel.
    println!("Ablation 3 — sit-out fairness, DHS w/ Circulation, hotspot(30% → node 0) @ 0.06");
    let policies = [
        ("none", FairnessPolicy::None),
        (
            "sit-out(1,16)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 16,
            },
        ),
        (
            "sit-out(1,32)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 32,
            },
        ),
        (
            "sit-out(1,48)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 48,
            },
        ),
    ];
    let mut t = Table::new([
        "policy",
        "Jain worst",
        "Jain avg",
        "avg latency",
        "throughput",
    ]);
    let rows = run_parallel(&policies, |_, &(_, policy)| {
        let mut cfg = NetworkConfig::paper_default(Scheme::DhsCirculation);
        cfg.fairness = policy;
        run_synthetic_point(
            cfg,
            TrafficPattern::Hotspot {
                target: 0,
                fraction: 0.30,
            },
            0.06,
            plan,
        )
    });
    for ((name, _), s) in policies.iter().zip(rows) {
        t.row_f64(
            name,
            &[
                s.jain_worst,
                s.jain_fairness,
                s.avg_latency,
                s.throughput_per_core,
            ],
            3,
        );
    }
    println!("{}", t.render());
}
