//! Long-running sweep service: NDJSON requests on stdin, streaming NDJSON
//! results on stdout.
//!
//! ```text
//! serve [--threads N]
//! ```
//!
//! One JSON object per input line:
//!
//! * `{"id": "r1", "sweep": { …SweepSpec… }, "ckpt": "path"?}` — run (or
//!   resume, with `ckpt`) a sweep. Emits `{"id":"r1","cell":{…}}` as each
//!   (scheme, pattern, rate) cell completes, then a final
//!   `{"id":"r1","done":true,…}` line.
//! * `{"set": {"ckpt_every": 16, "verbose": true}}` — hot-swap the
//!   operational knobs. Published through an epoch-stamped snapshot
//!   ([`pnoc_fleet::EpochSnapshot`]): readers (including the per-cell
//!   callback of a sweep already in flight) revalidate with one atomic load
//!   and only clone the new config when the epoch moved. Only operational
//!   knobs are swappable — anything affecting results is pinned inside the
//!   sweep's spec so a request's output never depends on when a `set`
//!   arrived relative to its jobs.
//! * `{"shutdown": true}` — drain and exit (EOF does the same).
//!
//! Malformed lines produce an `{"error": …}` line; the service keeps going.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use pnoc_fleet::{run_sweep, EpochSnapshot, Fleet, SnapshotReader, SweepOptions, SweepSpec};
use serde_json::Value;

/// Hot-swappable operational knobs (never result-affecting).
#[derive(Debug, Clone, Copy)]
struct Knobs {
    /// Checkpoint cadence for sweeps that request a journal.
    ckpt_every: u64,
    /// Echo per-cell progress to stderr as well.
    verbose: bool,
}

impl Default for Knobs {
    fn default() -> Self {
        Self {
            ckpt_every: 16,
            verbose: false,
        }
    }
}

/// Write one NDJSON line and flush (stdout is block-buffered on pipes).
fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn emit_error(context: &str, detail: &str) {
    let msg = serde_json::to_string(&format!("{context}: {detail}")).expect("string serializes");
    emit(&format!("{{\"error\":{msg}}}"));
}

/// Look up a key in a JSON object `Value`; `None` for non-objects.
fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn main() {
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
    let fleet = Fleet::with_default_threads();
    let knobs = Arc::new(EpochSnapshot::new(Knobs::default()));
    eprintln!(
        "serve: ready on {} worker(s); one JSON request per line",
        fleet.threads()
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                emit_error("stdin", &e.to_string());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(e) => {
                emit_error("parse", &e.to_string());
                continue;
            }
        };

        if matches!(field(&request, "shutdown"), Some(Value::Bool(true))) {
            emit("{\"bye\":true}");
            return;
        }
        if let Some(settings) = field(&request, "set") {
            apply_set(&knobs, settings);
            continue;
        }
        if field(&request, "sweep").is_some() {
            handle_sweep(&fleet, &knobs, &request);
            continue;
        }
        emit_error("request", "expected one of: sweep, set, shutdown");
    }
}

/// Merge a `set` request into the current knobs and publish a new epoch.
fn apply_set(knobs: &Arc<EpochSnapshot<Knobs>>, settings: &Value) {
    let mut next = *knobs.load();
    if let Some(Value::U64(n)) = field(settings, "ckpt_every") {
        next.ckpt_every = *n;
    }
    if let Some(Value::Bool(b)) = field(settings, "verbose") {
        next.verbose = *b;
    }
    knobs.publish(next);
    emit(&format!(
        "{{\"ok\":true,\"epoch\":{},\"ckpt_every\":{},\"verbose\":{}}}",
        knobs.epoch(),
        next.ckpt_every,
        next.verbose
    ));
}

fn handle_sweep(fleet: &Fleet, knobs: &Arc<EpochSnapshot<Knobs>>, request: &Value) {
    let id = match field(request, "id") {
        Some(Value::Str(s)) => s.clone(),
        _ => "anonymous".to_string(),
    };
    let id_json = serde_json::to_string(&id).expect("string serializes");

    let spec: SweepSpec =
        match serde_json::from_value(field(request, "sweep").expect("caller checked").clone()) {
            Ok(s) => s,
            Err(e) => {
                emit_error("sweep spec", &e.to_string());
                return;
            }
        };
    if let Err(e) = spec.validate() {
        emit_error("sweep spec", &e);
        return;
    }

    let checkpoint = match field(request, "ckpt") {
        Some(Value::Str(p)) => Some(PathBuf::from(p)),
        Some(_) => {
            emit_error("ckpt", "must be a string path");
            return;
        }
        None => None,
    };

    // The result-affecting inputs are pinned here; the streaming callback
    // consults the snapshot only for verbosity (operational).
    let reader = Mutex::new(SnapshotReader::new(knobs));
    let knobs_cb = knobs.clone();
    let cell_id = id_json.clone();
    let opts = SweepOptions {
        checkpoint,
        ckpt_every: knobs.load().ckpt_every,
        on_cell: Some(Arc::new(move |cell| {
            let body = serde_json::to_string(cell).expect("cell serializes");
            emit(&format!("{{\"id\":{cell_id},\"cell\":{body}}}"));
            let mut r = reader.lock().expect("knobs reader");
            if r.get(&knobs_cb).verbose {
                eprintln!(
                    "serve[{cell_id}]: cell {} {} @ {:.3} done",
                    cell.scheme, cell.pattern, cell.rate
                );
            }
        })),
        ..SweepOptions::default()
    };

    match run_sweep(fleet, &spec, opts) {
        Ok(outcome) => emit(&format!(
            "{{\"id\":{id_json},\"done\":true,\"complete\":{},\"total_jobs\":{},\"resumed\":{},\"executed\":{}}}",
            outcome.report.complete,
            outcome.report.total_jobs,
            outcome.resumed_jobs,
            outcome.executed_jobs
        )),
        Err(e) => emit_error(&format!("sweep {id}"), &e),
    }
}
