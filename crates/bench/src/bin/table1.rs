//! Table I: optical component budgets for a 64-node network.
//!
//! Reproduced exactly: 256 data waveguides, 1 token waveguide, 0/1 handshake
//! waveguides; 1024K / 1028K / 1028K / 1040K micro-rings.

use pnoc_bench::Table;

fn main() {
    println!("Table I — component budgets, 64-node network");
    pnoc_bench::export::maybe_export("table1", &pnoc_bench::figures::table1());
    let mut t = Table::new([
        "scheme",
        "Data WG",
        "Token WG",
        "Handshake WG",
        "Micro-rings",
    ]);
    for (label, d, tok, h, rings) in pnoc_bench::figures::table1() {
        t.row([label, d.to_string(), tok.to_string(), h.to_string(), rings]);
    }
    println!("{}", t.render());
    println!("(handshake adds 4K rings = 0.4% overhead; circulation adds 16K = 1.5%)");
}
