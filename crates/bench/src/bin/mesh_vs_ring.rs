//! Motivation study (§I / §II-C): the electrical 2D-mesh baseline against
//! the nanophotonic ring at 64 nodes.
//!
//! Two claims to quantify:
//! 1. hop-by-hop electrical latency vs the ring's single photonic hop,
//! 2. credit-based flow control *works* on 1-cycle electrical links (2-flit
//!    buffers ≈ 8-flit buffers) while the optical ring's long credit loop is
//!    exactly what the paper's handshake removes.

use pnoc_bench::{Fidelity, Table};
use pnoc_noc::emesh::{MeshConfig, MeshNetwork};
use pnoc_noc::network::run_synthetic_point;
use pnoc_noc::{NetworkConfig, Scheme, SyntheticSource};
use pnoc_sim::run_parallel;
use pnoc_traffic::pattern::TrafficPattern;

fn mesh_point(
    cfg: MeshConfig,
    rate: f64,
    plan: pnoc_sim::RunPlan,
) -> pnoc_noc::metrics::RunSummary {
    let mut net = MeshNetwork::new(cfg).expect("valid config");
    let mut src = SyntheticSource::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.nodes(),
        cfg.cores_per_node,
        cfg.seed ^ 0xACE,
    );
    net.run_open_loop(&mut src, plan)
}

fn main() {
    let fid = Fidelity::from_args();
    let plan = fid.plan();
    let rates = [0.01, 0.02, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13];

    println!("64 nodes, UR — latency (cycles) vs load (pkt/cycle/core)");
    let mut t = Table::new({
        let mut h = vec!["network".to_string()];
        h.extend(rates.iter().map(|r| format!("{r}")));
        h
    });

    // Electrical mesh rows: 2-flit and 8-flit port buffers.
    for buffer in [2usize, 8] {
        let lat = run_parallel(&rates, |_, &rate| {
            let mut cfg = MeshConfig::paper_comparable();
            cfg.input_buffer = buffer;
            let s = mesh_point(cfg, rate, plan);
            if s.saturated {
                f64::INFINITY
            } else {
                s.avg_latency
            }
        });
        t.row_f64(&format!("mesh 8x8 (B={buffer}/port)"), &lat, 1);
    }
    // Optical ring rows: token slot (credit) and DHS w/ setaside (handshake).
    for scheme in [Scheme::TokenSlot, Scheme::Dhs { setaside: 8 }] {
        let lat = run_parallel(&rates, |_, &rate| {
            let cfg = NetworkConfig::paper_default(scheme);
            let s = run_synthetic_point(cfg, TrafficPattern::UniformRandom, rate, plan);
            if s.saturated {
                f64::INFINITY
            } else {
                s.avg_latency
            }
        });
        t.row_f64(&format!("ring 64n ({})", scheme.label()), &lat, 1);
    }
    println!("{}", t.render());
    println!(
        "takeaways: the mesh needs only 2-flit buffers (3-cycle electrical credit\n\
         loop — §II-C's point) but pays ~3 cycles per hop; the photonic ring is\n\
         one hop at light speed, and the handshake schemes keep its flow control\n\
         buffer-independent too."
    );
}
