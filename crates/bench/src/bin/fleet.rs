//! One-shot fleet sweep runner with resumable checkpointing.
//!
//! ```text
//! fleet [--spec <path|->] [--qos] [--replay <path|->] [--out <path>]
//!       [--ckpt <path>] [--ckpt-every N] [--kill-after N] [--threads N]
//!       [--verbose]
//! ```
//!
//! Runs a [`SweepSpec`] (JSON from `--spec`, `-` for stdin, or a built-in
//! sweep: the single-tenant demo by default, the multi-tenant QoS demo —
//! every tenant mix under token-bucket admission — with `--qos`) on the
//! work-stealing fleet and writes the deterministic
//! [`pnoc_fleet::SweepReport`] JSON to `--out` (stdout by default). With
//! `--ckpt`, progress snapshots append to the journal and a re-run of the
//! same command resumes instead of recomputing; the final report is
//! byte-identical to an uninterrupted run. `--kill-after N` is the CI kill
//! hook: after exactly N jobs complete in this process, a snapshot is
//! forced and the process exits with [`pnoc_fleet::KILL_EXIT_CODE`].
//!
//! `--replay` switches the job kind from synthetic sweeps to trace replay:
//! the JSON is a [`pnoc_fleet::ReplaySpec`] naming PTRC shards, every
//! (scheme, shard) pair replays as one fleet job, and the output is the
//! deterministic [`pnoc_fleet::ReplayReport`]. Replay sweeps are
//! recompute-cheap (streamed from disk), so they have no checkpoint path.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use pnoc_fleet::{run_replay, run_sweep, Fleet, ReplaySpec, SweepOptions, SweepSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleet [--spec <path|->] [--qos] [--replay <path|->] [--out <path>] \
         [--ckpt <path>] [--ckpt-every N] [--kill-after N] [--threads N] [--verbose]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("fleet: {e}");
        return ExitCode::FAILURE;
    }
    let mut spec_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut opts = SweepOptions {
        ckpt_every: 8,
        ..SweepOptions::default()
    };
    let mut verbose = false;
    let mut qos = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--spec" => match take(&mut i) {
                Some(v) => spec_path = Some(v),
                None => return usage(),
            },
            "--replay" => match take(&mut i) {
                Some(v) => replay_path = Some(v),
                None => return usage(),
            },
            "--out" => match take(&mut i) {
                Some(v) => out_path = Some(v),
                None => return usage(),
            },
            "--ckpt" => match take(&mut i) {
                Some(v) => opts.checkpoint = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--ckpt-every" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => opts.ckpt_every = n,
                None => return usage(),
            },
            "--kill-after" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => opts.kill_after = Some(n),
                None => return usage(),
            },
            // Consumed by apply_thread_flag; skip the value here.
            "--threads" => {
                i += 1;
            }
            "--verbose" => verbose = true,
            "--qos" => qos = true,
            _ => return usage(),
        }
        i += 1;
    }

    if let Some(rp) = replay_path {
        if spec_path.is_some() || qos || opts.checkpoint.is_some() || opts.kill_after.is_some() {
            eprintln!("fleet: --replay is its own job kind; drop --spec/--qos/--ckpt/--kill-after");
            return ExitCode::FAILURE;
        }
        return run_replay_mode(&rp, out_path.as_deref());
    }
    if qos && spec_path.is_some() {
        eprintln!(
            "fleet: --qos selects the built-in QoS demo; drop --spec or encode the axis there"
        );
        return ExitCode::FAILURE;
    }
    let spec = match load_spec(spec_path.as_deref(), qos) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.kill_after.is_some() && opts.checkpoint.is_none() {
        eprintln!("fleet: --kill-after without --ckpt would lose all work");
        return ExitCode::FAILURE;
    }
    if verbose {
        opts.on_cell = Some(Arc::new(|cell| {
            eprintln!(
                "cell {} {} {} @ {:.3}: {} jobs folded",
                cell.scheme, cell.pattern, cell.mix, cell.rate, cell.jobs
            );
        }));
    }

    let fleet = Fleet::with_default_threads();
    eprintln!(
        "fleet: {} jobs across {} cells on {} worker(s)",
        spec.total_jobs(),
        spec.cells(),
        fleet.threads()
    );
    let outcome = match run_sweep(&fleet, &spec, opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "fleet: {} resumed, {} executed, complete={}",
        outcome.resumed_jobs, outcome.executed_jobs, outcome.report.complete
    );

    let body = serde_json::to_string_pretty(&outcome.report).expect("report serializes");
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, body + "\n") {
                eprintln!("fleet: writing {p}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {p}");
        }
        None => println!("{body}"),
    }
    ExitCode::SUCCESS
}

/// Load a [`ReplaySpec`], fan its (scheme, shard) jobs across the fleet,
/// and write the deterministic [`pnoc_fleet::ReplayReport`].
fn run_replay_mode(path: &str, out_path: Option<&str>) -> ExitCode {
    let text = match read_input(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fleet: reading replay spec {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec: ReplaySpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fleet: parsing replay spec JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fleet = Fleet::with_default_threads();
    eprintln!(
        "fleet: replaying {} shard(s) through {} scheme(s) = {} job(s) on {} worker(s)",
        spec.shards.len(),
        spec.schemes.len(),
        spec.total_jobs(),
        fleet.threads()
    );
    let report = match run_replay(&fleet, &spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, body + "\n") {
                eprintln!("fleet: writing {p}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {p}");
        }
        None => println!("{body}"),
    }
    ExitCode::SUCCESS
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        return Ok(buf);
    }
    std::fs::read_to_string(path)
}

fn load_spec(path: Option<&str>, qos: bool) -> Result<SweepSpec, String> {
    let text = match path {
        None if qos => return Ok(SweepSpec::demo_qos()),
        None => return Ok(SweepSpec::demo()),
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading spec from stdin: {e}"))?;
            buf
        }
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("reading spec {p}: {e}"))?,
    };
    let spec: SweepSpec =
        serde_json::from_str(&text).map_err(|e| format!("parsing spec JSON: {e}"))?;
    spec.validate()?;
    Ok(spec)
}
