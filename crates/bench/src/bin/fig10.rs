//! Fig. 10: communication latency on the 13 application traces
//! (synthesized stand-ins for the paper's Simics extractions — see DESIGN.md).
//!
//! Shapes to reproduce: handshake schemes beat their baselines on real-app
//! traffic; GHS cuts latency substantially vs token channel (paper: ~42 %
//! average, up to 59 %), DHS modestly vs token slot (~4 %); the gains are
//! largest on the network-intensive NAS kernels.

use pnoc_bench::figures::mean_latency_reduction;
use pnoc_bench::{Fidelity, Table};
use pnoc_traffic::stats::TraceStats;

fn main() {
    let fid = Fidelity::from_args();

    // Workload characterization (what a paper's table of benchmarks shows).
    println!("Workload characterization (synthesized traces)");
    let mut wt = Table::new([
        "application",
        "rate/core",
        "burstiness",
        "dest entropy",
        "hotspot x",
        "req frac",
    ]);
    let dims = pnoc_noc::NetworkConfig::paper_default(pnoc_noc::Scheme::TokenSlot);
    for app in pnoc_traffic::apps::all_paper_apps() {
        let trace = app.synthesize(dims.cores(), dims.nodes, 20_000, 0x00F1_6010);
        let s = TraceStats::analyze(&trace, 64);
        wt.row_f64(
            &s.name,
            &[
                s.rate_per_core,
                s.burstiness,
                s.destination_entropy,
                s.hotspot_factor,
                s.request_fraction,
            ],
            3,
        );
    }
    println!("{}", wt.render());

    let (global, distributed) = pnoc_bench::figures::fig10(fid);
    pnoc_bench::export::maybe_export("fig10", &(&global, &distributed));

    for (title, results) in [
        ("Fig. 10(a) — Global Handshake group", &global),
        ("Fig. 10(b) — Distributed Handshake group", &distributed),
    ] {
        let mut header = vec!["application".to_string()];
        header.extend(results[0].latencies.iter().map(|(l, _)| l.clone()));
        let mut t = Table::new(header);
        for r in results {
            let values: Vec<f64> = r.latencies.iter().map(|(_, v)| *v).collect();
            t.row_f64(&r.app, &values, 1);
        }
        println!("{title} — average latency (cycles)");
        println!("{}", t.render());
        for idx in 1..results[0].latencies.len() {
            let red = mean_latency_reduction(results, idx);
            println!(
                "  mean latency reduction of {} vs {}: {:.1}%",
                results[0].latencies[idx].0,
                results[0].latencies[0].0,
                red * 100.0
            );
        }
        println!();
    }
}
