//! PTRC trace tooling: generate, inspect, ingest, benchmark, record, replay.
//!
//! ```text
//! trace gen    --app <name> --out <path> [--cores N] [--nodes N]
//!              [--length N] [--seed N] [--chunk N]
//! trace gen    --mix <1C|EM|BA|HT> --out <path> [--nodes N] [--cpn N]
//!              [--rate R] [--length N] [--seed N] [--chunk N]
//! trace info   <path>
//! trace ingest <path> [--max-rss-mb N]
//! trace bench  [--quick] [--json <path>] [--check <baseline.json>]
//! trace record --out <path> [--scheme <name>] [--rate R] [--seed N] [--quick]
//! trace replay <path> [--scheme <name>] [--seed N] [--quick]
//! ```
//!
//! `gen` streams an application profile or tenant mix to disk in O(chunk)
//! memory — trace size is bounded by disk, not RAM. `ingest` streams a
//! trace back, validating every chunk CRC, and (with `--max-rss-mb`) fails
//! if peak RSS exceeded the bound: the CI smoke proving bounded-memory
//! ingestion. `bench` is the `BENCH_trace.json` throughput gate (mirrors
//! the `perf` binary). `record` (requires the `obs-trace` feature) captures
//! a live synthetic run's injections as PTRC; `replay` streams a trace
//! through the network and prints the run summary — recording and replaying
//! under the same scheme/seed/plan reproduces the summary byte-identically.

use pnoc_noc::{NetworkConfig, Scheme};
use pnoc_sim::RunPlan;
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace <gen|info|ingest|bench|record|replay> [flags]\n\
         trace gen    --app <name> --out <path> [--cores N] [--nodes N] [--length N] [--seed N] [--chunk N]\n\
         trace gen    --mix <1C|EM|BA|HT> --out <path> [--nodes N] [--cpn N] [--rate R] [--length N] [--seed N] [--chunk N]\n\
         trace info   <path>\n\
         trace ingest <path> [--max-rss-mb N]\n\
         trace bench  [--quick] [--json <path>] [--check <baseline.json>]\n\
         trace record --out <path> [--scheme <name>] [--rate R] [--seed N] [--quick]  (obs-trace builds)\n\
         trace replay <path> [--scheme <name>] [--seed N] [--quick]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "ingest" => cmd_ingest(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "record" => cmd_record(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        _ => usage(),
    }
}

/// Parsed `--flag value` pairs.
type Flags = Vec<(String, String)>;

/// Parse `--flag value` pairs plus bare (positional) arguments.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if name == "quick" {
                flags.push((name.to_string(), String::new()));
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                flags.push((name.to_string(), value.clone()));
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_num<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: invalid {v:?}")),
    }
}

fn scheme_by_name(name: &str) -> Option<Scheme> {
    match name {
        "token-channel" => Some(Scheme::TokenChannel),
        "token-slot" => Some(Scheme::TokenSlot),
        "ghs" => Some(Scheme::Ghs { setaside: 0 }),
        "ghs-setaside" => Some(Scheme::Ghs { setaside: 4 }),
        "dhs" => Some(Scheme::Dhs { setaside: 0 }),
        "dhs-setaside" => Some(Scheme::Dhs { setaside: 4 }),
        "dhs-circ" => Some(Scheme::DhsCirculation),
        _ => None,
    }
}

fn run_plan(quick: bool) -> RunPlan {
    if quick {
        RunPlan::quick()
    } else {
        RunPlan::standard()
    }
}

/// Peak RSS of this process in MiB, from `/proc/self/status` `VmHWM`
/// (Linux only; `None` elsewhere).
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024)
}

fn cmd_gen(args: &[String]) -> ExitCode {
    match gen_inner(args) {
        Ok(msg) => {
            eprintln!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace gen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gen_inner(args: &[String]) -> Result<String, String> {
    let (_, flags) = parse_flags(args)?;
    let out = flag(&flags, "out").ok_or("--out <path> is required")?;
    let length: u64 = parse_num(&flags, "length", 100_000)?;
    let seed: u64 = parse_num(&flags, "seed", 7)?;
    let chunk: usize = parse_num(&flags, "chunk", pnoc_trace::DEFAULT_CHUNK_EVENTS)?;
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    let sink = std::io::BufWriter::new(file);
    let t0 = Instant::now();
    let stats = match (flag(&flags, "app"), flag(&flags, "mix")) {
        (Some(app_name), None) => {
            let app = pnoc_traffic::paper_app(app_name)
                .ok_or_else(|| format!("unknown app {app_name:?} (see fig10 for the set)"))?;
            let cores: usize = parse_num(&flags, "cores", 256)?;
            let nodes: usize = parse_num(&flags, "nodes", 64)?;
            let (_, stats) =
                pnoc_trace::generate_app(&app, cores, nodes, length, seed, chunk, sink)
                    .map_err(|e| format!("generating: {e}"))?;
            stats
        }
        (None, Some(mix_label)) => {
            let mix = pnoc_traffic::TenantMixKind::all()
                .into_iter()
                .find(|m| m.label() == mix_label)
                .ok_or_else(|| format!("unknown mix {mix_label:?} (1C, EM, BA, HT)"))?;
            let spec = pnoc_trace::MixSpec {
                mix,
                total_rate: parse_num(&flags, "rate", 0.10)?,
                nodes: parse_num(&flags, "nodes", 64)?,
                cores_per_node: parse_num(&flags, "cpn", 4)?,
                length,
                seed,
            };
            let (_, stats) = pnoc_trace::generate_mix(&spec, chunk, sink)
                .map_err(|e| format!("generating: {e}"))?;
            stats
        }
        _ => return Err("exactly one of --app or --mix is required".into()),
    };
    let secs = t0.elapsed().as_secs_f64();
    Ok(format!(
        "wrote {out}: {} events, {} bytes ({:.2} B/event) in {secs:.2}s ({:.2e} events/s)",
        stats.events,
        stats.bytes,
        stats.bytes as f64 / stats.events.max(1) as f64,
        stats.events as f64 / secs.max(1e-9),
    ))
}

fn cmd_info(args: &[String]) -> ExitCode {
    let (pos, _) = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace info: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(path) = pos.first() else {
        return usage();
    };
    match open_reader(path) {
        Ok(reader) => {
            let meta = reader.meta().clone();
            println!(
                "{}: PTRC v{} — {} cores × {} nodes, {} cycles, classes {:?}",
                path,
                pnoc_trace::VERSION,
                meta.cores,
                meta.nodes,
                meta.length,
                meta.classes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace info: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ingest(args: &[String]) -> ExitCode {
    match ingest_inner(args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace ingest: {e}");
            ExitCode::FAILURE
        }
    }
}

fn ingest_inner(args: &[String]) -> Result<String, String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("a trace path is required")?;
    let max_rss_mb: u64 = parse_num(&flags, "max-rss-mb", 0)?;
    let size = std::fs::metadata(path)
        .map_err(|e| format!("{path}: {e}"))?
        .len();
    let reader = open_reader(path).map_err(|e| format!("{path}: {e}"))?;
    let t0 = Instant::now();
    let mut events = 0u64;
    for ev in reader {
        ev.map_err(|e| format!("{path}: {e}"))?;
        events += 1;
    }
    let secs = t0.elapsed().as_secs_f64();
    let mut msg = format!(
        "ingested {path}: {events} events, {size} bytes in {secs:.2}s \
         ({:.2e} events/s, {:.1} MB/s)",
        events as f64 / secs.max(1e-9),
        size as f64 / 1e6 / secs.max(1e-9),
    );
    if let Some(rss) = peak_rss_mib() {
        msg.push_str(&format!("; peak RSS {rss} MiB"));
        if max_rss_mb > 0 && rss > max_rss_mb {
            return Err(format!(
                "peak RSS {rss} MiB exceeds --max-rss-mb {max_rss_mb}: \
                 streaming ingestion is not memory-bounded"
            ));
        }
    } else if max_rss_mb > 0 {
        return Err("--max-rss-mb: /proc/self/status unavailable on this platform".into());
    }
    Ok(msg)
}

fn open_reader(
    path: &str,
) -> std::io::Result<pnoc_trace::StreamingTraceReader<BufReader<std::fs::File>>> {
    let file = std::fs::File::open(path)?;
    pnoc_trace::StreamingTraceReader::open(BufReader::new(file))
}

fn cmd_bench(args: &[String]) -> ExitCode {
    use pnoc_bench::trace_bench::{check_regression, measure, validate, TraceBenchReport};
    let (_, flags) = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let quick = flag(&flags, "quick").is_some();
    // Load + validate the baseline before the (slow) measurement so a
    // malformed checked-in file fails fast.
    let baseline: Option<TraceBenchReport> = match flag(&flags, "check") {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("trace bench: baseline {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report: TraceBenchReport = match serde_json::from_str(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("trace bench: baseline {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = validate(&report) {
                eprintln!("trace bench: baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
            Some(report)
        }
        None => None,
    };
    let report = measure(quick);
    if let Err(e) = validate(&report) {
        eprintln!("trace bench: fresh report failed validation: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} events, {:.2} B/event — write {:.2e} events/s, ingest {:.2e} events/s ({:.1} MB/s)",
        report.app,
        report.events,
        report.bytes_per_event,
        report.write_events_per_sec,
        report.ingest_events_per_sec,
        report.ingest_mb_per_sec,
    );
    if let Some(p) = flag(&flags, "json") {
        let body = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(p, body + "\n") {
            eprintln!("trace bench: writing {p}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {p}");
    }
    if let Some(base) = baseline {
        match check_regression(&base, &report) {
            Ok(verdict) => println!("regression gate: OK — {verdict}"),
            Err(e) => {
                eprintln!("trace bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(feature = "obs-trace")]
fn cmd_record(args: &[String]) -> ExitCode {
    match record_inner(args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace record: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(feature = "obs-trace")]
fn record_inner(args: &[String]) -> Result<String, String> {
    let (_, flags) = parse_flags(args)?;
    let out = flag(&flags, "out").ok_or("--out <path> is required")?;
    let scheme_name = flag(&flags, "scheme").unwrap_or("dhs-setaside");
    let scheme =
        scheme_by_name(scheme_name).ok_or_else(|| format!("unknown scheme {scheme_name:?}"))?;
    let rate: f64 = parse_num(&flags, "rate", 0.10)?;
    let mut cfg = NetworkConfig::small(scheme);
    cfg.seed = parse_num(&flags, "seed", cfg.seed)?;
    let plan = run_plan(flag(&flags, "quick").is_some());
    let mut src = pnoc_noc::SyntheticSource::new(
        pnoc_traffic::pattern::TrafficPattern::UniformRandom,
        rate,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.seed ^ 0x5EED_0001,
    );
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    let (summary, _, stats) =
        pnoc_trace::record_run(cfg, &mut src, plan, std::io::BufWriter::new(file))
            .map_err(|e| format!("recording: {e}"))?;
    Ok(format!(
        "recorded {out}: {} events, {} bytes; summary: {}",
        stats.events,
        stats.bytes,
        serde_json::to_string(&summary).expect("summary serializes"),
    ))
}

#[cfg(not(feature = "obs-trace"))]
fn cmd_record(_args: &[String]) -> ExitCode {
    eprintln!(
        "trace record: requires the obs-trace feature \
         (rebuild with --features obs-trace)"
    );
    ExitCode::FAILURE
}

fn cmd_replay(args: &[String]) -> ExitCode {
    match replay_inner(args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace replay: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_inner(args: &[String]) -> Result<String, String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("a trace path is required")?;
    let scheme_name = flag(&flags, "scheme").unwrap_or("dhs-setaside");
    let scheme =
        scheme_by_name(scheme_name).ok_or_else(|| format!("unknown scheme {scheme_name:?}"))?;
    let mut cfg = NetworkConfig::small(scheme);
    cfg.seed = parse_num(&flags, "seed", cfg.seed)?;
    let plan = run_plan(flag(&flags, "quick").is_some());
    let reader = open_reader(path).map_err(|e| format!("{path}: {e}"))?;
    let summary =
        pnoc_trace::replay_run(cfg, reader, plan).map_err(|e| format!("replaying: {e}"))?;
    Ok(serde_json::to_string(&summary).expect("summary serializes"))
}
