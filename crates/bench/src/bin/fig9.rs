//! Fig. 9: Distributed Handshake evaluation — token slot vs DHS vs
//! DHS w/ setaside vs DHS w/ circulation under UR (a), BC (b) and TOR (c).
//!
//! Shapes to reproduce: DHS variants beat token slot under UR/TOR (tokens
//! every cycle, no credit gating); basic DHS *loses* to token slot under BC
//! (HOL blocking serializes each sender to one packet per handshake round
//! trip); setaside and circulation recover, circulation without any extra
//! buffer.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let mut charts = Vec::new();
    for (pattern, curves) in pnoc_bench::figures::fig9(fid) {
        let rates: Vec<f64> = curves[0].points.iter().map(|(r, _)| *r).collect();
        let mut header = vec!["scheme".to_string()];
        header.extend(rates.iter().map(|r| format!("{r}")));
        let mut t = Table::new(header);
        for c in &curves {
            t.row_f64(&c.label, &c.latencies(), 1);
        }
        println!("Fig. 9 ({pattern}) — latency (cycles) vs load (pkt/cycle/core)");
        println!("{}", t.render());
        for c in &curves {
            let max_drop = c
                .points
                .iter()
                .map(|(_, s)| s.drop_rate)
                .fold(0.0f64, f64::max);
            let max_circ = c
                .points
                .iter()
                .map(|(_, s)| s.circulation_rate)
                .fold(0.0f64, f64::max);
            println!(
                "  {:<20} saturation {:.3}  max drop {:.4}%  max circulation {:.4}%",
                c.label,
                c.saturation_rate(),
                max_drop * 100.0,
                max_circ * 100.0
            );
        }
        println!();
        let spec = pnoc_bench::PlotSpec::latency(format!("Fig. 9 ({pattern})"));
        charts.push((format!("fig9_{pattern}"), spec, curves));
    }
    pnoc_bench::export::maybe_export(
        "fig9",
        &charts
            .iter()
            .map(|(n, _, c)| (n.clone(), c.clone()))
            .collect::<Vec<_>>(),
    );
    if let Some(dir) = pnoc_bench::plot::svg_dir_from_args() {
        for p in pnoc_bench::plot::write_charts(&dir, &charts).expect("write svg") {
            println!("wrote {}", p.display());
        }
    }
}
