//! Resilience: deterministic fault-injection sweep across the five schemes.
//!
//! Sweeps a uniform per-cycle fault rate (data loss/corruption, ACK loss,
//! token loss) from 0 to 1e-3 under UR at a load every scheme sustains when
//! healthy. Shape to reproduce: the handshake schemes (GHS/DHS) absorb every
//! fault class through NACKs plus ACK-timeout retransmission — zero lost
//! packets, bounded latency inflation — while the credit baselines leak
//! unreturnable credits (token-channel credits die with flits/tokens, token
//! slot reservations are never released) and lose packets outright.

use pnoc_bench::figures::{FAULT_RATES, RESILIENCE_LOAD};
use pnoc_bench::{Fidelity, Table};

fn main() {
    // Built with --features verify-invariants, every simulated cycle below
    // also runs pnoc-noc's InvariantAuditor; a conservation-law violation
    // aborts the harness with a diagnostic instead of producing a table.
    #[cfg(feature = "verify-invariants")]
    println!("[verify-invariants] cycle-level invariant auditor active\n");
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("resilience: {e}");
        std::process::exit(1);
    }
    let fid = Fidelity::from_args();
    let curves = pnoc_bench::figures::resilience(fid);
    let mut header = vec!["scheme".to_string()];
    header.extend(FAULT_RATES.iter().map(|r| format!("{r:e}")));

    println!(
        "Resilience — uniform per-cycle fault rate sweep, UR load {RESILIENCE_LOAD} pkt/cycle/core"
    );
    let mut t = Table::new(header.clone());
    for c in &curves {
        t.row_f64(&c.label, &c.latencies(), 1);
    }
    println!("mean latency (cycles; ∞ = saturated/wedged)");
    println!("{}", t.render());

    let mut t = Table::new(header.clone());
    for c in &curves {
        t.row(
            std::iter::once(c.label.clone())
                .chain(c.points.iter().map(|(_, s)| s.lost_packets.to_string())),
        );
    }
    println!("lost packets (generated − delivered after drain grace)");
    println!("{}", t.render());

    let mut t = Table::new(header.clone());
    for c in &curves {
        t.row(
            std::iter::once(c.label.clone())
                .chain(c.points.iter().map(|(_, s)| s.credit_leaks.to_string())),
        );
    }
    println!("credit leaks (flow-control state destroyed beyond recovery)");
    println!("{}", t.render());

    let mut t = Table::new(header);
    for c in &curves {
        t.row(
            std::iter::once(c.label.clone()).chain(c.points.iter().map(|(_, s)| {
                format!(
                    "{} ({} dup)",
                    pnoc_bench::table::fmt_f64(s.retransmit_rate, 4),
                    s.duplicates
                )
            })),
        );
    }
    println!("retransmit rate per send (and duplicates suppressed at homes)");
    println!("{}", t.render());

    // Verdict: the paper-level reliability claim, checked on this very run.
    for c in &curves {
        let handshake = c.label.contains("GHS") || c.label == "DHS w/ Setaside";
        let lost: u64 = c.points.iter().map(|(_, s)| s.lost_packets).sum();
        let abandoned: u64 = c.points.iter().map(|(_, s)| s.abandoned).sum();
        if handshake {
            let ok = lost == 0 && abandoned == 0;
            println!(
                "{}: {} (lost {lost}, abandoned {abandoned})",
                c.label,
                if ok {
                    "zero loss at every fault rate"
                } else {
                    "VIOLATION"
                }
            );
        } else if lost > 0 {
            let leaks: u64 = c.points.iter().map(|(_, s)| s.credit_leaks).sum();
            println!("{}: lost {lost} packets, leaked {leaks} credits", c.label);
        }
    }

    pnoc_bench::export::maybe_export("resilience", &curves);
    if let Some(dir) = pnoc_bench::plot::svg_dir_from_args() {
        let spec = pnoc_bench::PlotSpec::latency("Resilience (x = per-cycle fault rate)");
        let charts = vec![("resilience".to_string(), spec, curves)];
        for p in pnoc_bench::plot::write_charts(&dir, &charts).expect("write svg") {
            println!("wrote {}", p.display());
        }
    }
}
