//! Observability demo: run a deliberately saturated 64-node UR workload on
//! DHS with the event trace, occupancy sampler, and span profiler attached,
//! then export everything `pnoc-obs` produces.
//!
//! Requires `--features obs-trace`. Outputs (under `--out <dir>`, default
//! `results/obs`):
//!
//! * `obs_trace.json`      — packet-lifecycle event trace (ring-buffer tail)
//! * `obs_occupancy.csv`   — per-channel occupancy/credit/setaside series
//! * `obs_occupancy.svg`   — occupancy timeline rendered per channel
//! * `obs_summary.json`    — the run's `RunSummary`
//!
//! The run is pushed past saturation on purpose: the point of the demo is
//! that `p99_latency` stays finite (the old 2048-bin histogram reported
//! `+inf` here) while `saturated` still flags the regime honestly.

use pnoc_bench::figures::PAPER_SETASIDE;
use pnoc_noc::{Network, NetworkConfig, Scheme};
use pnoc_sim::RunPlan;
use pnoc_traffic::pattern::TrafficPattern;
use std::path::PathBuf;

fn out_dir_from_args() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/obs"))
}

fn main() {
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("obs: {e}");
        std::process::exit(1);
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let out = out_dir_from_args();

    // 64-node paper configuration, driven well past the DHS saturation
    // throughput under uniform-random traffic.
    let cfg = NetworkConfig::paper_default(Scheme::Dhs {
        setaside: PAPER_SETASIDE,
    });
    let rate = 0.5;
    let plan = if quick {
        RunPlan::new(500, 3_000, 500)
    } else {
        RunPlan::new(2_000, 12_000, 2_000)
    };

    let mut net = Network::new(cfg).expect("valid config");
    net.attach_trace(1 << 16);
    net.attach_sampler(if quick { 16 } else { 64 });
    pnoc_obs::prof::reset();

    let mut src = pnoc_noc::sources::SyntheticSource::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.seed ^ 0x0B5E_0001,
    );
    let summary = net.run_open_loop(&mut src, plan);

    println!(
        "DHS w/ Setaside {PAPER_SETASIDE}, UR rate {rate} pkt/cycle/core, {} nodes",
        cfg.nodes
    );
    println!(
        "  delivered {:>8}   avg latency {:>10.1}   p99 {:>10.1}   saturated: {}",
        summary.delivered, summary.avg_latency, summary.p99_latency, summary.saturated
    );
    assert!(
        summary.p99_latency.is_finite(),
        "recorder must report a finite p99 even past saturation"
    );
    assert!(summary.saturated, "this demo is meant to saturate the ring");

    let trace = net.trace().expect("trace attached");
    let sampler = net.sampler().expect("sampler attached");
    println!(
        "  trace: {} events held ({} overwritten)   sampler: {} samples ({} dropped)",
        trace.len(),
        trace.dropped(),
        sampler.samples().len(),
        sampler.dropped()
    );

    std::fs::create_dir_all(&out).expect("create output dir");
    let trace_path = pnoc_bench::export::write_json(&out, "obs_trace", &trace.export())
        .expect("write trace json");
    println!("wrote {}", trace_path.display());

    let csv_path = out.join("obs_occupancy.csv");
    std::fs::write(&csv_path, sampler.to_csv()).expect("write occupancy csv");
    println!("wrote {}", csv_path.display());

    let buf = u32::try_from(cfg.input_buffer).expect("buffer fits u32");
    let svg = pnoc_obs::svg::render_occupancy_svg(
        "DHS per-channel buffer occupancy (saturated UR)",
        sampler.samples(),
        buf.max(1),
    );
    let svg_path = out.join("obs_occupancy.svg");
    std::fs::write(&svg_path, svg).expect("write occupancy svg");
    println!("wrote {}", svg_path.display());

    let summary_path =
        pnoc_bench::export::write_json(&out, "obs_summary", &summary).expect("write summary json");
    println!("wrote {}", summary_path.display());

    let spans = pnoc_obs::prof::snapshot();
    println!("\nscheme-pipeline span profile:");
    println!("{}", pnoc_obs::prof::render_table(&spans));
}
