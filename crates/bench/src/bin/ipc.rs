//! IPC experiment (§V-B): closed-loop CMP — 128 four-MSHR cores self-throttle
//! on network latency.
//!
//! Shape to reproduce: GHS w/ setaside improves IPC over token channel
//! substantially (paper: ~15 % average), DHS w/ setaside over token slot
//! marginally (~1.3 %) — the distributed baselines were already close to
//! channel capacity.

use pnoc_bench::figures::mean_ipc_improvement;
use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let rows = pnoc_bench::figures::ipc(fid);
    pnoc_bench::export::maybe_export("ipc", &rows);

    let mut header = vec!["workload".to_string()];
    header.extend(rows[0].results.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for r in &rows {
        let values: Vec<f64> = r.results.iter().map(|(_, s)| s.ipc).collect();
        t.row_f64(&r.workload, &values, 3);
    }
    println!("IPC per scheme (instructions/cycle/core)");
    println!("{}", t.render());

    println!(
        "mean IPC improvement, GHS w/ Setaside vs Token Channel: {:.1}%",
        mean_ipc_improvement(&rows, 1, 0) * 100.0
    );
    println!(
        "mean IPC improvement, DHS w/ Setaside vs Token Slot:    {:.1}%",
        mean_ipc_improvement(&rows, 3, 2) * 100.0
    );

    println!("\nnetwork latency seen by the CMP (cycles)");
    let mut t = Table::new(["workload", "TC", "GHS+SB", "TS", "DHS+SB"]);
    for r in &rows {
        let values: Vec<f64> = r.results.iter().map(|(_, s)| s.avg_net_latency).collect();
        t.row_f64(&r.workload, &values, 1);
    }
    println!("{}", t.render());
}
