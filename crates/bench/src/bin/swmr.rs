//! SWMR extension study (paper §II-B): the handshake schemes applied to a
//! single-writer multiple-reader fabric, where no channel arbitration exists
//! and flow control is the whole story.
//!
//! Shapes to expect: SWMR handshake needs only the same small buffers as
//! MWSR (performance independent of buffer size), while partitioned credits
//! force `N−1`-slot receiver buffers *and* HOL-block each source's single
//! output queue once any destination's credit is exhausted.

use pnoc_bench::{Fidelity, Table};
use pnoc_noc::swmr::{SwmrConfig, SwmrNetwork};
use pnoc_noc::SyntheticSource;
use pnoc_sim::run_parallel;
use pnoc_traffic::pattern::TrafficPattern;

fn run_point(cfg: SwmrConfig, rate: f64, plan: pnoc_sim::RunPlan) -> pnoc_noc::metrics::RunSummary {
    let mut net = SwmrNetwork::new(cfg).expect("valid config");
    let mut src = SyntheticSource::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.seed ^ 0x51_EE7,
    );
    net.run_open_loop(&mut src, plan)
}

fn main() {
    let fid = Fidelity::from_args();
    let plan = fid.plan();
    let rates = [0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15];

    println!("SWMR fabric, UR — latency (cycles) vs load (pkt/cycle/core)");
    let mut t = Table::new({
        let mut h = vec!["flow control (buffer)".to_string()];
        h.extend(rates.iter().map(|r| format!("{r}")));
        h
    });
    let variants: Vec<(String, SwmrConfig)> = vec![
        ("credit (B=63)".into(), SwmrConfig::paper_credit()),
        ("handshake (B=8)".into(), SwmrConfig::paper_handshake(0)),
        ("handshake+SA8 (B=8)".into(), SwmrConfig::paper_handshake(8)),
        ("handshake+SA8 (B=4)".into(), {
            let mut c = SwmrConfig::paper_handshake(8);
            c.input_buffer = 4;
            c
        }),
    ];
    let jobs: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|v| rates.iter().map(move |&r| (v, r)))
        .collect();
    let results = run_parallel(&jobs, |_, &(v, rate)| run_point(variants[v].1, rate, plan));
    for (v, (label, _)) in variants.iter().enumerate() {
        let lat: Vec<f64> = (0..rates.len())
            .map(|ri| {
                let s = &results[v * rates.len() + ri];
                if s.saturated {
                    f64::INFINITY
                } else {
                    s.avg_latency
                }
            })
            .collect();
        t.row_f64(label, &lat, 1);
    }
    println!("{}", t.render());
    println!(
        "note: partitioned credits refuse to build with B < N−1; handshake keeps\n\
         working down to a handful of buffer slots — the paper's scalability claim\n\
         carried over to SWMR."
    );
}
