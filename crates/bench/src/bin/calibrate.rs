//! Quick calibration sweep (developer tool): prints latency vs load for all
//! schemes under UR and BC at paper scale, to sanity-check curve shapes
//! against Figs. 2(b), 8 and 9 before the full harnesses run.

use pnoc_noc::network::run_synthetic_point;
use pnoc_noc::{NetworkConfig, Scheme};
use pnoc_sim::RunPlan;
use pnoc_traffic::pattern::TrafficPattern;

fn main() {
    let plan = RunPlan::new(5_000, 20_000, 2_000);
    let rates = [0.01, 0.03, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25];
    let schemes = Scheme::paper_set(8);
    for pattern in [TrafficPattern::UniformRandom, TrafficPattern::BitComplement] {
        println!("== pattern {} ==", pattern.label());
        print!("{:<20}", "scheme/rate");
        for r in rates {
            print!("{r:>9.2}");
        }
        println!();
        let jobs: Vec<(Scheme, f64)> = schemes
            .iter()
            .flat_map(|&s| rates.iter().map(move |&r| (s, r)))
            .collect();
        let results = pnoc_sim::run_parallel(&jobs, |_, &(scheme, rate)| {
            let cfg = NetworkConfig::paper_default(scheme);
            run_synthetic_point(cfg, pattern, rate, plan)
        });
        for (si, &scheme) in schemes.iter().enumerate() {
            print!("{:<20}", scheme.label());
            for ri in 0..rates.len() {
                let s = &results[si * rates.len() + ri];
                if s.saturated {
                    print!("{:>9}", "SAT");
                } else {
                    print!("{:>9.1}", s.avg_latency);
                }
            }
            println!();
        }
        // Token-slot credit sensitivity (Fig. 2b shape).
        for credits in [4usize, 16] {
            print!("{:<20}", format!("TokenSlot c={credits}"));
            let jobs: Vec<f64> = rates.to_vec();
            let res = pnoc_sim::run_parallel(&jobs, |_, &rate| {
                let mut cfg = NetworkConfig::paper_default(Scheme::TokenSlot);
                cfg.input_buffer = credits;
                run_synthetic_point(cfg, pattern, rate, plan)
            });
            for s in &res {
                if s.saturated {
                    print!("{:>9}", "SAT");
                } else {
                    print!("{:>9.1}", s.avg_latency);
                }
            }
            println!();
        }
    }
}
