//! Fig. 8: Global Handshake evaluation — token channel vs GHS vs
//! GHS w/ setaside under UR (a), BC (b) and TOR (c).
//!
//! Shape to reproduce: GHS beats token channel (no credit piggybacking, so no
//! empty-token round trips); the setaside buffer lifts GHS further by
//! removing HOL blocking, most visibly under the BC permutation.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();
    let mut charts = Vec::new();
    for (pattern, curves) in pnoc_bench::figures::fig8(fid) {
        let rates: Vec<f64> = curves[0].points.iter().map(|(r, _)| *r).collect();
        let mut header = vec!["scheme".to_string()];
        header.extend(rates.iter().map(|r| format!("{r}")));
        let mut t = Table::new(header);
        for c in &curves {
            t.row_f64(&c.label, &c.latencies(), 1);
        }
        println!("Fig. 8 ({pattern}) — latency (cycles) vs load (pkt/cycle/core)");
        println!("{}", t.render());
        let max_drop = curves
            .iter()
            .flat_map(|c| c.points.iter().map(|(_, s)| s.drop_rate))
            .fold(0.0f64, f64::max);
        println!(
            "max drop/retransmission rate across points: {:.4}%\n",
            max_drop * 100.0
        );
        let spec = pnoc_bench::PlotSpec::latency(format!("Fig. 8 ({pattern})"));
        charts.push((format!("fig8_{pattern}"), spec, curves));
    }
    pnoc_bench::export::maybe_export(
        "fig8",
        &charts
            .iter()
            .map(|(n, _, c)| (n.clone(), c.clone()))
            .collect::<Vec<_>>(),
    );
    if let Some(dir) = pnoc_bench::plot::svg_dir_from_args() {
        for p in pnoc_bench::plot::write_charts(&dir, &charts).expect("write svg") {
            println!("wrote {}", p.display());
        }
    }
}
