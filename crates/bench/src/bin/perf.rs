//! Simulator-throughput baseline: cycles/sec and ns/packet per scheme.
//!
//! ```text
//! perf [--quick] [--json <path>] [--check <baseline.json>]
//! ```
//!
//! `--json` writes the report; without an explicit path it goes to
//! `BENCH_perf.json` in the working directory. `--check` loads a previously
//! emitted report, validates its schema, and exits non-zero if the current
//! run's aggregate throughput regressed more than the tolerance in
//! [`pnoc_bench::perf::REGRESSION_TOLERANCE`].

use pnoc_bench::perf::{check_regression, measure, validate, PerfReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    if let Err(e) = pnoc_bench::apply_thread_flag() {
        eprintln!("perf: {e}");
        return ExitCode::FAILURE;
    }
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--json" => {
                // Optional value: a following flag means "use the default".
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    i += 1;
                    json_path = Some(args[i].clone());
                } else {
                    json_path = Some("BENCH_perf.json".into());
                }
            }
            "--check" => {
                if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                    eprintln!("--check requires a baseline path");
                    return ExitCode::FAILURE;
                }
                i += 1;
                check_path = Some(args[i].clone());
            }
            // Value already consumed by apply_thread_flag; skip it here.
            "--threads" => i += 1,
            other => {
                eprintln!("unknown flag {other}; usage: perf [--quick] [--json <path>] [--check <baseline.json>] [--threads N]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    // Load + validate the baseline *before* the (slow) measurement so a
    // malformed checked-in file fails fast.
    let baseline = match &check_path {
        Some(p) => match load_baseline(p) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("perf: baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let report = measure(quick);
    if let Err(e) = validate(&report) {
        eprintln!("perf: fresh report failed validation: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "{:<18} {:>14} {:>12} {:>14} {:>12}",
        "scheme", "sim cycles", "packets", "cycles/sec", "ns/packet"
    );
    for s in &report.schemes {
        println!(
            "{:<18} {:>14} {:>12} {:>14.3e} {:>12.1}",
            s.scheme, s.simulated_cycles, s.delivered_packets, s.cycles_per_sec, s.ns_per_packet
        );
    }
    println!(
        "aggregate: {:.3e} simulated cycles/sec",
        report.total_cycles_per_sec
    );
    // Phase attribution (obs-trace builds only; empty otherwise).
    for s in &report.schemes {
        if s.phases.is_empty() {
            continue;
        }
        println!("-- {} phase profile --", s.scheme);
        for p in &s.phases {
            println!(
                "  {:<16} {:>12} calls {:>10.1} ms {:>6} ns/call",
                p.name,
                p.calls,
                p.nanos as f64 / 1e6,
                p.nanos / p.calls.max(1)
            );
        }
    }

    if let Some(path) = &json_path {
        let body = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, body + "\n") {
            eprintln!("perf: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(base) = &baseline {
        match check_regression(base, &report) {
            Ok(v) => println!("baseline check OK: {v}"),
            Err(e) => {
                eprintln!("perf: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let report: PerfReport = serde_json::from_str(&body).map_err(|e| format!("parse: {e}"))?;
    validate(&report)?;
    Ok(report)
}
