//! Fig. 11: sensitivity studies under Uniform Random traffic.
//!
//! (a–e) credit sensitivity: the handshake schemes carry no credit
//! information in their tokens, so their latency-vs-load curves are nearly
//! independent of the buffer/credit count (contrast Fig. 2(b)).
//! (f) setaside size: a small setaside buffer already removes HOL blocking.

use pnoc_bench::{Fidelity, Table};

fn main() {
    let fid = Fidelity::from_args();

    let credit_curves = pnoc_bench::figures::fig11_credits(fid);
    let setaside_study = pnoc_bench::figures::fig11_setaside(fid);
    pnoc_bench::export::maybe_export("fig11", &(&credit_curves, &setaside_study));

    for (scheme, curves) in credit_curves {
        let rates: Vec<f64> = curves[0].points.iter().map(|(r, _)| *r).collect();
        let mut header = vec!["credits".to_string()];
        header.extend(rates.iter().map(|r| format!("{r}")));
        let mut t = Table::new(header);
        for c in &curves {
            t.row_f64(&c.label, &c.latencies(), 1);
        }
        println!("Fig. 11 — {scheme}: credit sensitivity, UR");
        println!("{}", t.render());
    }

    println!("Fig. 11(f) — setaside size study, UR @ 0.11 pkt/cycle/core");
    let mut t = Table::new(["scheme", "SA_1", "SA_2", "SA_4", "SA_8", "SA_16"]);
    for (label, points) in setaside_study {
        let values: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
        t.row_f64(&label, &values, 1);
    }
    println!("{}", t.render());
}
