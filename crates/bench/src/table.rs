//! Plain-text table rendering for harness output.

/// A simple right-aligned text table with a left-aligned label column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers (first column is the label).
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Convenience: label + f64 cells with the given precision; NaN renders
    /// as `-`, infinite values as `SAT` (the curve ran away).
    pub fn row_f64(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        for &v in values {
            cells.push(fmt_f64(v, precision));
        }
        self.row(cells)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[0]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float cell: NaN → `-`, ±∞ → `SAT`.
pub fn fmt_f64(v: f64, precision: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.is_infinite() {
        "SAT".to_string()
    } else {
        format!("{v:.precision$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["scheme", "0.01", "0.05"]);
        t.row_f64("DHS", &[9.5, 10.2], 1);
        t.row_f64("Token Slot", &[9.6, f64::INFINITY], 1);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("DHS"));
        assert!(lines[3].contains("SAT"));
        // all lines same width
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn special_values() {
        assert_eq!(fmt_f64(f64::NAN, 1), "-");
        assert_eq!(fmt_f64(f64::INFINITY, 1), "SAT");
        assert_eq!(fmt_f64(1.25, 1), "1.2");
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
