//! Load grids and run plans for each figure (the paper's x-axes).

use pnoc_sim::RunPlan;

/// The x-axis of Fig. 2(b) / Fig. 11(c–e): UR loads up to 0.23.
pub fn ur_rates_dense() -> Vec<f64> {
    vec![
        0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.17, 0.19,
        0.21, 0.23,
    ]
}

/// The x-axis of Fig. 8(a) / Fig. 9(a): UR loads up to 0.25.
pub fn ur_rates() -> Vec<f64> {
    vec![
        0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.17, 0.19, 0.21, 0.23, 0.25,
    ]
}

/// The x-axis of Fig. 8(b) / 9(b): BC loads up to ~0.19.
pub fn bc_rates() -> Vec<f64> {
    vec![0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.17, 0.19]
}

/// The x-axis of Fig. 8(c) / 9(c): TOR loads up to ~0.07.
/// (Tornado concentrates node-pair traffic, so rings saturate earlier.)
pub fn tor_rates() -> Vec<f64> {
    vec![
        0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.05, 0.06, 0.07,
    ]
}

/// Thin a grid for `--quick` runs (every other point, keeping endpoints).
pub fn thin(rates: &[f64]) -> Vec<f64> {
    if rates.len() <= 3 {
        return rates.to_vec();
    }
    let mut out: Vec<f64> = rates.iter().copied().step_by(2).collect();
    if (out.last() != rates.last()) && rates.last().is_some() {
        out.push(*rates.last().expect("non-empty"));
    }
    out
}

/// Full-fidelity measurement plan.
pub fn full_plan() -> RunPlan {
    RunPlan::new(10_000, 40_000, 3_000)
}

/// Quick plan for smoke runs and CI.
pub fn quick_plan() -> RunPlan {
    RunPlan::new(3_000, 10_000, 1_500)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_positive() {
        for g in [ur_rates_dense(), ur_rates(), bc_rates(), tor_rates()] {
            assert!(!g.is_empty());
            assert!(g.iter().all(|&r| r > 0.0 && r < 0.5));
            assert!(g.windows(2).all(|w| w[0] < w[1]), "grid must ascend");
        }
    }

    #[test]
    fn thin_keeps_endpoints() {
        let g = ur_rates();
        let t = thin(&g);
        assert!(t.len() < g.len());
        assert_eq!(t.first(), g.first());
        assert_eq!(t.last(), g.last());
        let tiny = vec![0.1, 0.2];
        assert_eq!(thin(&tiny), tiny);
    }
}
