//! Simulator-throughput measurement: the perf baseline every PR is judged
//! against.
//!
//! [`measure`] drives the paper's 64-node network through a uniform-random
//! load sweep for each of the seven schemes and reports, per scheme, how
//! fast the *simulator* runs: simulated cycles per wall-clock second and
//! wall-clock nanoseconds per delivered packet. The numbers quantify the
//! hot loop ([`pnoc_noc::Network::step`] and the channel phase methods) —
//! not the modelled hardware — so a regression here means a future change
//! made the simulator slower, regardless of what it did to modelled
//! latency.
//!
//! The `perf` binary emits the report as `BENCH_perf.json` (schema
//! [`SCHEMA`]); `ci.sh` reruns the sweep in `--quick` mode and fails if
//! aggregate throughput regresses more than [`REGRESSION_TOLERANCE`]
//! against the checked-in baseline. Each scheme's sweep runs twice and the
//! faster pass is kept (best-of-N absorbs scheduler noise; the simulator
//! itself is deterministic, so both passes do identical work).

use pnoc_noc::network::run_synthetic_point;
use pnoc_noc::{NetworkConfig, Scheme};
use pnoc_sim::RunPlan;
use pnoc_traffic::pattern::TrafficPattern;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Report schema identifier (bump on layout changes).
pub const SCHEMA: &str = "pnoc-perf/2";

/// Relative throughput loss that fails the CI gate — applied to the
/// aggregate *and* to every individual scheme, so a regression localized
/// to one scheme's hot path cannot hide behind gains elsewhere.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Offered loads (packets/cycle/core) swept per scheme.
pub const RATES: [f64; 3] = [0.02, 0.05, 0.08];

/// Wall-clock attribution for one channel phase (`phase_arrival`,
/// `phase_acks`, …), captured by the `pnoc_obs::prof` span profiler.
///
/// Populated only when the `obs-trace` feature is compiled in; the span
/// hooks are deleted from default builds, so the CI gate's timed numbers
/// never carry profiling overhead and its reports have empty phase lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Span name as declared at the instrumentation site.
    pub name: String,
    /// Times the span was entered across the profiling sweep.
    pub calls: u64,
    /// Total nanoseconds inside the span (saturating).
    pub nanos: u64,
}

/// One scheme's measured simulator throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemePerf {
    /// Paper legend label of the scheme.
    pub scheme: String,
    /// Simulated cycles executed across the sweep (including drain).
    pub simulated_cycles: u64,
    /// Packets delivered across the sweep.
    pub delivered_packets: u64,
    /// Wall-clock time for the sweep, nanoseconds (best of two passes).
    pub wall_ns: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock nanoseconds per delivered packet.
    pub ns_per_packet: f64,
    /// Per-phase wall-clock attribution from a separate *untimed* profiling
    /// pass (see [`PhaseStat`]); empty unless built with `obs-trace`.
    pub phases: Vec<PhaseStat>,
}

/// The full perf report written to `BENCH_perf.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Network size the sweep ran on.
    pub nodes: usize,
    /// Offered loads swept.
    pub rates: Vec<f64>,
    /// Whether the reduced-fidelity (`--quick`) plan was used.
    pub quick: bool,
    /// Aggregate simulated cycles per second over all schemes (the number
    /// the CI regression gate compares).
    pub total_cycles_per_sec: f64,
    /// Per-scheme breakdown.
    pub schemes: Vec<SchemePerf>,
}

/// The run plan used per load point.
pub fn plan(quick: bool) -> RunPlan {
    if quick {
        RunPlan::new(500, 3_000, 500)
    } else {
        RunPlan::new(2_000, 16_000, 2_000)
    }
}

/// Run one scheme's full load sweep once; returns (cycles, delivered).
fn sweep_once(scheme: Scheme, quick: bool) -> (u64, u64) {
    let p = plan(quick);
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    for &rate in &RATES {
        let cfg = NetworkConfig::paper_default(scheme);
        let s = run_synthetic_point(cfg, TrafficPattern::UniformRandom, rate, p);
        // run_synthetic_point executes plan.total() cycles plus a bounded
        // drain grace; count the planned horizon (the grace is small and
        // identical across replays of the same build).
        cycles += p.total();
        delivered += s.delivered;
    }
    (cycles, delivered)
}

/// Measure simulator throughput for every paper scheme on the 64-node
/// uniform-random sweep.
///
/// The per-scheme timed passes run as jobs on a dedicated **single-worker**
/// [`pnoc_fleet::Fleet`]: one worker serializes the measurements, so
/// schemes never contend for cores and the numbers stay comparable with
/// the checked-in baseline regardless of host parallelism.
pub fn measure(quick: bool) -> PerfReport {
    let rig = pnoc_fleet::Fleet::new(1);
    // Untimed warmup: page in code, warm allocator arenas and branch
    // predictors — on the same worker thread the timed passes will use.
    rig.map(vec![Scheme::TokenSlot], |_, &s| {
        let _ = sweep_once(s, true);
    });
    let schemes: Vec<SchemePerf> = rig.map(Scheme::paper_set(4), move |_, &scheme| {
        let mut best_ns = u64::MAX;
        let mut cycles = 0u64;
        let mut delivered = 0u64;
        for _ in 0..2 {
            let t0 = Instant::now();
            let (c, d) = sweep_once(scheme, quick);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            best_ns = best_ns.min(ns);
            cycles = c;
            delivered = d;
        }
        // Phase attribution runs as its own pass *after* the timed ones, on
        // the same worker thread (the span table is thread-local), so the
        // profiler's bookkeeping never leaks into the gated numbers.
        #[cfg(feature = "obs-trace")]
        let phases = {
            pnoc_obs::prof::reset();
            let _ = sweep_once(scheme, quick);
            pnoc_obs::prof::snapshot()
                .into_iter()
                .map(|s| PhaseStat {
                    name: s.name,
                    calls: s.calls,
                    nanos: s.nanos,
                })
                .collect()
        };
        #[cfg(not(feature = "obs-trace"))]
        let phases = Vec::new();
        let secs = best_ns as f64 / 1e9;
        SchemePerf {
            scheme: scheme.label(),
            simulated_cycles: cycles,
            delivered_packets: delivered,
            wall_ns: best_ns,
            cycles_per_sec: cycles as f64 / secs,
            ns_per_packet: best_ns as f64 / delivered.max(1) as f64,
            phases,
        }
    });
    let total_cycles: u64 = schemes.iter().map(|s| s.simulated_cycles).sum();
    let total_ns: u64 = schemes.iter().map(|s| s.wall_ns).sum();
    PerfReport {
        schema: SCHEMA.into(),
        nodes: 64,
        rates: RATES.to_vec(),
        quick,
        total_cycles_per_sec: total_cycles as f64 / (total_ns as f64 / 1e9),
        schemes,
    }
}

/// Validate a report's schema: identifier, per-scheme coverage, and finite
/// positive throughput numbers. Returns a description of the first problem.
pub fn validate(report: &PerfReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            report.schema
        ));
    }
    if report.schemes.is_empty() {
        return Err("no per-scheme entries".into());
    }
    if !(report.total_cycles_per_sec.is_finite() && report.total_cycles_per_sec > 0.0) {
        return Err("aggregate cycles/sec must be finite and positive".into());
    }
    for s in &report.schemes {
        if s.scheme.is_empty() {
            return Err("empty scheme label".into());
        }
        if !(s.cycles_per_sec.is_finite() && s.cycles_per_sec > 0.0) {
            return Err(format!("{}: bad cycles_per_sec", s.scheme));
        }
        if !(s.ns_per_packet.is_finite() && s.ns_per_packet > 0.0) {
            return Err(format!("{}: bad ns_per_packet", s.scheme));
        }
        if s.simulated_cycles == 0 || s.delivered_packets == 0 {
            return Err(format!("{}: empty sweep", s.scheme));
        }
        for p in &s.phases {
            if p.name.is_empty() || p.calls == 0 {
                return Err(format!("{}: malformed phase entry", s.scheme));
            }
        }
    }
    Ok(())
}

/// Compare a fresh run against the checked-in baseline. `Err` describes
/// the first regression beyond [`REGRESSION_TOLERANCE`] — on aggregate
/// throughput, or on any single scheme (matched by label, so a baseline
/// scheme missing from the current run is itself a failure).
pub fn check_regression(baseline: &PerfReport, current: &PerfReport) -> Result<String, String> {
    let ratio = current.total_cycles_per_sec / baseline.total_cycles_per_sec;
    let verdict = format!(
        "aggregate {:.2e} cycles/s vs baseline {:.2e} ({}{:.1}%)",
        current.total_cycles_per_sec,
        baseline.total_cycles_per_sec,
        if ratio >= 1.0 { "+" } else { "" },
        (ratio - 1.0) * 100.0
    );
    if ratio < 1.0 - REGRESSION_TOLERANCE {
        return Err(format!("throughput regression: {verdict}"));
    }
    for base in &baseline.schemes {
        let Some(cur) = current.schemes.iter().find(|s| s.scheme == base.scheme) else {
            return Err(format!("scheme {} missing from current run", base.scheme));
        };
        let r = cur.cycles_per_sec / base.cycles_per_sec;
        if r < 1.0 - REGRESSION_TOLERANCE {
            return Err(format!(
                "throughput regression in {}: {:.2e} cycles/s vs baseline {:.2e} ({:.1}%)",
                base.scheme,
                cur.cycles_per_sec,
                base.cycles_per_sec,
                (r - 1.0) * 100.0
            ));
        }
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(total: f64) -> PerfReport {
        PerfReport {
            schema: SCHEMA.into(),
            nodes: 64,
            rates: RATES.to_vec(),
            quick: true,
            total_cycles_per_sec: total,
            schemes: vec![SchemePerf {
                scheme: "DHS".into(),
                simulated_cycles: 1000,
                delivered_packets: 10,
                wall_ns: 1000,
                cycles_per_sec: total,
                ns_per_packet: 100.0,
                phases: Vec::new(),
            }],
        }
    }

    #[test]
    fn validate_accepts_wellformed_and_rejects_broken() {
        assert!(validate(&dummy(1e6)).is_ok());
        let mut r = dummy(1e6);
        r.schema = "other/9".into();
        assert!(validate(&r).is_err());
        let mut r = dummy(1e6);
        r.schemes.clear();
        assert!(validate(&r).is_err());
        let mut r = dummy(1e6);
        r.schemes[0].cycles_per_sec = f64::NAN;
        assert!(validate(&r).is_err());
    }

    #[test]
    fn regression_gate_uses_tolerance() {
        let base = dummy(1e6);
        assert!(check_regression(&base, &dummy(1.05e6)).is_ok(), "faster");
        assert!(check_regression(&base, &dummy(0.95e6)).is_ok(), "within");
        assert!(check_regression(&base, &dummy(0.85e6)).is_err(), "beyond");
    }

    #[test]
    fn regression_gate_catches_single_scheme_drop() {
        let base = dummy(1e6);
        // Aggregate holds steady, but the one scheme craters: the
        // per-scheme clause must fire.
        let mut cur = dummy(1e6);
        cur.schemes[0].cycles_per_sec = 0.85e6;
        let err = check_regression(&base, &cur).unwrap_err();
        assert!(err.contains("regression in DHS"), "{err}");
        // A scheme disappearing from the report is also a failure.
        let mut cur = dummy(1e6);
        cur.schemes[0].scheme = "renamed".into();
        assert!(check_regression(&base, &cur)
            .unwrap_err()
            .contains("missing"));
    }

    #[test]
    fn validate_rejects_malformed_phase_entries() {
        let mut r = dummy(1e6);
        r.schemes[0].phases.push(PhaseStat {
            name: "phase_arrival".into(),
            calls: 0,
            nanos: 12,
        });
        assert!(validate(&r).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = dummy(2.5e6);
        let s = serde_json::to_string(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.schemes.len(), 1);
        assert!((back.total_cycles_per_sec - 2.5e6).abs() < 1.0);
    }
}
