//! JSON export for harness results (`--json <dir>`), so downstream tooling
//! (plots, EXPERIMENTS.md regeneration, CI diffs) can consume the numbers
//! without scraping tables.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Parse an optional `--json <dir>` argument from the process args.
pub fn json_dir_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Serialize `value` to `<dir>/<name>.json` (pretty-printed, stable field
/// order via serde derive ordering).
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Write results if `--json` was passed; report the path on stdout.
pub fn maybe_export<T: Serialize>(name: &str, value: &T) {
    if let Some(dir) = json_dir_from_args() {
        match write_json(&dir, name, value) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("json export failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Sample {
        x: f64,
        label: String,
    }

    #[test]
    fn writes_parseable_json() {
        let dir = std::env::temp_dir().join("pnoc_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_json(
            &dir,
            "sample",
            &Sample {
                x: 1.5,
                label: "hello".into(),
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["x"], 1.5);
        assert_eq!(back["label"], "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn curves_serialize() {
        // The figure payloads must be JSON-serializable end to end.
        let rows = crate::figures::table1();
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("1028K"));
    }
}
