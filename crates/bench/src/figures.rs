//! The computations behind every figure/table harness.
//!
//! Each `figN` function returns structured data; the binaries print it and
//! the integration tests assert the paper's qualitative claims on it.

use pnoc_cmp::{workload::all_paper_workloads, CmpConfig, CmpSystem, IpcSummary};
use pnoc_noc::metrics::RunSummary;
use pnoc_noc::network::{run_classed_point_detailed, run_synthetic_point};
use pnoc_noc::{AdmissionPolicy, Network, NetworkConfig, Scheme, TraceSource, MAX_CLASSES};
use pnoc_photonics::{ComponentBudget, NetworkDims};
use pnoc_power::{ActivityProfile, PowerBreakdown, PowerReport};
use pnoc_sim::RunPlan;
use pnoc_traffic::classes::TenantMixKind;
use std::sync::Arc;

use crate::fleet_map;
use pnoc_traffic::apps::all_paper_apps;
use pnoc_traffic::pattern::TrafficPattern;
use serde::Serialize;

/// Setaside size the paper's "w/ Setaside" curves use (sized like the
/// per-destination buffer/credit count of 8).
pub const PAPER_SETASIDE: usize = 8;

/// Fidelity of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Short windows, thinned grids (CI smoke).
    Quick,
    /// The full experiment.
    Full,
}

impl Fidelity {
    /// Parse from process args (`--quick` selects [`Fidelity::Quick`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Fidelity::Quick
        } else {
            Fidelity::Full
        }
    }

    /// The measurement plan for this fidelity.
    pub fn plan(self) -> RunPlan {
        match self {
            Fidelity::Quick => crate::grids::quick_plan(),
            Fidelity::Full => crate::grids::full_plan(),
        }
    }

    /// Possibly thin a rate grid.
    pub fn rates(self, grid: Vec<f64>) -> Vec<f64> {
        match self {
            Fidelity::Quick => crate::grids::thin(&grid),
            Fidelity::Full => grid,
        }
    }
}

/// One latency-vs-load curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// `(offered rate, run summary)` per grid point.
    pub points: Vec<(f64, RunSummary)>,
}

impl Curve {
    /// Latency values with saturated points rendered as `+∞`.
    pub fn latencies(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|(_, s)| {
                if s.saturated {
                    f64::INFINITY
                } else {
                    s.avg_latency
                }
            })
            .collect()
    }

    /// Highest offered rate this curve sustains without saturating.
    pub fn saturation_rate(&self) -> f64 {
        self.points
            .iter()
            .filter(|(_, s)| !s.saturated)
            .map(|(r, _)| *r)
            .fold(0.0, f64::max)
    }
}

/// Sweep `schemes × rates` under `pattern`, one simulation per point, on
/// the shared fleet. `configure` may adjust the per-run config (credits,
/// fairness…); it runs on fleet worker threads, hence the `Send + 'static`
/// bounds.
pub fn latency_curves(
    schemes: &[(String, Scheme)],
    pattern: TrafficPattern,
    rates: &[f64],
    plan: RunPlan,
    configure: impl Fn(&mut NetworkConfig) + Send + Sync + 'static,
) -> Vec<Curve> {
    let jobs: Vec<(usize, Scheme, f64)> = schemes
        .iter()
        .enumerate()
        .flat_map(|(i, &(_, s))| rates.iter().map(move |&r| (i, s, r)))
        .collect();
    let summaries = fleet_map(jobs, move |_, &(_, scheme, rate)| {
        let mut cfg = NetworkConfig::paper_default(scheme);
        configure(&mut cfg);
        run_synthetic_point(cfg, pattern, rate, plan)
    });
    schemes
        .iter()
        .enumerate()
        .map(|(i, (label, _))| Curve {
            label: label.clone(),
            points: rates
                .iter()
                .copied()
                .zip(
                    summaries[i * rates.len()..(i + 1) * rates.len()]
                        .iter()
                        .cloned(),
                )
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 2(b): token slot with different credit counts, UR.
// ---------------------------------------------------------------------------

/// Fig. 2(b): one curve per credit count ∈ {4, 8, 16, 32}.
pub fn fig2b(fid: Fidelity) -> Vec<Curve> {
    let rates = fid.rates(crate::grids::ur_rates_dense());
    let credits = [4usize, 8, 16, 32];
    let jobs: Vec<(usize, f64)> = credits
        .iter()
        .flat_map(|&c| rates.iter().map(move |&r| (c, r)))
        .collect();
    let summaries = fleet_map(jobs, move |_, &(c, rate)| {
        let mut cfg = NetworkConfig::paper_default(Scheme::TokenSlot);
        cfg.input_buffer = c;
        run_synthetic_point(cfg, TrafficPattern::UniformRandom, rate, fid.plan())
    });
    credits
        .iter()
        .enumerate()
        .map(|(i, &c)| Curve {
            label: format!("Credit_{c}"),
            points: rates
                .iter()
                .copied()
                .zip(
                    summaries[i * rates.len()..(i + 1) * rates.len()]
                        .iter()
                        .cloned(),
                )
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figs. 8 and 9: scheme comparisons per traffic pattern.
// ---------------------------------------------------------------------------

/// The global-arbitration group of Fig. 8.
pub fn global_group() -> Vec<(String, Scheme)> {
    vec![
        ("Token Channel".into(), Scheme::TokenChannel),
        ("GHS".into(), Scheme::Ghs { setaside: 0 }),
        (
            "GHS w/ Setaside".into(),
            Scheme::Ghs {
                setaside: PAPER_SETASIDE,
            },
        ),
    ]
}

/// The distributed-arbitration group of Fig. 9.
pub fn distributed_group() -> Vec<(String, Scheme)> {
    vec![
        ("Token Slot".into(), Scheme::TokenSlot),
        ("DHS".into(), Scheme::Dhs { setaside: 0 }),
        (
            "DHS w/ Setaside".into(),
            Scheme::Dhs {
                setaside: PAPER_SETASIDE,
            },
        ),
        ("DHS w/ Circulation".into(), Scheme::DhsCirculation),
    ]
}

/// The three paper patterns with their figure-specific rate grids.
fn pattern_grids(fid: Fidelity) -> Vec<(TrafficPattern, Vec<f64>)> {
    vec![
        (
            TrafficPattern::UniformRandom,
            fid.rates(crate::grids::ur_rates()),
        ),
        (
            TrafficPattern::BitComplement,
            fid.rates(crate::grids::bc_rates()),
        ),
        (
            TrafficPattern::Tornado,
            fid.rates(crate::grids::tor_rates()),
        ),
    ]
}

/// Fig. 8: `(pattern label, curves)` for the global group.
pub fn fig8(fid: Fidelity) -> Vec<(String, Vec<Curve>)> {
    pattern_grids(fid)
        .into_iter()
        .map(|(p, rates)| {
            let curves = latency_curves(&global_group(), p, &rates, fid.plan(), |_| {});
            (p.label().to_string(), curves)
        })
        .collect()
}

/// Fig. 9: `(pattern label, curves)` for the distributed group.
pub fn fig9(fid: Fidelity) -> Vec<(String, Vec<Curve>)> {
    pattern_grids(fid)
        .into_iter()
        .map(|(p, rates)| {
            let curves = latency_curves(&distributed_group(), p, &rates, fid.plan(), |_| {});
            (p.label().to_string(), curves)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fairness vs load: multi-tenant mixes with and without admission control.
// ---------------------------------------------------------------------------

/// All seven paper schemes — the fairness study spans both arbitration
/// families.
pub fn fairness_group() -> Vec<(String, Scheme)> {
    let mut g = global_group();
    g.extend(distributed_group());
    g
}

/// The admission policy the fairness figures arm: a tight-but-live token
/// bucket (every class refills ≥ 1 per period, so the starvation audit's
/// liveness precondition holds by construction).
pub fn fairness_admission() -> AdmissionPolicy {
    AdmissionPolicy::TokenBucket {
        period: 4,
        refill: [1; MAX_CLASSES],
        burst: [2; MAX_CLASSES],
    }
}

/// The multi-tenant mixes the fairness figures sweep (everything except
/// the degenerate single-class mix, which is the pre-QoS baseline the
/// latency figures already cover).
pub fn fairness_mixes() -> Vec<TenantMixKind> {
    vec![
        TenantMixKind::ElephantMice,
        TenantMixKind::BurstyAdversary,
        TenantMixKind::HotspotTenant,
    ]
}

/// Fairness vs load: for each tenant mix, one baseline (no admission) and
/// one QoS (token-bucket admission) curve per scheme over the UR rate
/// grid. The interesting columns of each point's [`RunSummary`] are
/// `class_jain` (per-class Jain fairness over delivered counts) and
/// `class_summaries` (per-class p99).
pub fn fairness_vs_load(fid: Fidelity) -> Vec<(String, Vec<Curve>)> {
    let rates = fid.rates(crate::grids::ur_rates());
    let schemes = fairness_group();
    let mixes = fairness_mixes();
    let plan = fid.plan();
    // Job grid: mix-major, then scheme, then admission, then rate —
    // mirrors the curve layout below so results slice back contiguously.
    let jobs: Vec<(TenantMixKind, Scheme, bool, f64)> = mixes
        .iter()
        .flat_map(|&mix| {
            let rates = &rates;
            schemes.iter().flat_map(move |&(_, scheme)| {
                [false, true]
                    .into_iter()
                    .flat_map(move |qos| rates.iter().map(move |&rate| (mix, scheme, qos, rate)))
            })
        })
        .collect();
    let summaries = fleet_map(jobs, move |_, &(mix, scheme, qos, rate)| {
        let mut cfg = NetworkConfig::paper_default(scheme);
        if qos {
            cfg.admission = fairness_admission();
        }
        run_classed_point_detailed(cfg, mix, TrafficPattern::UniformRandom, rate, plan).summary
    });
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for mix in &mixes {
        let mut curves = Vec::new();
        for (label, _) in &schemes {
            for qos in [false, true] {
                let points: Vec<(f64, RunSummary)> = rates
                    .iter()
                    .copied()
                    .zip(summaries[cursor..cursor + rates.len()].iter().cloned())
                    .collect();
                cursor += rates.len();
                curves.push(Curve {
                    label: if qos {
                        format!("{label} +QoS")
                    } else {
                        label.clone()
                    },
                    points,
                });
            }
        }
        out.push((mix.label().to_string(), curves));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 10: application traces.
// ---------------------------------------------------------------------------

/// Per-application average latency for one scheme group.
#[derive(Debug, Clone, Serialize)]
pub struct TraceResult {
    /// Application name.
    pub app: String,
    /// `(scheme label, average latency)` in group order.
    pub latencies: Vec<(String, f64)>,
}

/// Fig. 10: replay the 13 synthesized application traces through both scheme
/// groups. Returns `(global group results, distributed group results)`.
pub fn fig10(fid: Fidelity) -> (Vec<TraceResult>, Vec<TraceResult>) {
    let (length, warmup) = match fid {
        Fidelity::Quick => (12_000u64, 2_000u64),
        Fidelity::Full => (40_000, 5_000),
    };
    let apps = all_paper_apps();
    let dims = NetworkConfig::paper_default(Scheme::TokenSlot);
    // Synthesize each trace once, in parallel; traces are shared with the
    // fleet workers through an `Arc` (workers are persistent threads).
    let traces: Arc<Vec<_>> = Arc::new(fleet_map(apps, move |_, app| {
        app.synthesize(dims.cores(), dims.nodes, length, 0x00F1_6010)
    }));
    let groups: [Vec<(String, Scheme)>; 2] = [global_group(), distributed_group()];
    let mut out: Vec<Vec<TraceResult>> = Vec::new();
    for group in &groups {
        let jobs: Vec<(usize, Scheme)> = (0..traces.len())
            .flat_map(|t| group.iter().map(move |&(_, s)| (t, s)))
            .collect();
        let plan = RunPlan::new(warmup, length - warmup, 2_000);
        let shared = traces.clone();
        let lat = fleet_map(jobs, move |_, &(t, scheme)| {
            let cfg = NetworkConfig::paper_default(scheme);
            let mut net = Network::new(cfg).expect("valid config");
            let mut src = TraceSource::new(&shared[t], cfg.cores_per_node);
            let summary = net.run_open_loop(&mut src, plan);
            summary.avg_latency
        });
        let per_app = traces
            .iter()
            .enumerate()
            .map(|(t, trace)| TraceResult {
                app: trace.name.clone(),
                latencies: group
                    .iter()
                    .enumerate()
                    .map(|(gi, (label, _))| (label.clone(), lat[t * group.len() + gi]))
                    .collect(),
            })
            .collect();
        out.push(per_app);
    }
    let distributed = out.pop().expect("two groups");
    let global = out.pop().expect("two groups");
    (global, distributed)
}

/// Geometric-mean latency reduction of `scheme_idx` relative to column 0
/// (the baseline) across a Fig. 10 group.
pub fn mean_latency_reduction(results: &[TraceResult], scheme_idx: usize) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in results {
        let base = r.latencies[0].1;
        let other = r.latencies[scheme_idx].1;
        if base.is_finite() && other.is_finite() && base > 0.0 && other > 0.0 {
            log_sum += (other / base).ln();
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    1.0 - (log_sum / n as f64).exp()
}

// ---------------------------------------------------------------------------
// Fig. 11: sensitivity studies.
// ---------------------------------------------------------------------------

/// Fig. 11(a–e): for each handshake scheme, one latency-vs-load curve per
/// credit count — showing the handshake schemes are credit-independent.
pub fn fig11_credits(fid: Fidelity) -> Vec<(String, Vec<Curve>)> {
    let schemes: Vec<(String, Scheme)> = vec![
        ("GHS".into(), Scheme::Ghs { setaside: 0 }),
        (
            "GHS w/ Setaside".into(),
            Scheme::Ghs {
                setaside: PAPER_SETASIDE,
            },
        ),
        ("DHS".into(), Scheme::Dhs { setaside: 0 }),
        (
            "DHS w/ Setaside".into(),
            Scheme::Dhs {
                setaside: PAPER_SETASIDE,
            },
        ),
        ("DHS w/ Circulation".into(), Scheme::DhsCirculation),
    ];
    let rates = fid.rates(crate::grids::ur_rates_dense());
    let credits = [4usize, 8, 16, 32];
    schemes
        .into_iter()
        .map(|(label, scheme)| {
            let credit_curves: Vec<(String, Scheme)> = credits
                .iter()
                .map(|&c| (format!("Credit_{c}"), scheme))
                .collect();
            // Each "scheme" row is the same scheme at a different buffer size.
            let jobs: Vec<(usize, f64)> = credits
                .iter()
                .flat_map(|&c| rates.iter().map(move |&r| (c, r)))
                .collect();
            let summaries = fleet_map(jobs, move |_, &(c, rate)| {
                let mut cfg = NetworkConfig::paper_default(scheme);
                cfg.input_buffer = c;
                run_synthetic_point(cfg, TrafficPattern::UniformRandom, rate, fid.plan())
            });
            let curves = credit_curves
                .iter()
                .enumerate()
                .map(|(i, (clabel, _))| Curve {
                    label: clabel.clone(),
                    points: rates
                        .iter()
                        .copied()
                        .zip(
                            summaries[i * rates.len()..(i + 1) * rates.len()]
                                .iter()
                                .cloned(),
                        )
                        .collect(),
                })
                .collect();
            (label, curves)
        })
        .collect()
}

/// Fig. 11(f): GHS and DHS latency at UR 0.11 for setaside ∈ {1,2,4,8,16}.
pub fn fig11_setaside(fid: Fidelity) -> Vec<(String, Vec<(usize, f64)>)> {
    let sizes = [1usize, 2, 4, 8, 16];
    let rate = 0.11;
    let mut out = Vec::new();
    for (label, make) in [
        (
            "GHS",
            Box::new(|s: usize| Scheme::Ghs { setaside: s })
                as Box<dyn Fn(usize) -> Scheme + Send + Sync>,
        ),
        ("DHS", Box::new(|s: usize| Scheme::Dhs { setaside: s })),
    ] {
        let points = fleet_map(sizes.to_vec(), move |_, &s| {
            let cfg = NetworkConfig::paper_default(make(s));
            let summary = run_synthetic_point(cfg, TrafficPattern::UniformRandom, rate, fid.plan());
            if summary.saturated {
                f64::INFINITY
            } else {
                summary.avg_latency
            }
        });
        out.push((
            label.to_string(),
            sizes.iter().copied().zip(points).collect(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 12: power and energy.
// ---------------------------------------------------------------------------

/// One scheme's Fig. 12 row.
#[derive(Debug, Clone, Serialize)]
pub struct PowerRow {
    /// Scheme label.
    pub label: String,
    /// Fig. 12(a) breakdown, watts.
    pub breakdown: PowerBreakdown,
    /// Fig. 12(b) energy per packet, joules.
    pub energy_per_packet_j: f64,
}

/// Fig. 12: run every scheme at a common sustainable UR load, extract
/// activity, and price it with the power models.
pub fn fig12(fid: Fidelity) -> Vec<PowerRow> {
    let schemes = Scheme::paper_set(PAPER_SETASIDE);
    let plan = fid.plan();
    // 0.05 pkt/cycle/core is sustainable by every scheme (Fig. 8/9).
    let rate = 0.05;
    let rows = fleet_map(schemes, move |_, &scheme| {
        let cfg = NetworkConfig::paper_default(scheme);
        let mut net = Network::new(cfg).expect("valid config");
        let mut src = pnoc_noc::SyntheticSource::new(
            TrafficPattern::UniformRandom,
            rate,
            cfg.nodes,
            cfg.cores_per_node,
            cfg.seed,
        );
        net.run_open_loop(&mut src, plan);
        let activity = ActivityProfile::from_metrics(net.metrics(), plan.total());
        let report = PowerReport::paper_default();
        PowerRow {
            label: scheme.label(),
            breakdown: report.breakdown(scheme, &activity),
            energy_per_packet_j: report.energy_per_packet_j(scheme, &activity),
        }
    });
    rows
}

// ---------------------------------------------------------------------------
// Resilience: fault-rate sweep (DESIGN.md "Fault model & reliability").
// ---------------------------------------------------------------------------

/// Per-cycle fault rates the resilience harness sweeps (0 = fault engine
/// engaged but silent — must reproduce healthy latency exactly).
pub const FAULT_RATES: [f64; 5] = [0.0, 1e-6, 1e-5, 1e-4, 1e-3];

/// Offered load for the resilience sweep: sustainable by every scheme when
/// healthy (Fig. 8/9), so any collapse is attributable to faults.
pub const RESILIENCE_LOAD: f64 = 0.05;

/// The resilience comparison set: both credit baselines, one scheme per
/// handshake family, and circulation (backpressure without a handshake).
pub fn resilience_group() -> Vec<(String, Scheme)> {
    vec![
        ("Token Channel".into(), Scheme::TokenChannel),
        ("Token Slot".into(), Scheme::TokenSlot),
        ("GHS".into(), Scheme::Ghs { setaside: 0 }),
        (
            "DHS w/ Setaside".into(),
            Scheme::Dhs {
                setaside: PAPER_SETASIDE,
            },
        ),
        ("DHS w/ Circulation".into(), Scheme::DhsCirculation),
    ]
}

/// Sweep `resilience_group()` across `fault_rates` under UR at `load`, one
/// run per (scheme, rate), in parallel. `base` builds the per-scheme healthy
/// config; each run layers `FaultConfig::uniform(rate)` on top (which arms
/// timeout/retransmit recovery for the handshake schemes). Curve x-values
/// are *fault rates*, not offered loads.
pub fn resilience_curves(
    fault_rates: &[f64],
    load: f64,
    plan: RunPlan,
    base: impl Fn(Scheme) -> NetworkConfig + Send + Sync + 'static,
) -> Vec<Curve> {
    let schemes = resilience_group();
    let jobs: Vec<(usize, Scheme, f64)> = schemes
        .iter()
        .enumerate()
        .flat_map(|(i, &(_, s))| fault_rates.iter().map(move |&f| (i, s, f)))
        .collect();
    let summaries = fleet_map(jobs, move |_, &(_, scheme, fault_rate)| {
        let cfg = base(scheme).with_faults(pnoc_noc::FaultConfig::uniform(fault_rate));
        run_synthetic_point(cfg, TrafficPattern::UniformRandom, load, plan)
    });
    schemes
        .iter()
        .enumerate()
        .map(|(i, (label, _))| Curve {
            label: label.clone(),
            points: fault_rates
                .iter()
                .copied()
                .zip(
                    summaries[i * fault_rates.len()..(i + 1) * fault_rates.len()]
                        .iter()
                        .cloned(),
                )
                .collect(),
        })
        .collect()
}

/// The `resilience` harness: the paper-scale network under the standard
/// fault-rate grid. Expected shape: the handshake schemes deliver every
/// packet at every rate (bounded latency inflation, retransmit rate tracking
/// the fault rate), while the credit baselines leak unreturnable credits and
/// lose packets outright.
pub fn resilience(fid: Fidelity) -> Vec<Curve> {
    resilience_curves(
        &FAULT_RATES,
        RESILIENCE_LOAD,
        fid.plan(),
        NetworkConfig::paper_default,
    )
}

// ---------------------------------------------------------------------------
// Table I: component budgets.
// ---------------------------------------------------------------------------

/// Table I rows: `(label, data WG, token WG, handshake WG, rings string)`.
pub fn table1() -> Vec<(String, u64, u64, u64, String)> {
    let dims = NetworkDims::paper_default();
    [
        ("Token Slot".to_string(), Scheme::TokenSlot),
        ("GHS".to_string(), Scheme::Ghs { setaside: 0 }),
        ("DHS".to_string(), Scheme::Dhs { setaside: 0 }),
        ("DHS-cir".to_string(), Scheme::DhsCirculation),
    ]
    .into_iter()
    .map(|(label, scheme)| {
        let b = ComponentBudget::for_scheme(dims, scheme.features());
        let (d, t, h, rings) = b.table1_row();
        (label, d, t, h, rings)
    })
    .collect()
}

// ---------------------------------------------------------------------------
// IPC experiment (§V-B).
// ---------------------------------------------------------------------------

/// One workload's IPC under the four compared schemes.
#[derive(Debug, Clone, Serialize)]
pub struct IpcRow {
    /// Workload name.
    pub workload: String,
    /// `(scheme label, summary)` for token channel, GHS w/SB, token slot,
    /// DHS w/SB — the comparison the paper reports.
    pub results: Vec<(String, IpcSummary)>,
}

/// The IPC experiment: 128 cores, 4 MSHRs each, closed loop.
pub fn ipc(fid: Fidelity) -> Vec<IpcRow> {
    let (warmup, measure) = match fid {
        Fidelity::Quick => (1_000u64, 6_000u64),
        Fidelity::Full => (3_000, 20_000),
    };
    let schemes: Vec<(String, Scheme)> = vec![
        ("Token Channel".into(), Scheme::TokenChannel),
        (
            "GHS w/ Setaside".into(),
            Scheme::Ghs {
                setaside: PAPER_SETASIDE,
            },
        ),
        ("Token Slot".into(), Scheme::TokenSlot),
        (
            "DHS w/ Setaside".into(),
            Scheme::Dhs {
                setaside: PAPER_SETASIDE,
            },
        ),
    ];
    let workloads = Arc::new(all_paper_workloads());
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..schemes.len()).map(move |s| (w, s)))
        .collect();
    let scheme_vals: Vec<Scheme> = schemes.iter().map(|(_, s)| *s).collect();
    let shared = workloads.clone();
    let results = fleet_map(jobs, move |_, &(w, s)| {
        let mut net_cfg = NetworkConfig::paper_default(scheme_vals[s]);
        net_cfg.cores_per_node = 2; // 128 cores, as in the paper's CMP
        let mut sys = CmpSystem::new(net_cfg, CmpConfig::paper_default(), shared[w].clone());
        sys.run(warmup, measure)
    });
    workloads
        .iter()
        .enumerate()
        .map(|(w, wl)| IpcRow {
            workload: wl.name.to_string(),
            results: schemes
                .iter()
                .enumerate()
                .map(|(s, (label, _))| (label.clone(), results[w * schemes.len() + s]))
                .collect(),
        })
        .collect()
}

/// Mean IPC improvement of scheme column `a` over column `b` across rows.
pub fn mean_ipc_improvement(rows: &[IpcRow], a: usize, b: usize) -> f64 {
    let mut log_sum = 0.0;
    for r in rows {
        log_sum += (r.results[a].1.ipc / r.results[b].1.ipc).ln();
    }
    (log_sum / rows.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_paper_membership() {
        assert_eq!(global_group().len(), 3);
        assert_eq!(distributed_group().len(), 4);
    }

    #[test]
    fn table1_matches_paper_exactly() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        let expect = [
            ("Token Slot", 256, 1, 0, "1024K"),
            ("GHS", 256, 1, 1, "1028K"),
            ("DHS", 256, 1, 1, "1028K"),
            ("DHS-cir", 256, 1, 0, "1040K"),
        ];
        for (row, exp) in rows.iter().zip(expect) {
            assert_eq!(row.0, exp.0);
            assert_eq!(row.1, exp.1);
            assert_eq!(row.2, exp.2);
            assert_eq!(row.3, exp.3);
            assert_eq!(row.4, exp.4);
        }
    }

    #[test]
    fn curve_helpers() {
        use pnoc_noc::metrics::NetworkMetrics;
        let mk = |saturated: bool| {
            let mut m = NetworkMetrics::new();
            m.generated_measured = 100;
            m.delivered_measured = if saturated { 10 } else { 100 };
            for _ in 0..m.delivered_measured {
                m.latency.record(12.0);
                m.latency_rec.record(12.0);
            }
            RunSummary::from_metrics::<&[u64]>(&m, &[], 1000, 4, 0.1)
        };
        let c = Curve {
            label: "x".into(),
            points: vec![(0.05, mk(false)), (0.1, mk(false)), (0.2, mk(true))],
        };
        assert_eq!(c.saturation_rate(), 0.1);
        let l = c.latencies();
        assert!(l[0].is_finite());
        assert!(l[2].is_infinite());
    }

    #[test]
    fn fidelity_thins() {
        let full = Fidelity::Full.rates(crate::grids::ur_rates());
        let quick = Fidelity::Quick.rates(crate::grids::ur_rates());
        assert!(quick.len() < full.len());
    }
}
