//! # pnoc-bench — paper-reproduction harnesses
//!
//! One binary per table/figure of the paper (run with `--release`):
//!
//! | Binary      | Reproduces | Content |
//! |-------------|-----------|---------|
//! | `fig2b`     | Fig. 2(b) | token slot latency vs load, credits ∈ {4, 8, 16, 32}, UR |
//! | `fig8`      | Fig. 8    | token channel vs GHS vs GHS w/setaside; UR / BC / TOR |
//! | `fig9`      | Fig. 9    | token slot vs DHS vs DHS w/setaside vs DHS w/circulation; UR / BC / TOR |
//! | `fig10`     | Fig. 10   | latency on the 13 application traces, both scheme groups |
//! | `fig11`     | Fig. 11   | credit sensitivity (a–e) and setaside-size study (f) |
//! | `fig12`     | Fig. 12   | power breakdown (a) and energy per packet (b) |
//! | `table1`    | Table I   | per-scheme optical component budgets |
//! | `ipc`       | §V-B text | IPC comparison on the closed-loop CMP |
//! | `ablations` | DESIGN.md §8 | ring size, ejection bandwidth, fairness policy |
//! | `swmr`      | §II-B     | handshake vs partitioned credits on an SWMR fabric |
//! | `mesh_vs_ring` | §II-C  | electrical 2D-mesh baseline vs the photonic ring |
//! | `resilience` | DESIGN.md §7 | fault-rate sweep: handshake recovery vs credit-leak collapse |
//! | `calibrate` | (dev)     | quick sweep for model sanity-checking |
//!
//! Every binary accepts `--quick` for a reduced-fidelity pass (shorter
//! windows, sparser grids) used by CI-style smoke checks; the default is the
//! full experiment. The figure binaries also accept `--svg <dir>` (rendered
//! charts via [`plot`]) and `--json <dir>` (structured results via
//! [`export`]). The computation lives in [`figures`] so integration tests
//! can assert the paper's qualitative claims on the same code the binaries
//! print from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use pnoc_fleet::Fleet;

pub mod export;
pub mod figures;
pub mod grids;
pub mod perf;
pub mod plot;
pub mod table;
pub mod trace_bench;

pub use figures::Fidelity;
pub use plot::{render_jain_svg, render_latency_svg, PlotSpec};
pub use table::Table;

/// The process-wide work-stealing executor every harness sweep runs on.
///
/// Created lazily on first use with the default thread policy (`--threads`
/// override > `PNOC_THREADS` > detected parallelism, cgroup-quota-aware —
/// see [`pnoc_sim::sweep::default_threads`]). Binaries that accept
/// `--threads` must call [`apply_thread_flag`] *before* the first sweep so
/// the override is visible when the fleet spins up.
pub fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(Fleet::with_default_threads)
}

/// Map `inputs` through the shared [`fleet`], preserving input order — the
/// drop-in harness replacement for `pnoc_sim::run_parallel`, scheduled by
/// work stealing instead of a shared job counter.
pub fn fleet_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync + 'static,
    O: Send + 'static,
    F: Fn(usize, &I) -> O + Send + Sync + 'static,
{
    fleet().map(inputs, f)
}

/// Parse a `--threads N` flag from the process args and install it as the
/// global thread override (see [`pnoc_sim::sweep::set_thread_override`]).
/// Returns an error string for a malformed or missing value.
pub fn apply_thread_flag() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--threads" {
            let v = args
                .get(i + 1)
                .ok_or("--threads requires a positive integer")?;
            let n: usize = v
                .parse()
                .map_err(|_| format!("--threads: invalid count {v:?}"))?;
            if n == 0 {
                return Err("--threads must be ≥ 1".into());
            }
            pnoc_sim::sweep::set_thread_override(n);
        }
    }
    Ok(())
}
