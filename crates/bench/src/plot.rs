//! Minimal SVG line charts for the reproduced figures.
//!
//! The harness binaries can render each latency-vs-load figure to an SVG that
//! mirrors the paper's presentation (y-axis clipped at 100 cycles, one series
//! per scheme). Hand-rolled — no plotting dependency — and deliberately
//! simple: polylines, ticks, a legend.

use crate::figures::Curve;
use pnoc_noc::metrics::RunSummary;
use std::fmt::Write as _;

/// Chart geometry and axes.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Clip the y axis here (the paper clips latency plots at 100 cycles).
    pub y_max: f64,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl PlotSpec {
    /// The paper's standard latency plot: y clipped at 100 cycles.
    pub fn latency(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: "Workload (packets/cycle/core)".into(),
            y_label: "Latency (cycles)".into(),
            y_max: 100.0,
            width: 640,
            height: 420,
        }
    }

    /// Per-class fairness plot: Jain index lives in (0, 1].
    pub fn jain(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: "Workload (packets/cycle/core)".into(),
            y_label: "Jain fairness index".into(),
            y_max: 1.0,
            width: 640,
            height: 420,
        }
    }
}

/// Series colours (colour-blind-safe-ish palette).
const COLORS: [&str; 8] = [
    "#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d5a97", "#00798c", "#d1903a", "#3d3d3d",
];

/// Render `curves` (offered rate → latency; saturated points are drawn as a
/// vertical run-off at the clip line) into an SVG document.
pub fn render_latency_svg(spec: &PlotSpec, curves: &[Curve]) -> String {
    render_metric_svg(spec, curves, &|s: &RunSummary| s.avg_latency, true)
}

/// Render per-class Jain fairness (y ∈ (0, 1]) vs load. Saturated points
/// still carry a meaningful fairness value, so the series runs through them
/// instead of cutting off at the clip line.
pub fn render_jain_svg(spec: &PlotSpec, curves: &[Curve]) -> String {
    render_metric_svg(spec, curves, &|s: &RunSummary| s.class_jain, false)
}

/// Shared chart body: `value` picks the y metric out of each point summary;
/// `runoff` draws saturated points at the clip line and ends the series
/// there (the paper's latency-plot convention).
fn render_metric_svg(
    spec: &PlotSpec,
    curves: &[Curve],
    value: &dyn Fn(&RunSummary) -> f64,
    runoff: bool,
) -> String {
    let margin_l = 64.0;
    let margin_r = 16.0;
    let margin_t = 36.0;
    // Room for the legend: one 16 px row per series. Charts with many
    // series grow the canvas downward rather than squeezing the plot.
    let legend_extra = (60.0 + 16.0 * curves.len() as f64 - 110.0).max(0.0);
    let margin_b = 110.0 + legend_extra;
    let w = spec.width as f64;
    let h = spec.height as f64 + legend_extra;
    let plot_w = w - margin_l - margin_r;
    let plot_h = h - margin_t - margin_b;

    let x_max = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|(r, _)| *r))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let x_of = |x: f64| margin_l + x / x_max * plot_w;
    let y_of = |y: f64| margin_t + (1.0 - (y.min(spec.y_max) / spec.y_max)) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{h:.0}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        spec.width
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        w / 2.0,
        xml_escape(&spec.title)
    );

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{margin_l}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" y2="{}" stroke="black"/>"#,
        margin_t + plot_h,
        margin_l + plot_w,
        margin_t + plot_h,
        margin_t + plot_h,
    );
    // Y ticks every y_max/5; decimal labels when the axis is fractional.
    let tick_prec = usize::from(spec.y_max <= 5.0);
    for i in 0..=5 {
        let yv = spec.y_max * i as f64 / 5.0;
        let y = y_of(yv);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{margin_l}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{yv:.tick_prec$}</text>"#,
            margin_l - 4.0,
            margin_l - 8.0,
            y + 4.0,
        );
    }
    // X ticks: 6 divisions.
    for i in 0..=6 {
        let xv = x_max * i as f64 / 6.0;
        let x = x_of(xv);
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" text-anchor="middle">{:.3}</text>"#,
            margin_t + plot_h,
            margin_t + plot_h + 4.0,
            margin_t + plot_h + 18.0,
            xv
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        margin_l + plot_w / 2.0,
        margin_t + plot_h + 38.0,
        xml_escape(&spec.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        margin_t + plot_h / 2.0,
        margin_t + plot_h / 2.0,
        xml_escape(&spec.y_label)
    );

    // Series.
    for (i, curve) in curves.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut path = String::new();
        let mut started = false;
        for (rate, summary) in &curve.points {
            let y = if runoff && summary.saturated {
                spec.y_max
            } else {
                value(summary)
            };
            if !y.is_finite() {
                continue;
            }
            let _ = write!(path, "{:.1},{:.1} ", x_of(*rate), y_of(y));
            started = true;
            if runoff && summary.saturated {
                break; // run-off: stop the series at saturation
            }
        }
        if started {
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.trim_end()
            );
        }
        // Point markers.
        for (rate, summary) in &curve.points {
            let y = if runoff && summary.saturated {
                spec.y_max
            } else {
                value(summary)
            };
            if !y.is_finite() {
                continue;
            }
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                x_of(*rate),
                y_of(y)
            );
            if runoff && summary.saturated {
                break;
            }
        }
        // Legend entry.
        let ly = margin_t + plot_h + 52.0 + 16.0 * i as f64;
        let _ = write!(
            svg,
            r#"<line x1="{margin_l}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
            margin_l + 24.0,
            margin_l + 30.0,
            ly + 4.0,
            xml_escape(&curve.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Write each `(name, spec, curves)` chart into `dir` as `<name>.svg`.
pub fn write_charts(
    dir: &std::path::Path,
    charts: &[(String, PlotSpec, Vec<Curve>)],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::new();
    for (name, spec, curves) in charts {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, render_latency_svg(spec, curves))?;
        out.push(path);
    }
    Ok(out)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Parse an optional `--svg <dir>` argument from the process args.
pub fn svg_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_noc::metrics::{NetworkMetrics, RunSummary};

    fn summary(lat: f64, saturated: bool) -> RunSummary {
        let mut m = NetworkMetrics::new();
        m.generated_measured = 100;
        m.delivered_measured = if saturated { 10 } else { 100 };
        for _ in 0..m.delivered_measured {
            m.latency.record(lat);
            m.latency_rec.record(lat);
        }
        RunSummary::from_metrics::<&[u64]>(&m, &[], 100, 4, 0.1)
    }

    fn curve() -> Curve {
        Curve {
            label: "DHS <test>".into(),
            points: vec![
                (0.05, summary(10.0, false)),
                (0.10, summary(20.0, false)),
                (0.15, summary(90.0, true)),
            ],
        }
    }

    #[test]
    fn svg_has_structure() {
        let spec = PlotSpec::latency("Fig. test");
        let svg = render_latency_svg(&spec, &[curve()]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("Fig. test"));
        // Labels are XML-escaped.
        assert!(svg.contains("DHS &lt;test&gt;"));
        assert!(!svg.contains("DHS <test>"));
    }

    #[test]
    fn saturated_points_clip_at_y_max() {
        let spec = PlotSpec::latency("clip");
        let svg = render_latency_svg(&spec, &[curve()]);
        // y_of(100) for the saturated point = margin_t exactly (top of plot).
        assert!(svg.contains("cy=\"36.0\""), "saturated marker at clip line");
    }

    #[test]
    fn write_charts_creates_files() {
        let dir = std::env::temp_dir().join("pnoc_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let charts = vec![(
            "fig_unit".to_string(),
            PlotSpec::latency("unit"),
            vec![curve()],
        )];
        let paths = write_charts(&dir, &charts).unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].exists());
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_curves_render_axes_only() {
        let spec = PlotSpec::latency("empty");
        let svg = render_latency_svg(&spec, &[]);
        assert!(svg.contains("<line"));
        assert!(!svg.contains("<polyline"));
    }
}
