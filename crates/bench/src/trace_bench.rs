//! Trace-ingestion throughput: the data-path baseline for `pnoc-trace`.
//!
//! [`measure`] generates a PTRC stream from the most network-intensive
//! application profile and times the two halves of the trace data path:
//! **write** (streaming synthesis through [`pnoc_trace::TraceWriter`],
//! delta + varint encoding, per-chunk CRC) and **ingest**
//! ([`pnoc_trace::StreamingTraceReader`] decoding every event, CRC
//! verification included). The numbers quantify the encode/decode hot
//! loops, not the simulator: a regression here means trace replay got
//! slower at feeding the network.
//!
//! The `trace` binary emits the report as `BENCH_trace.json` (schema
//! [`SCHEMA`]); `ci.sh` reruns the measurement in `--quick` mode and fails
//! if ingestion throughput regresses more than [`REGRESSION_TOLERANCE`]
//! against the checked-in baseline. Each timed pass runs twice and the
//! faster pass is kept (best-of-N absorbs scheduler noise; the encoder and
//! decoder are deterministic, so both passes do identical work).

use pnoc_traffic::paper_app;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Report schema identifier (bump on layout changes).
pub const SCHEMA: &str = "pnoc-trace/1";

/// Relative throughput loss that fails the CI gate, applied to both the
/// write and the ingest rate.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// The application profile the benchmark streams (NAS integer sort — the
/// most network-intensive trace of the paper's set, so the densest stream).
pub const APP: &str = "nas.is";

/// The trace dimensions: the paper network's 256 cores on 64 nodes.
pub const CORES: usize = 256;

/// Nodes of the benchmark trace.
pub const NODES: usize = 64;

/// The trace-ingestion throughput report written to `BENCH_trace.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether the reduced-length (`--quick`) trace was used.
    pub quick: bool,
    /// Application profile streamed.
    pub app: String,
    /// Trace length in cycles.
    pub length: u64,
    /// Events in the benchmark trace.
    pub events: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Encoded bytes per event (compactness of the format).
    pub bytes_per_event: f64,
    /// Streaming synthesis + encode throughput, events/second (best of two).
    pub write_events_per_sec: f64,
    /// Streaming decode throughput, events/second (best of two) — the
    /// number the CI regression gate compares.
    pub ingest_events_per_sec: f64,
    /// Streaming decode throughput, megabytes/second.
    pub ingest_mb_per_sec: f64,
}

/// Trace length (cycles) for the given fidelity.
pub fn bench_length(quick: bool) -> u64 {
    if quick {
        20_000
    } else {
        200_000
    }
}

/// Measure write and ingest throughput of the PTRC data path.
///
/// The timed passes run as jobs on a dedicated **single-worker**
/// [`pnoc_fleet::Fleet`] — one worker serializes the measurements so the
/// encoder and decoder never contend for cores, keeping the numbers
/// comparable with the checked-in baseline regardless of host parallelism.
pub fn measure(quick: bool) -> TraceBenchReport {
    let app = paper_app(APP).expect("benchmark profile exists");
    let length = bench_length(quick);
    let rig = pnoc_fleet::Fleet::new(1);
    // Untimed warmup: page in code and warm the allocator on the same
    // worker thread the timed passes will use.
    rig.map(vec![()], {
        let app = app.clone();
        move |_, ()| {
            let _ = pnoc_trace::generate_app(&app, CORES, NODES, 2_000, 1, 4096, Vec::new());
        }
    });
    let results = rig.map(vec![()], move |_, ()| {
        // Timed write passes (identical deterministic work each pass).
        let mut best_write_ns = u64::MAX;
        let mut encoded: Vec<u8> = Vec::new();
        let mut events = 0u64;
        for _ in 0..2 {
            let t0 = Instant::now();
            let (bytes, stats) =
                pnoc_trace::generate_app(&app, CORES, NODES, length, 7, 4096, Vec::new())
                    .expect("generation into memory cannot fail");
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            best_write_ns = best_write_ns.min(ns);
            encoded = bytes;
            events = stats.events;
        }
        // Timed ingest passes over the encoded bytes.
        let mut best_ingest_ns = u64::MAX;
        for _ in 0..2 {
            let t0 = Instant::now();
            let reader = pnoc_trace::StreamingTraceReader::open(encoded.as_slice())
                .expect("benchmark trace is well-formed");
            let mut decoded = 0u64;
            for ev in reader {
                ev.expect("benchmark trace is uncorrupted");
                decoded += 1;
            }
            assert_eq!(decoded, events, "decode covers every event");
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            best_ingest_ns = best_ingest_ns.min(ns);
        }
        (events, encoded.len() as u64, best_write_ns, best_ingest_ns)
    });
    let (events, bytes, write_ns, ingest_ns) = results[0];
    TraceBenchReport {
        schema: SCHEMA.into(),
        quick,
        app: APP.into(),
        length,
        events,
        bytes,
        bytes_per_event: bytes as f64 / events.max(1) as f64,
        write_events_per_sec: events as f64 / (write_ns as f64 / 1e9),
        ingest_events_per_sec: events as f64 / (ingest_ns as f64 / 1e9),
        ingest_mb_per_sec: bytes as f64 / 1e6 / (ingest_ns as f64 / 1e9),
    }
}

/// Validate a report's schema: identifier, coverage, and finite positive
/// throughput numbers. Returns a description of the first problem.
pub fn validate(report: &TraceBenchReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            report.schema
        ));
    }
    if report.events == 0 || report.bytes == 0 {
        return Err("empty benchmark trace".into());
    }
    for (name, v) in [
        ("bytes_per_event", report.bytes_per_event),
        ("write_events_per_sec", report.write_events_per_sec),
        ("ingest_events_per_sec", report.ingest_events_per_sec),
        ("ingest_mb_per_sec", report.ingest_mb_per_sec),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("{name} must be finite and positive (got {v})"));
        }
    }
    Ok(())
}

/// Compare a fresh run against the checked-in baseline. `Err` describes
/// the first regression beyond [`REGRESSION_TOLERANCE`] — on ingest (the
/// primary number) or on write throughput.
pub fn check_regression(
    baseline: &TraceBenchReport,
    current: &TraceBenchReport,
) -> Result<String, String> {
    let ratio = current.ingest_events_per_sec / baseline.ingest_events_per_sec;
    let verdict = format!(
        "ingest {:.2e} events/s vs baseline {:.2e} ({}{:.1}%)",
        current.ingest_events_per_sec,
        baseline.ingest_events_per_sec,
        if ratio >= 1.0 { "+" } else { "" },
        (ratio - 1.0) * 100.0
    );
    if ratio < 1.0 - REGRESSION_TOLERANCE {
        return Err(format!("ingest regression: {verdict}"));
    }
    let wr = current.write_events_per_sec / baseline.write_events_per_sec;
    if wr < 1.0 - REGRESSION_TOLERANCE {
        return Err(format!(
            "write regression: {:.2e} events/s vs baseline {:.2e} ({:.1}%)",
            current.write_events_per_sec,
            baseline.write_events_per_sec,
            (wr - 1.0) * 100.0
        ));
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(ingest: f64, write: f64) -> TraceBenchReport {
        TraceBenchReport {
            schema: SCHEMA.into(),
            quick: true,
            app: APP.into(),
            length: 20_000,
            events: 1_000_000,
            bytes: 4_000_000,
            bytes_per_event: 4.0,
            write_events_per_sec: write,
            ingest_events_per_sec: ingest,
            ingest_mb_per_sec: ingest * 4.0 / 1e6,
        }
    }

    #[test]
    fn validate_accepts_wellformed_and_rejects_broken() {
        assert!(validate(&dummy(1e8, 5e7)).is_ok());
        let mut r = dummy(1e8, 5e7);
        r.schema = "other/9".into();
        assert!(validate(&r).is_err());
        let mut r = dummy(1e8, 5e7);
        r.events = 0;
        assert!(validate(&r).is_err());
        let mut r = dummy(1e8, 5e7);
        r.ingest_events_per_sec = f64::NAN;
        assert!(validate(&r).is_err());
    }

    #[test]
    fn regression_gate_uses_tolerance() {
        let base = dummy(1e8, 5e7);
        assert!(
            check_regression(&base, &dummy(1.05e8, 5e7)).is_ok(),
            "faster"
        );
        assert!(
            check_regression(&base, &dummy(0.95e8, 5e7)).is_ok(),
            "within"
        );
        assert!(
            check_regression(&base, &dummy(0.85e8, 5e7)).is_err(),
            "beyond"
        );
        // A write-side collapse fails even when ingest holds.
        assert!(check_regression(&base, &dummy(1e8, 0.8 * 5e7)).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = dummy(2.5e8, 1e8);
        let s = serde_json::to_string(&r).unwrap();
        let back: TraceBenchReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert!((back.ingest_events_per_sec - 2.5e8).abs() < 1.0);
    }

    #[test]
    fn quick_measurement_is_wellformed() {
        // A tiny end-to-end pass (much shorter than even --quick) through
        // the real measurement path, using the public pieces directly.
        let app = paper_app(APP).expect("profile");
        let (bytes, stats) =
            pnoc_trace::generate_app(&app, CORES, NODES, 1_000, 7, 1024, Vec::new()).unwrap();
        assert!(stats.events > 0);
        let reader = pnoc_trace::StreamingTraceReader::open(bytes.as_slice()).unwrap();
        assert_eq!(reader.count(), stats.events as usize);
    }
}
