//! Quick-fidelity smoke runs of the figure computations themselves, so the
//! exact code the harness binaries execute is covered by `cargo test`.

use pnoc_bench::figures::{self, Fidelity};

#[test]
fn fig12_pipeline_produces_paper_shapes() {
    let rows = figures::fig12(Fidelity::Quick);
    assert_eq!(rows.len(), 7, "all seven schemes priced");
    // Laser + heating dominate everywhere.
    for r in &rows {
        assert!(
            r.breakdown.static_fraction() > 0.6,
            "{}: static share {}",
            r.label,
            r.breakdown.static_fraction()
        );
        assert!(r.energy_per_packet_j.is_finite() && r.energy_per_packet_j > 0.0);
    }
    // Token slot is the cheapest total.
    let ts = rows
        .iter()
        .find(|r| r.label == "Token Slot")
        .expect("token slot row");
    for r in &rows {
        assert!(
            r.breakdown.total_w() >= ts.breakdown.total_w() - 1e-9,
            "{} cheaper than token slot",
            r.label
        );
    }
    // Circulation's energy/packet within 10% of DHS w/ setaside.
    let dhs = rows.iter().find(|r| r.label == "DHS w/ Setaside").unwrap();
    let cir = rows
        .iter()
        .find(|r| r.label == "DHS w/ Circulation")
        .unwrap();
    let rel = (cir.energy_per_packet_j - dhs.energy_per_packet_j).abs() / dhs.energy_per_packet_j;
    assert!(rel < 0.1, "circulation energy overhead {rel}");
}

#[test]
fn fig11_setaside_study_shows_small_buffers_suffice() {
    let rows = figures::fig11_setaside(Fidelity::Quick);
    assert_eq!(rows.len(), 2, "GHS and DHS rows");
    for (label, points) in &rows {
        assert_eq!(points.len(), 5, "{label}: sizes 1,2,4,8,16");
        let l2 = points[1].1; // setaside = 2
        let l16 = points[4].1; // setaside = 16
        assert!(
            l2.is_finite() && l16.is_finite(),
            "{label}: UR 0.11 must be sustainable at small setaside"
        );
        assert!(
            (l2 - l16).abs() < 0.25 * l16.max(1.0),
            "{label}: setaside 2 within 25% of 16 ({l2} vs {l16})"
        );
    }
}

#[test]
fn table1_is_exact() {
    let rows = figures::table1();
    let rings: Vec<&str> = rows.iter().map(|r| r.4.as_str()).collect();
    assert_eq!(rings, ["1024K", "1028K", "1028K", "1040K"]);
}

#[test]
fn resilience_handshake_survives_credit_schemes_collapse() {
    // The resilience sweep on the small geometry (fast enough for a debug
    // test); the binary runs the same code on the paper-scale network.
    use pnoc_noc::NetworkConfig;
    use pnoc_sim::RunPlan;
    let rates = [0.0, 1e-5, 1e-3];
    let curves = figures::resilience_curves(
        &rates,
        figures::RESILIENCE_LOAD,
        RunPlan::quick(),
        NetworkConfig::small,
    );
    assert_eq!(curves.len(), 5, "five schemes swept");
    for c in &curves {
        assert_eq!(c.points.len(), rates.len());
        // Fault rate 0 through the engine must look healthy for everyone.
        let (r0, s0) = &c.points[0];
        assert_eq!(*r0, 0.0);
        assert_eq!(s0.lost_packets, 0, "{}: loss without faults", c.label);
        assert_eq!(s0.credit_leaks, 0, "{}: leak without faults", c.label);
        assert!(!s0.saturated, "{}: saturated at healthy load", c.label);
    }
    let handshake = |label: &str| label.contains("GHS") || label == "DHS w/ Setaside";
    for c in curves.iter().filter(|c| handshake(&c.label)) {
        for (rate, s) in &c.points {
            assert_eq!(s.lost_packets, 0, "{} lost packets at {rate:e}", c.label);
            assert_eq!(s.abandoned, 0, "{} abandoned at {rate:e}", c.label);
            assert_eq!(s.credit_leaks, 0, "{} leaked at {rate:e}", c.label);
        }
        // Latency inflation stays bounded even at the harshest rate.
        let healthy = c.points[0].1.avg_latency;
        let worst = c.points.last().expect("points").1.avg_latency;
        assert!(
            worst < 2.0 * healthy,
            "{}: latency inflated {healthy} -> {worst}",
            c.label
        );
        assert!(
            c.points.last().expect("points").1.timeout_retransmissions > 0,
            "{}: recovery never exercised at 1e-3",
            c.label
        );
    }
    // Both credit baselines lose packets and leak credits at the top rate.
    for label in ["Token Channel", "Token Slot"] {
        let c = curves
            .iter()
            .find(|c| c.label == label)
            .expect("baseline row");
        let (_, worst) = c.points.last().expect("points");
        assert!(
            worst.lost_packets > 0,
            "{label} should lose packets at 1e-3"
        );
        assert!(
            worst.credit_leaks > 0,
            "{label} should leak credits at 1e-3"
        );
    }
}
