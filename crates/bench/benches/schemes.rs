//! Whole-network benchmark: simulated cycles per second for each scheme at a
//! moderate uniform-random load on the paper's 64-node configuration. This is
//! the cost that bounds every figure harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pnoc_noc::{Network, NetworkConfig, PacketKind, Scheme, SyntheticSource, TrafficSource};

fn bench_network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_step_64n");
    group.throughput(Throughput::Elements(1));
    for scheme in Scheme::paper_set(8) {
        let cfg = NetworkConfig::paper_default(scheme);
        let mut net = Network::new(cfg).expect("valid config");
        let mut src = SyntheticSource::new(
            pnoc_traffic::pattern::TrafficPattern::UniformRandom,
            0.09,
            cfg.nodes,
            cfg.cores_per_node,
            42,
        );
        // Reach steady state before measuring.
        let mut buf = Vec::new();
        for _ in 0..5_000 {
            buf.clear();
            src.generate(net.now(), &mut buf);
            for &(core, dst, kind, _) in &buf {
                net.inject(core, dst, kind, 0, false);
            }
            net.step();
        }
        group.bench_function(BenchmarkId::from_parameter(scheme.label()), |b| {
            b.iter(|| {
                buf.clear();
                src.generate(net.now(), &mut buf);
                for &(core, dst, _, _) in &buf {
                    net.inject(core, dst, PacketKind::Data, 0, false);
                }
                net.step();
            });
        });
    }
    group.finish();
}

fn bench_other_fabrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_step_64n");
    group.throughput(Throughput::Elements(1));

    // SWMR with handshake + setaside.
    {
        let cfg = pnoc_noc::swmr::SwmrConfig::paper_handshake(8);
        let mut net = pnoc_noc::swmr::SwmrNetwork::new(cfg).expect("valid config");
        let mut src = SyntheticSource::new(
            pnoc_traffic::pattern::TrafficPattern::UniformRandom,
            0.09,
            cfg.nodes,
            cfg.cores_per_node,
            42,
        );
        let mut buf = Vec::new();
        for _ in 0..5_000 {
            buf.clear();
            src.generate(net.now(), &mut buf);
            for &(core, dst, kind, _) in &buf {
                net.inject(core, dst, kind, 0, false);
            }
            net.step();
        }
        group.bench_function(BenchmarkId::from_parameter("SWMR handshake+SA8"), |b| {
            b.iter(|| {
                buf.clear();
                src.generate(net.now(), &mut buf);
                for &(core, dst, _, _) in &buf {
                    net.inject(core, dst, PacketKind::Data, 0, false);
                }
                net.step();
            });
        });
    }

    // Electrical 8×8 mesh.
    {
        let cfg = pnoc_noc::emesh::MeshConfig::paper_comparable();
        let mut net = pnoc_noc::emesh::MeshNetwork::new(cfg).expect("valid config");
        let mut src = SyntheticSource::new(
            pnoc_traffic::pattern::TrafficPattern::UniformRandom,
            0.05,
            cfg.nodes(),
            cfg.cores_per_node,
            42,
        );
        let mut buf = Vec::new();
        for _ in 0..5_000 {
            buf.clear();
            src.generate(net.now(), &mut buf);
            for &(core, dst, kind, _) in &buf {
                net.inject(core, dst, kind, 0, false);
            }
            net.step();
        }
        group.bench_function(BenchmarkId::from_parameter("mesh 8x8"), |b| {
            b.iter(|| {
                buf.clear();
                src.generate(net.now(), &mut buf);
                for &(core, dst, _, _) in &buf {
                    net.inject(core, dst, PacketKind::Data, 0, false);
                }
                net.step();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_step, bench_other_fabrics);
criterion_main!(benches);
