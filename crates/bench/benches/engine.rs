//! Microbenchmarks of the simulation-kernel hot paths: the per-cycle cost of
//! the structures every simulated cycle touches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnoc_noc::calendar::Calendar;
use pnoc_noc::slots::SlotRing;
use pnoc_sim::stats::Histogram;
use pnoc_sim::SimRng;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("below_64", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| black_box(rng.below(64)));
    });
    g.bench_function("geometric_gap", |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| black_box(rng.geometric_gap(0.1)));
    });
    g.finish();
}

fn bench_slot_ring(c: &mut Criterion) {
    c.bench_function("slot_ring_advance_put_take", |b| {
        let mut ring: SlotRing<u64> = SlotRing::new(8);
        let mut i = 0u64;
        b.iter(|| {
            ring.advance();
            let seg = (i % 8) as usize;
            if ring.is_free(seg) {
                ring.put(seg, i);
            }
            black_box(ring.take((i.wrapping_add(3) % 8) as usize));
            i += 1;
        });
    });
}

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar_schedule_drain", |b| {
        let mut cal: Calendar<u64> = Calendar::new(16);
        let mut now = 0u64;
        b.iter(|| {
            cal.schedule(now + 9, now);
            black_box(cal.drain(now).len());
            now += 1;
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::cycles(2048);
        let mut x = 0.0f64;
        b.iter(|| {
            h.record(black_box(x % 2000.0));
            x += 13.7;
        });
    });
}

criterion_group!(
    benches,
    bench_rng,
    bench_slot_ring,
    bench_calendar,
    bench_histogram
);
criterion_main!(benches);
