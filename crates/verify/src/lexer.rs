//! A minimal token-level scrubber for Rust sources.
//!
//! The lint pass matches needles against *code*, so comments and the
//! contents of string/char literals must not trigger (or mask) a rule.
//! [`scrub`] blanks them out while preserving line structure, and tags
//! every line inside a `#[cfg(test)] mod` region so test-only code is
//! exempt from the hot-path rules.
//!
//! This is not a full lexer — just enough of one to be exact about the
//! three things that matter for line-oriented linting: comments (line and
//! nested block), string-ish literals (plain, raw, byte, char, with
//! escapes), and brace depth for test-module extents.

/// One source line after scrubbing.
#[derive(Debug, Clone)]
pub struct ScrubbedLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line with comments and literal contents blanked to spaces.
    pub code: String,
    /// Original line text (for allowlist keys and diagnostics).
    pub original: String,
    /// Whether the line sits inside a `#[cfg(test)] mod` region.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Scrub `source` into per-line code text with test-region tagging.
pub fn scrub(source: &str) -> Vec<ScrubbedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut escaped = false;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push(' ');
                }
                '"' => {
                    state = State::Str;
                    escaped = false;
                    code.push('"');
                }
                'r' | 'b' => {
                    // Possible literal prefix: r", r#", br", b", b'. A prefix
                    // can't follow an identifier character (`thread_rng` has
                    // a bare r that must not start a literal).
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    let has_r = c == 'r' || (c == 'b' && next == Some('r'));
                    let mut j = i + 1;
                    if c == 'b' && next == Some('r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if !prev_ident && has_r && chars.get(j) == Some(&'"') {
                        // Raw (byte) string: emit the prefix, enter literal.
                        for &p in &chars[i..=j] {
                            code.push(p);
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    if !prev_ident && c == 'b' && next == Some('"') {
                        code.push('b');
                        code.push('"');
                        state = State::Str;
                        escaped = false;
                        i += 2;
                        continue;
                    }
                    if !prev_ident && c == 'b' && next == Some('\'') {
                        code.push('b');
                        code.push('\'');
                        state = State::CharLit;
                        escaped = false;
                        i += 2;
                        continue;
                    }
                    code.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is '\…' or 'X'.
                    let is_char =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char {
                        state = State::CharLit;
                        escaped = false;
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    code.push('\n');
                } else {
                    code.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    code.push('\n');
                } else {
                    code.push(' ');
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    code.push(' ');
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                    code.push(' ');
                    continue;
                }
            }
            State::Str => {
                if c == '\n' {
                    code.push('\n');
                } else if !escaped && c == '"' {
                    code.push('"');
                    state = State::Code;
                } else {
                    code.push(' ');
                }
                escaped = !escaped && c == '\\';
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                code.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::CharLit => {
                if c == '\n' {
                    // Malformed; bail back to code to stay line-accurate.
                    code.push('\n');
                    state = State::Code;
                } else if !escaped && c == '\'' {
                    code.push('\'');
                    state = State::Code;
                } else {
                    code.push(' ');
                }
                escaped = !escaped && c == '\\';
            }
        }
        i += 1;
    }

    tag_test_regions(source, &code)
}

/// Pair original and scrubbed lines, tracking `#[cfg(test)] mod` extents by
/// brace depth on the scrubbed text.
fn tag_test_regions(source: &str, code: &str) -> Vec<ScrubbedLine> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_depth: Option<i64> = None;
    for (idx, (orig, scrubbed)) in source.lines().zip(code.lines()).enumerate() {
        let t = scrubbed.trim();
        if test_depth.is_none() {
            // `#[cfg(test)]` plus compound gates whose first conjunct is
            // `test` (`#[cfg(all(test, feature = "..."))]`). Matching on the
            // *scrubbed* line means a `feature = "test-utils"` string can't
            // fake it; `#[cfg(not(test))]` deliberately does not arm.
            let compact: String = t.chars().filter(|c| !c.is_whitespace()).collect();
            if compact.contains("#[cfg(test)]")
                || compact.contains("cfg(all(test,")
                || compact.contains("cfg(any(test,")
            {
                armed = true;
            } else if armed {
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    test_depth = Some(depth);
                    armed = false;
                } else if !(t.is_empty() || t.starts_with("#[")) {
                    // The cfg(test) gated something other than a module.
                    armed = false;
                }
            }
        }
        let in_test = test_depth.is_some();
        for ch in scrubbed.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(td) = test_depth {
            if depth <= td {
                test_depth = None;
            }
        }
        out.push(ScrubbedLine {
            number: idx + 1,
            code: scrubbed.to_string(),
            original: orig.to_string(),
            in_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src =
            "let x = 1; // HashMap here\nlet s = \"Instant::now\";\n/* SystemTime */ let y = 2;\n";
        let lines = scrub(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[1].code.contains("let s ="));
        assert!(!lines[2].code.contains("SystemTime"));
        assert!(lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let r = r#\"thread_rng()\"#;\nlet c = 'u'; let l: &'static str = \"x\";\n";
        let lines = scrub(src);
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[1].code.contains("&'static str"), "{}", lines[1].code);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let lines = scrub(src);
        assert!(lines[0].code.contains("let z = 3;"));
        assert!(!lines[0].code.contains("outer"));
    }

    #[test]
    fn test_modules_are_tagged() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lines = scrub(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace belongs to the region");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn compound_cfg_test_gates_are_tagged() {
        let src = "#[cfg(all(test, feature = \"model-sync\"))]\nmod model_tests {\n    fn t() { y.unwrap(); }\n}\nfn live() {}\n";
        let lines = scrub(src);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn cfg_not_test_does_not_arm_a_region() {
        let src = "#[cfg(not(test))]\nmod live {\n    fn f() { x.unwrap(); }\n}\n";
        let lines = scrub(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn cfg_test_on_non_module_does_not_arm_a_region() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn live() { x.unwrap(); }\n";
        let lines = scrub(src);
        assert!(!lines[2].in_test);
    }
}
