//! `pnoc-verify` CLI — the CI correctness gate.
//!
//! ```text
//! pnoc-verify [--lints] [--model-check] [--audit] [--all] [--root PATH]
//! ```
//!
//! Exit code 0 if every requested pass holds, 1 otherwise.

use pnoc_verify::checker::CheckConfig;
use pnoc_verify::{audits, lints, scenarios};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pnoc-verify [--lints] [--model-check] [--audit] [--all] [--root PATH]\n\
         \n\
         --lints        determinism/robustness lints over workspace sources\n\
         --model-check  bounded model checking of the channel FSMs\n\
         --audit        cycle-level invariant audit of full Network runs\n\
         --all          all three passes\n\
         --root PATH    workspace root (default: crate manifest dir /../..)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut do_lints = false;
    let mut do_model = false;
    let mut do_audit = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lints" => do_lints = true,
            "--model-check" => do_model = true,
            "--audit" => do_audit = true,
            "--all" => {
                do_lints = true;
                do_model = true;
                do_audit = true;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if !(do_lints || do_model || do_audit) {
        usage();
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let mut all_ok = true;

    if do_lints {
        println!("== determinism lints ==");
        let report = lints::run_lints(&root);
        print!("{}", report.render());
        if !report.ok() {
            all_ok = false;
        }
    }

    if do_model {
        println!("== bounded model check ==");
        let results = scenarios::run_matrix(&CheckConfig::default());
        let (text, ok) = scenarios::render_results(&results);
        print!("{text}");
        let states: usize = results
            .iter()
            .map(|r| match &r.outcome {
                pnoc_verify::CheckOutcome::Verified(rep)
                | pnoc_verify::CheckOutcome::Truncated(rep) => rep.states,
                pnoc_verify::CheckOutcome::Violated(_) => 0,
            })
            .sum();
        println!(
            "model check: {} scenarios, {} reachable states explored",
            results.len(),
            states
        );
        // Self-test: the checker must be able to produce a counterexample.
        match scenarios::duplicate_bug_counterexample() {
            pnoc_verify::CheckOutcome::Violated(cx) if cx.error.contains("delivered twice") => {
                println!(
                    "self-test: intentional duplicate-suppression bug caught \
                     ({}-step counterexample)",
                    cx.steps.len()
                );
            }
            other => {
                all_ok = false;
                println!("self-test FAILED: sabotaged model was not caught ({other:?})");
            }
        }
        if !ok {
            all_ok = false;
        }
    }

    if do_audit {
        println!("== runtime invariant audit ==");
        let (text, ok) = audits::run_matrix();
        print!("{text}");
        if !ok {
            all_ok = false;
        }
    }

    if all_ok {
        println!("pnoc-verify: all requested passes hold");
        ExitCode::SUCCESS
    } else {
        println!("pnoc-verify: FAILURES (see above)");
        ExitCode::FAILURE
    }
}
