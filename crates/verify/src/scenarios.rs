//! The shipped model-checking matrix: every scheme, two topologies, and
//! deterministic fault schedules, run through [`crate::checker::check`].
//!
//! Fault schedules are exact, not sampled: a probability-1.0 fault process
//! under a finite budget (`max_data_faults` / `max_ack_faults`) never
//! draws from the RNG, so the checker explores *the* run in which exactly
//! `budget` faults hit at the earliest opportunities — the worst case the
//! recovery machinery must survive. Token-loss faults are excluded here:
//! they cannot be budgeted per-event, and a rate-1.0 schedule would
//! destroy every regenerated token forever, which is not a liveness
//! property any scheme claims to satisfy.

use crate::checker::{check, CheckConfig, CheckOutcome};
use pnoc_noc::{ChannelModel, FaultConfig, NetworkConfig, Scheme};
use std::fmt::Write as _;

/// Which fault schedule a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSchedule {
    /// No faults.
    None,
    /// Exactly one data flit destroyed, at the earliest opportunity.
    OneDataLoss,
    /// Exactly one ACK/NACK destroyed, at the earliest opportunity.
    OneAckLoss,
}

impl FaultSchedule {
    fn label(self) -> &'static str {
        match self {
            FaultSchedule::None => "no faults",
            FaultSchedule::OneDataLoss => "1 data loss",
            FaultSchedule::OneAckLoss => "1 ack loss",
        }
    }

    fn config(self) -> FaultConfig {
        let mut f = FaultConfig::none();
        match self {
            FaultSchedule::None => {}
            FaultSchedule::OneDataLoss => {
                f.data_loss = 1.0;
                f.max_data_faults = 1;
            }
            FaultSchedule::OneAckLoss => {
                f.ack_loss = 1.0;
                f.max_ack_faults = 1;
            }
        }
        f
    }
}

/// One entry of the matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scheme under check.
    pub scheme: Scheme,
    /// Nodes (== ring segments) of the tiny configuration.
    pub nodes: usize,
    /// Active senders (node ids).
    pub senders: Vec<usize>,
    /// Packets each sender injects.
    pub packets_each: u32,
    /// Fault schedule.
    pub faults: FaultSchedule,
}

impl Scenario {
    /// Human-readable label.
    pub fn label(&self) -> String {
        format!(
            "{:<16} {} nodes, {} sender(s) x {} pkt(s), {}",
            self.scheme.label(),
            self.nodes,
            self.senders.len(),
            self.packets_each,
            self.faults.label()
        )
    }

    fn network_config(&self) -> NetworkConfig {
        let mut cfg = NetworkConfig::paper_default(self.scheme);
        cfg.nodes = self.nodes;
        cfg.cores_per_node = 2;
        cfg.ring_segments = self.nodes;
        cfg.input_buffer = 2;
        cfg.router_latency = 1;
        if self.faults != FaultSchedule::None {
            // with_faults arms timeout/retransmit recovery on handshake
            // schemes; credit schemes run the schedule unprotected.
            cfg = cfg.with_faults(self.faults.config());
        }
        cfg
    }

    /// Build the model this scenario explores.
    pub fn model(&self) -> ChannelModel {
        ChannelModel::new(&self.network_config(), &self.senders, self.packets_each)
    }
}

/// The shipped matrix: for each of the seven schemes, a 2-node deep
/// workload (one sender, 3 packets — exercises queue depth, setaside and
/// retransmission) and a 4-node wide workload (three senders, 1 packet
/// each — exercises arbitration interleavings, 2^3 injection subsets per
/// cycle); fault schedules on the 2-node shape, data loss for every
/// scheme, ACK loss for the handshake schemes that have ACKs to lose.
pub fn matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for scheme in Scheme::paper_set(1) {
        out.push(Scenario {
            scheme,
            nodes: 2,
            senders: vec![1],
            packets_each: 3,
            faults: FaultSchedule::None,
        });
        out.push(Scenario {
            scheme,
            nodes: 4,
            senders: vec![1, 2, 3],
            packets_each: 1,
            faults: FaultSchedule::None,
        });
        out.push(Scenario {
            scheme,
            nodes: 2,
            senders: vec![1],
            packets_each: 2,
            faults: FaultSchedule::OneDataLoss,
        });
        if scheme.uses_handshake() {
            out.push(Scenario {
                scheme,
                nodes: 2,
                senders: vec![1],
                packets_each: 2,
                faults: FaultSchedule::OneAckLoss,
            });
        }
    }
    out
}

/// Result of one scenario.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Checker outcome.
    pub outcome: CheckOutcome,
}

/// Run the full matrix. Returns results in matrix order.
pub fn run_matrix(cfg: &CheckConfig) -> Vec<ScenarioResult> {
    matrix()
        .into_iter()
        .map(|scenario| {
            let model = scenario.model();
            let outcome = check(&model, cfg);
            ScenarioResult { scenario, outcome }
        })
        .collect()
}

/// Render matrix results; returns `(text, all_ok)`.
pub fn render_results(results: &[ScenarioResult]) -> (String, bool) {
    let mut s = String::new();
    let mut ok = true;
    for r in results {
        match &r.outcome {
            CheckOutcome::Verified(rep) => {
                let _ = writeln!(
                    s,
                    "  PASS  {}  [{} states, {} transitions, drain<={}, {} delivered]",
                    r.scenario.label(),
                    rep.states,
                    rep.transitions,
                    rep.max_drain_steps,
                    rep.max_delivered
                );
            }
            CheckOutcome::Truncated(rep) => {
                ok = false;
                let _ = writeln!(
                    s,
                    "  FAIL  {}  state space did not close within {} states",
                    r.scenario.label(),
                    rep.states
                );
            }
            CheckOutcome::Violated(cx) => {
                ok = false;
                let _ = writeln!(s, "  FAIL  {}", r.scenario.label());
                for line in cx.render().lines() {
                    let _ = writeln!(s, "    {line}");
                }
            }
        }
    }
    (s, ok)
}

/// Self-test: prove the checker can produce a counterexample. Arms the
/// intentional bug (duplicate suppression disabled via
/// [`ChannelModel::sabotage_forget_accepted`]) under a lost-ACK schedule:
/// the home delivers the packet, the ACK dies, recovery retransmits, and
/// the sabotaged home delivers it again. The checker must return a
/// duplicate-delivery violation with a concrete schedule.
pub fn duplicate_bug_counterexample() -> CheckOutcome {
    let scenario = Scenario {
        scheme: Scheme::Dhs { setaside: 1 },
        nodes: 2,
        senders: vec![1],
        packets_each: 1,
        faults: FaultSchedule::OneAckLoss,
    };
    let mut model = scenario.model();
    model.sabotage_forget_accepted();
    check(&model, &CheckConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotaged_model_yields_duplicate_delivery_counterexample() {
        match duplicate_bug_counterexample() {
            CheckOutcome::Violated(cx) => {
                assert!(
                    cx.error.contains("delivered twice"),
                    "expected a duplicate-delivery violation, got: {}",
                    cx.error
                );
                assert!(!cx.steps.is_empty(), "trace must show the schedule");
            }
            other => panic!("sabotaged model must be caught, got {other:?}"),
        }
    }

    #[test]
    fn unsabotaged_ack_loss_scenario_verifies() {
        let scenario = Scenario {
            scheme: Scheme::Dhs { setaside: 1 },
            nodes: 2,
            senders: vec![1],
            packets_each: 1,
            faults: FaultSchedule::OneAckLoss,
        };
        let outcome = check(&scenario.model(), &CheckConfig::default());
        assert!(
            outcome.ok(),
            "duplicate suppression must survive: {outcome:?}"
        );
    }

    #[test]
    fn token_channel_without_faults_verifies() {
        let scenario = Scenario {
            scheme: Scheme::TokenChannel,
            nodes: 2,
            senders: vec![1],
            packets_each: 2,
            faults: FaultSchedule::None,
        };
        assert!(check(&scenario.model(), &CheckConfig::default()).ok());
    }
}
