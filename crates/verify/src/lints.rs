//! Custom determinism/robustness lints over the workspace sources.
//!
//! Each rule is a set of needle substrings matched against scrubbed code
//! lines (comments and literal contents removed, `#[cfg(test)] mod`
//! regions exempt — see [`crate::lexer`]) within a path scope. Hits must
//! either be fixed or explicitly allowlisted in `crates/verify/allowlist.txt`
//! — a checked-in file, so every new exemption shows up in review as a
//! diff to it.
//!
//! The rules encode the properties the simulator's claims rest on:
//! bit-reproducible runs for a given seed (no unordered iteration, no wall
//! clock, no ambient randomness), honest counters (no silent narrowing
//! casts on cycle/flit arithmetic), and a panic-free per-cycle hot path.

use crate::lexer::scrub;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule: needles, a path scope, and the reason it exists.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, used as the allowlist key.
    pub id: &'static str,
    /// Substrings that flag a scrubbed code line.
    pub needles: &'static [&'static str],
    /// Repo-relative path prefixes the rule applies to.
    pub scope: &'static [&'static str],
    /// Why a hit is a problem.
    pub rationale: &'static str,
}

/// Crates whose code *is* the simulation semantics: anything
/// nondeterministic here breaks bit-reproducibility of runs.
const SIM_STATE: &[&str] = &[
    "crates/noc/src",
    "crates/sim/src",
    "crates/faults/src",
    "crates/traffic/src",
    "crates/cmp/src",
    "crates/oracle/src",
];

/// [`SIM_STATE`] plus the observability crate. `pnoc-obs` never feeds back
/// into simulation state, but its exports (event traces, occupancy CSVs,
/// JSON dumps) are diffed in CI, so their ordering must be deterministic
/// too.
const SIM_STATE_AND_OBS: &[&str] = &[
    "crates/noc/src",
    "crates/sim/src",
    "crates/faults/src",
    "crates/traffic/src",
    "crates/cmp/src",
    "crates/obs/src",
    "crates/oracle/src",
];

/// The rule registry.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-unordered-collections",
        needles: &["HashMap", "HashSet"],
        scope: SIM_STATE_AND_OBS,
        rationale: "iteration order of std hash collections varies across \
                    runs/platforms; simulation state must use BTreeMap/BTreeSet \
                    or Vec so identical seeds give identical runs",
    },
    // `crates/obs/src` is deliberately *outside* this scope: pnoc-obs is
    // append-only output that simulation state never reads, so its span
    // profiler may time phases with `Instant::now` without threatening
    // replay. Everything the model itself executes stays in scope.
    Rule {
        id: "no-wall-clock",
        needles: &["Instant::now", "SystemTime"],
        scope: SIM_STATE,
        rationale: "model code must be a pure function of (config, seed); \
                    wall-clock reads make runs unreproducible",
    },
    Rule {
        id: "no-ambient-randomness",
        needles: &[
            "thread_rng",
            "from_entropy",
            "rand::random",
            "OsRng",
            "getrandom",
        ],
        scope: &["crates", "src", "examples"],
        rationale: "all randomness must flow through pnoc-sim's seeded \
                    SimRng streams; ambient entropy sources break replay",
    },
    Rule {
        id: "no-silent-truncation",
        needles: &[
            " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
        ],
        scope: &["crates/noc/src", "crates/sim/src", "crates/faults/src"],
        rationale: "cycle and flit counters are u64/usize; a narrowing `as` \
                    cast silently wraps on long runs — use try_from or \
                    allowlist the cast with a justification",
    },
    Rule {
        id: "no-hot-path-unwrap",
        needles: &[".unwrap(", ".expect("],
        scope: &["crates/noc/src"],
        rationale: "per-cycle channel/network code must not contain latent \
                    panics; restructure with let-else/take patterns, or \
                    allowlist construction-time validation",
    },
];

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed original source line (the allowlist key content).
    pub content: String,
    /// The rule's rationale.
    pub rationale: &'static str,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Hits not covered by the allowlist (failures).
    pub violations: Vec<Violation>,
    /// Allowlisted hits (informational).
    pub allowlisted: usize,
    /// Allowlist entries that matched nothing (failures: stale entries).
    pub stale_entries: Vec<String>,
}

impl LintReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "{}:{}: [{}] {}\n    {}\n    to exempt: add `{}\t{}\t{}` to crates/verify/allowlist.txt",
                v.path, v.line, v.rule, v.content, v.rationale, v.rule, v.path, v.content
            );
        }
        for e in &self.stale_entries {
            let _ = writeln!(s, "stale allowlist entry (matches nothing): {e}");
        }
        let _ = writeln!(
            s,
            "lints: {} files scanned, {} violations, {} allowlisted, {} stale entries",
            self.files_scanned,
            self.violations.len(),
            self.allowlisted,
            self.stale_entries.len()
        );
        s
    }
}

/// Parse `allowlist.txt` content: `rule<TAB>path<TAB>trimmed line`, `#`
/// comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        if let (Some(rule), Some(path), Some(content)) = (parts.next(), parts.next(), parts.next())
        {
            out.push((rule.to_string(), path.to_string(), content.to_string()));
        }
    }
    out
}

/// Recursively collect `.rs` files under `root`, skipping build output,
/// vendored dependencies, and VCS metadata. Sorted for deterministic
/// reporting.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Run every rule over the workspace at `root`, applying the allowlist at
/// `root/crates/verify/allowlist.txt` (missing file = empty allowlist).
pub fn run_lints(root: &Path) -> LintReport {
    let allowlist_path = root.join("crates/verify/allowlist.txt");
    let allowlist = fs::read_to_string(&allowlist_path)
        .map(|t| parse_allowlist(&t))
        .unwrap_or_default();
    let mut used = vec![false; allowlist.len()];

    let mut report = LintReport::default();
    for file in collect_rs_files(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let in_scope: Vec<&Rule> = RULES
            .iter()
            .filter(|r| r.scope.iter().any(|s| rel.starts_with(s)))
            .collect();
        if in_scope.is_empty() {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        for line in scrub(&source) {
            if line.in_test {
                continue;
            }
            for rule in &in_scope {
                if !rule.needles.iter().any(|n| line.code.contains(n)) {
                    continue;
                }
                let content = line.original.trim().to_string();
                let hit = allowlist
                    .iter()
                    .position(|(r, p, c)| r == rule.id && *p == rel && *c == content);
                if let Some(idx) = hit {
                    used[idx] = true;
                    report.allowlisted += 1;
                } else {
                    report.violations.push(Violation {
                        rule: rule.id,
                        path: rel.clone(),
                        line: line.number,
                        content,
                        rationale: rule.rationale,
                    });
                }
            }
        }
    }
    for (idx, (r, p, c)) in allowlist.iter().enumerate() {
        if !used[idx] {
            report.stale_entries.push(format!("{r}\t{p}\t{c}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_have_unique_ids_and_nonempty_needles() {
        for (i, a) in RULES.iter().enumerate() {
            assert!(!a.needles.is_empty());
            assert!(!a.scope.is_empty());
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn allowlist_parser_skips_comments_and_blanks() {
        let parsed = parse_allowlist(
            "# comment\n\nno-hot-path-unwrap\tcrates/noc/src/x.rs\tfoo.unwrap();\n",
        );
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "no-hot-path-unwrap");
    }

    #[test]
    fn workspace_passes_its_own_lints() {
        // The repo root is two levels up from this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_lints(&root);
        assert!(report.files_scanned > 50, "walker found the workspace");
        assert!(report.ok(), "\n{}", report.render());
    }
}
