//! Custom determinism/robustness lints over the workspace sources.
//!
//! Each rule is a set of needle substrings matched against scrubbed code
//! lines (comments and literal contents removed, `#[cfg(test)] mod`
//! regions exempt — see [`crate::lexer`]) within a path scope. Hits must
//! either be fixed or explicitly allowlisted in `crates/verify/allowlist.txt`
//! — a checked-in file, so every new exemption shows up in review as a
//! diff to it.
//!
//! The rules encode the properties the simulator's claims rest on:
//! bit-reproducible runs for a given seed (no unordered iteration, no wall
//! clock, no ambient randomness), honest counters (no silent narrowing
//! casts on cycle/flit arithmetic), and a panic-free per-cycle hot path.
//! Three concurrency rules guard the fleet layer's model-checkability
//! (DESIGN.md §14): all synchronization must flow through the
//! `crate::sync` facade (`no-raw-std-sync-in-fleet`), `Ordering::Relaxed`
//! is reserved for allowlisted pure-diagnostic counters
//! (`no-relaxed-ordering`), and every `unsafe` block workspace-wide must
//! carry an adjacent `// SAFETY:` comment ([`UNSAFE_RULE_ID`]).
//!
//! Test code is exempt throughout: `#[cfg(test)]`-gated modules (including
//! compound gates like `#[cfg(all(test, ...))]`) via line tags, and
//! integration-test files under a `tests/` directory via their path.

use crate::lexer::scrub;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule: needles, a path scope, and the reason it exists.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, used as the allowlist key.
    pub id: &'static str,
    /// Substrings that flag a scrubbed code line.
    pub needles: &'static [&'static str],
    /// Repo-relative path prefixes the rule applies to.
    pub scope: &'static [&'static str],
    /// Path prefixes carved out of `scope` (e.g. the one module that is
    /// allowed to hold the pattern everything else must route through).
    pub exempt: &'static [&'static str],
    /// Why a hit is a problem.
    pub rationale: &'static str,
}

/// Crates whose code *is* the simulation semantics: anything
/// nondeterministic here breaks bit-reproducibility of runs.
const SIM_STATE: &[&str] = &[
    "crates/noc/src",
    "crates/sim/src",
    "crates/faults/src",
    "crates/traffic/src",
    "crates/trace/src",
    "crates/cmp/src",
    "crates/oracle/src",
];

/// [`SIM_STATE`] plus the observability crate. `pnoc-obs` never feeds back
/// into simulation state, but its exports (event traces, occupancy CSVs,
/// JSON dumps) are diffed in CI, so their ordering must be deterministic
/// too.
const SIM_STATE_AND_OBS: &[&str] = &[
    "crates/noc/src",
    "crates/sim/src",
    "crates/faults/src",
    "crates/traffic/src",
    "crates/trace/src",
    "crates/cmp/src",
    "crates/obs/src",
    "crates/oracle/src",
];

/// The rule registry.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-unordered-collections",
        needles: &["HashMap", "HashSet"],
        scope: SIM_STATE_AND_OBS,
        exempt: &[],
        rationale: "iteration order of std hash collections varies across \
                    runs/platforms; simulation state must use BTreeMap/BTreeSet \
                    or Vec so identical seeds give identical runs",
    },
    // `crates/obs/src` is deliberately *outside* this scope: pnoc-obs is
    // append-only output that simulation state never reads, so its span
    // profiler may time phases with `Instant::now` without threatening
    // replay. Everything the model itself executes stays in scope.
    Rule {
        id: "no-wall-clock",
        needles: &["Instant::now", "SystemTime"],
        scope: SIM_STATE,
        exempt: &[],
        rationale: "model code must be a pure function of (config, seed); \
                    wall-clock reads make runs unreproducible",
    },
    Rule {
        id: "no-ambient-randomness",
        needles: &[
            "thread_rng",
            "from_entropy",
            "rand::random",
            "OsRng",
            "getrandom",
        ],
        scope: &["crates", "src", "examples"],
        exempt: &[],
        rationale: "all randomness must flow through pnoc-sim's seeded \
                    SimRng streams; ambient entropy sources break replay",
    },
    Rule {
        id: "no-silent-truncation",
        needles: &[
            " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
        ],
        scope: &["crates/noc/src", "crates/sim/src", "crates/faults/src"],
        exempt: &[],
        rationale: "cycle and flit counters are u64/usize; a narrowing `as` \
                    cast silently wraps on long runs — use try_from or \
                    allowlist the cast with a justification",
    },
    Rule {
        id: "no-hot-path-unwrap",
        needles: &[".unwrap(", ".expect("],
        scope: &["crates/noc/src"],
        exempt: &[],
        rationale: "per-cycle channel/network code must not contain latent \
                    panics; restructure with let-else/take patterns, or \
                    allowlist construction-time validation",
    },
    Rule {
        id: "no-hot-path-alloc",
        needles: &["Vec::new", "vec!", "Box::new", ".to_vec("],
        scope: &["crates/noc/src"],
        exempt: &[],
        rationale: "the per-cycle kernel shuffles indices through \
                    preallocated arenas, planes, and calendars; a heap \
                    allocation token in phase code is a regression to the \
                    struct-shuffling design. Construction-time allocation \
                    (new/with_capacity bodies, audit snapshots) is fine — \
                    allowlist it with a justification",
    },
    Rule {
        id: "no-raw-std-sync-in-fleet",
        needles: &["std::sync", "std::thread"],
        scope: &["crates/fleet/src"],
        // The facade itself and the model checker behind it are the two
        // places that must name the std primitives.
        exempt: &["crates/fleet/src/sync.rs", "crates/fleet/src/model"],
        rationale: "fleet code must reach synchronization through the \
                    crate::sync facade so `--features model-sync` runs the \
                    shipping executor/snapshot code under the model checker; \
                    a raw std::sync/std::thread import bypasses it",
    },
    Rule {
        id: "no-relaxed-ordering",
        needles: &["Ordering::Relaxed"],
        scope: &["crates", "src", "examples"],
        exempt: &[],
        rationale: "Relaxed is reserved for pure-diagnostic counters that \
                    no control flow depends on; anything that guards a \
                    protocol needs Acquire/Release or SeqCst — every \
                    exemption carries its justification in the allowlist",
    },
];

/// Rule id of the `unsafe`-needs-`// SAFETY:` check. Not needle-driven (it
/// must inspect the *comments* the scrubber blanks), so it lives beside
/// [`RULES`] rather than in it, but shares the allowlist machinery.
pub const UNSAFE_RULE_ID: &str = "unsafe-needs-safety-comment";

const UNSAFE_RULE_RATIONALE: &str =
    "every unsafe block must state its soundness argument in a `// SAFETY:` \
     comment on the same or an immediately preceding comment line";

/// Scope of [`UNSAFE_RULE_ID`]: the whole workspace.
const UNSAFE_RULE_SCOPE: &[&str] = &["crates", "src", "examples"];

/// Does the scrubbed code line use the `unsafe` keyword? Token-exact, so
/// `#![forbid(unsafe_code)]` and identifiers containing "unsafe" don't hit.
fn has_unsafe_token(code: &str) -> bool {
    code.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|tok| tok == "unsafe")
}

/// Is the `unsafe` at `idx` covered by a `SAFETY:` comment — on the same
/// line, or on the contiguous run of `//` comment lines directly above?
fn has_safety_comment(lines: &[crate::lexer::ScrubbedLine], idx: usize) -> bool {
    if lines[idx].original.contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = lines[j].original.trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed original source line (the allowlist key content).
    pub content: String,
    /// The rule's rationale.
    pub rationale: &'static str,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Hits not covered by the allowlist (failures).
    pub violations: Vec<Violation>,
    /// Allowlisted hits (informational).
    pub allowlisted: usize,
    /// Allowlist entries that matched nothing (failures: stale entries).
    pub stale_entries: Vec<String>,
}

impl LintReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "{}:{}: [{}] {}\n    {}\n    to exempt: add `{}\t{}\t{}` to crates/verify/allowlist.txt",
                v.path, v.line, v.rule, v.content, v.rationale, v.rule, v.path, v.content
            );
        }
        for e in &self.stale_entries {
            let _ = writeln!(s, "stale allowlist entry (matches nothing): {e}");
        }
        let _ = writeln!(
            s,
            "lints: {} files scanned, {} violations, {} allowlisted, {} stale entries",
            self.files_scanned,
            self.violations.len(),
            self.allowlisted,
            self.stale_entries.len()
        );
        s
    }
}

/// Parse `allowlist.txt` content: `rule<TAB>path<TAB>trimmed line`, `#`
/// comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        if let (Some(rule), Some(path), Some(content)) = (parts.next(), parts.next(), parts.next())
        {
            out.push((rule.to_string(), path.to_string(), content.to_string()));
        }
    }
    out
}

/// Recursively collect `.rs` files under `root`, skipping build output,
/// vendored dependencies, and VCS metadata. Sorted for deterministic
/// reporting.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Run every rule over the workspace at `root`, applying the allowlist at
/// `root/crates/verify/allowlist.txt` (missing file = empty allowlist).
pub fn run_lints(root: &Path) -> LintReport {
    let allowlist_path = root.join("crates/verify/allowlist.txt");
    let allowlist = fs::read_to_string(&allowlist_path)
        .map(|t| parse_allowlist(&t))
        .unwrap_or_default();
    let mut used = vec![false; allowlist.len()];

    let mut report = LintReport::default();
    for file in collect_rs_files(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        // Integration-test files are test code, same as `#[cfg(test)] mod`
        // regions (the line-level tag cannot see them, so exempt by path).
        if rel.contains("/tests/") {
            continue;
        }
        let applies = |scope: &[&str], exempt: &[&str]| {
            scope.iter().any(|s| rel.starts_with(s)) && !exempt.iter().any(|e| rel.starts_with(e))
        };
        let in_scope: Vec<&Rule> = RULES
            .iter()
            .filter(|r| applies(r.scope, r.exempt))
            .collect();
        let check_unsafe = applies(UNSAFE_RULE_SCOPE, &[]);
        if in_scope.is_empty() && !check_unsafe {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        let lines = scrub(&source);
        let mut record = |rule: &'static str,
                          rationale: &'static str,
                          number: usize,
                          content: String,
                          report: &mut LintReport| {
            let hit = allowlist
                .iter()
                .position(|(r, p, c)| r == rule && *p == rel && *c == content);
            if let Some(idx) = hit {
                used[idx] = true;
                report.allowlisted += 1;
            } else {
                report.violations.push(Violation {
                    rule,
                    path: rel.clone(),
                    line: number,
                    content,
                    rationale,
                });
            }
        };
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for rule in &in_scope {
                if !rule.needles.iter().any(|n| line.code.contains(n)) {
                    continue;
                }
                let content = line.original.trim().to_string();
                record(rule.id, rule.rationale, line.number, content, &mut report);
            }
            if check_unsafe && has_unsafe_token(&line.code) && !has_safety_comment(&lines, i) {
                let content = line.original.trim().to_string();
                record(
                    UNSAFE_RULE_ID,
                    UNSAFE_RULE_RATIONALE,
                    line.number,
                    content,
                    &mut report,
                );
            }
        }
    }
    for (idx, (r, p, c)) in allowlist.iter().enumerate() {
        if !used[idx] {
            report.stale_entries.push(format!("{r}\t{p}\t{c}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_have_unique_ids_and_nonempty_needles() {
        for (i, a) in RULES.iter().enumerate() {
            assert!(!a.needles.is_empty());
            assert!(!a.scope.is_empty());
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn allowlist_parser_skips_comments_and_blanks() {
        let parsed = parse_allowlist(
            "# comment\n\nno-hot-path-unwrap\tcrates/noc/src/x.rs\tfoo.unwrap();\n",
        );
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "no-hot-path-unwrap");
    }

    #[test]
    fn workspace_passes_its_own_lints() {
        // The repo root is two levels up from this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_lints(&root);
        assert!(report.files_scanned > 50, "walker found the workspace");
        assert!(report.ok(), "\n{}", report.render());
    }

    #[test]
    fn unsafe_token_is_word_exact() {
        assert!(has_unsafe_token("unsafe {"));
        assert!(has_unsafe_token("pub unsafe fn f()"));
        assert!(!has_unsafe_token("#![forbid(unsafe_code)]"));
        assert!(!has_unsafe_token("let unsafety = 1;"));
    }

    #[test]
    fn safety_comment_covers_same_line_and_comment_run_above() {
        let src = "// SAFETY: fine\nunsafe { a() }\n\nunsafe { b() } // SAFETY: also fine\n// unrelated\n// comment\nunsafe { c() }\n";
        let lines = scrub(src);
        assert!(has_safety_comment(&lines, 1), "comment line above");
        assert!(has_safety_comment(&lines, 3), "same line");
        assert!(!has_safety_comment(&lines, 6), "no SAFETY in the run above");
    }

    /// The concurrency rules must actually fire — build a throwaway mini
    /// workspace and lint it (the self-lint above only proves the absence
    /// of hits, which a vacuous rule would also pass).
    #[test]
    fn concurrency_rules_fire_on_violations() {
        let root = std::env::temp_dir().join(format!("pnoc-lint-selftest-{}", std::process::id()));
        let fleet = root.join("crates/fleet/src");
        fs::create_dir_all(&fleet).expect("mk test tree");
        fs::write(
            fleet.join("bad.rs"),
            "use std::sync::Mutex;\nfn f(x: &std::sync::atomic::AtomicU64) { x.load(Ordering::Relaxed); }\nfn g() { unsafe { h() } }\n",
        )
        .expect("write bad.rs");
        // The facade file may name std::sync freely.
        fs::write(fleet.join("sync.rs"), "pub use std::sync::Mutex;\n").expect("write sync.rs");
        // SAFETY-commented unsafe is clean.
        fs::write(
            fleet.join("ok.rs"),
            "fn g() {\n    // SAFETY: test fixture\n    unsafe { h() }\n}\n",
        )
        .expect("write ok.rs");
        let report = run_lints(&root);
        fs::remove_dir_all(&root).expect("rm test tree");

        let fired: Vec<(&str, &str)> = report
            .violations
            .iter()
            .map(|v| (v.rule, v.path.as_str()))
            .collect();
        assert!(
            fired.contains(&("no-raw-std-sync-in-fleet", "crates/fleet/src/bad.rs")),
            "{fired:?}"
        );
        assert!(
            fired.contains(&("no-relaxed-ordering", "crates/fleet/src/bad.rs")),
            "{fired:?}"
        );
        assert!(
            fired.contains(&(UNSAFE_RULE_ID, "crates/fleet/src/bad.rs")),
            "{fired:?}"
        );
        assert!(
            !fired.iter().any(|(_, p)| p.ends_with("sync.rs")),
            "facade must be exempt: {fired:?}"
        );
        assert!(
            !fired
                .iter()
                .any(|(r, p)| *r == UNSAFE_RULE_ID && p.ends_with("ok.rs")),
            "SAFETY-commented unsafe must pass: {fired:?}"
        );
    }

    /// The hot-path allocation rule must fire on every needle inside
    /// crates/noc/src, skip `#[cfg(test)]` regions, and leave other crates
    /// alone.
    #[test]
    fn hot_path_alloc_rule_fires_in_noc_only() {
        let root = std::env::temp_dir().join(format!("pnoc-alloc-selftest-{}", std::process::id()));
        let noc = root.join("crates/noc/src");
        let sim = root.join("crates/sim/src");
        fs::create_dir_all(&noc).expect("mk noc tree");
        fs::create_dir_all(&sim).expect("mk sim tree");
        fs::write(
            noc.join("hot.rs"),
            "fn phase() {\n    let a = Vec::new();\n    let b = vec![0; 4];\n    let c = Box::new(1);\n    let d = s.to_vec();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = Vec::new(); }\n}\n",
        )
        .expect("write hot.rs");
        fs::write(sim.join("elsewhere.rs"), "fn f() { let v = Vec::new(); }\n")
            .expect("write elsewhere.rs");
        let report = run_lints(&root);
        fs::remove_dir_all(&root).expect("rm test tree");

        let alloc_hits: Vec<&str> = report
            .violations
            .iter()
            .filter(|v| v.rule == "no-hot-path-alloc")
            .map(|v| v.content.as_str())
            .collect();
        assert_eq!(
            alloc_hits.len(),
            4,
            "one hit per needle, none from the test region or other crates: {alloc_hits:?}"
        );
        for needle in ["Vec::new", "vec!", "Box::new", ".to_vec("] {
            assert!(
                alloc_hits.iter().any(|c| c.contains(needle)),
                "needle {needle} did not fire: {alloc_hits:?}"
            );
        }
    }
}
