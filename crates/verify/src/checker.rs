//! Bounded model checker over [`CycleFsm`] implementations.
//!
//! Explores *every* reachable state of a small configuration by branching
//! on the environment's injection choices each cycle (the only
//! nondeterminism — arbitration, handshakes, recovery timers and budgeted
//! fault schedules are all deterministic functions of the state). On top
//! of the exhaustive graph it proves three properties:
//!
//! * **safety** — no step ever returns an error: channel invariants hold
//!   and no packet id is delivered twice, in any interleaving;
//! * **liveness / deadlock-freedom** — from every reachable state, the
//!   deterministic no-injection run reaches a fully drained state within
//!   `drain_bound` cycles (this also bounds ACK/handshake resolution
//!   latency: an unresolved handshake keeps the channel un-drained);
//! * **completeness** — at every drained state with nothing left to
//!   inject, every packet is accounted for: delivered exactly once,
//!   abandoned by recovery, or destroyed by a budgeted fault.
//!
//! A violated property yields a [`Counterexample`]: the exact injection
//! schedule from the initial state, replayed to recover per-cycle events.

use pnoc_noc::CycleFsm;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Exploration limits and property toggles.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Abort (as a failure) if more distinct states than this are found.
    pub max_states: usize,
    /// Max cycles a no-injection run may take to drain from any state.
    pub drain_bound: u64,
    /// Tolerate unaccounted packets at drained terminal states. No shipped
    /// scenario needs it (budgeted faults are tracked as destroyed), but it
    /// lets exploratory runs study lossy configurations.
    pub allow_lost: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_states: 300_000,
            drain_bound: 2_000,
            allow_lost: false,
        }
    }
}

/// One replayed step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Sender indices injected this cycle.
    pub inject: Vec<usize>,
    /// Packet ids delivered this cycle.
    pub delivered: Vec<u64>,
    /// Packets abandoned / destroyed this cycle.
    pub abandoned: u64,
    /// Packets destroyed by faults this cycle.
    pub destroyed: u64,
}

/// A concrete schedule that violates a property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What went wrong at the end of the trace.
    pub error: String,
    /// The injection schedule from the initial state, with replayed events.
    pub steps: Vec<TraceStep>,
}

impl Counterexample {
    /// Render the trace for humans.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "counterexample ({} steps):", self.steps.len());
        for (i, st) in self.steps.iter().enumerate() {
            let mut line = format!("  cycle {i:>3}: inject {:?}", st.inject);
            if !st.delivered.is_empty() {
                let _ = write!(line, "  delivered {:?}", st.delivered);
            }
            if st.abandoned > 0 {
                let _ = write!(line, "  abandoned {}", st.abandoned);
            }
            if st.destroyed > 0 {
                let _ = write!(line, "  destroyed {}", st.destroyed);
            }
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "  violation: {}", self.error);
        s
    }
}

/// Statistics from a successful exhaustive exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckReport {
    /// Distinct canonical states reached.
    pub states: usize,
    /// Transitions taken (choice edges explored).
    pub transitions: usize,
    /// Longest no-injection drain chain encountered (bounds handshake
    /// resolution latency in cycles).
    pub max_drain_steps: u64,
    /// Drained terminal states found.
    pub terminal_states: usize,
    /// Maximum packets delivered along any path.
    pub max_delivered: u64,
}

/// Outcome of a model-checking run.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// All properties hold over the full reachable space.
    Verified(CheckReport),
    /// A property failed; here is the schedule.
    Violated(Box<Counterexample>),
    /// `max_states` exceeded before the space closed.
    Truncated(CheckReport),
}

impl CheckOutcome {
    /// Whether this outcome passes the gate.
    pub fn ok(&self) -> bool {
        matches!(self, CheckOutcome::Verified(_))
    }
}

/// Per-state metadata kept by the search.
struct Node {
    /// Predecessor state and the choice that reached this one (None at the
    /// root); enough to reconstruct any schedule by walking backwards.
    parent: Option<(usize, Vec<usize>)>,
    /// Successor under the empty (no-injection) choice; usize::MAX until
    /// explored.
    empty_succ: usize,
    drained: bool,
    pending: bool,
    unaccounted: u64,
    delivered: u64,
}

/// Reconstruct the choice schedule from the root to `idx`.
fn schedule_to(nodes: &[Node], idx: usize) -> Vec<Vec<usize>> {
    let mut rev = Vec::new();
    let mut at = idx;
    while let Some((p, choice)) = &nodes[at].parent {
        rev.push(choice.clone());
        at = *p;
    }
    rev.reverse();
    rev
}

/// Replay `schedule` (plus `extra` steps) on a fresh copy of the root,
/// recording events; the final step may fail, supplying the error.
fn replay<M: CycleFsm>(
    root: &M,
    schedule: &[Vec<usize>],
    extra: &[Vec<usize>],
    error: String,
) -> Counterexample {
    let mut m = root.clone();
    let mut steps = Vec::new();
    for choice in schedule.iter().chain(extra.iter()) {
        match m.step(choice) {
            Ok(ev) => steps.push(TraceStep {
                inject: choice.clone(),
                delivered: ev.delivered,
                abandoned: ev.abandoned,
                destroyed: ev.destroyed,
            }),
            Err(e) => {
                steps.push(TraceStep {
                    inject: choice.clone(),
                    delivered: Vec::new(),
                    abandoned: 0,
                    destroyed: 0,
                });
                return Counterexample { error: e, steps };
            }
        }
    }
    Counterexample { error, steps }
}

/// Exhaustively check `root` under `cfg`. See the module docs for the
/// properties proven.
pub fn check<M: CycleFsm>(root: &M, cfg: &CheckConfig) -> CheckOutcome {
    let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: std::collections::VecDeque<(M, usize)> = std::collections::VecDeque::new();
    let mut report = CheckReport::default();

    let key = root.state_key();
    seen.insert(key, 0);
    nodes.push(Node {
        parent: None,
        empty_succ: usize::MAX,
        drained: root.drained(),
        pending: root.pending_injections(),
        unaccounted: root.unaccounted_packets(),
        delivered: 0,
    });
    queue.push_back((root.clone(), 0));

    while let Some((state, idx)) = queue.pop_front() {
        for choice in state.choices() {
            report.transitions += 1;
            let mut succ = state.clone();
            let events = match succ.step(&choice) {
                Ok(ev) => ev,
                Err(e) => {
                    let schedule = schedule_to(&nodes, idx);
                    return CheckOutcome::Violated(Box::new(replay(root, &schedule, &[choice], e)));
                }
            };
            let key = succ.state_key();
            let succ_idx = match seen.get(&key) {
                Some(&existing) => existing,
                None => {
                    let new_idx = nodes.len();
                    if new_idx >= cfg.max_states {
                        report.states = nodes.len();
                        return CheckOutcome::Truncated(report);
                    }
                    seen.insert(key, new_idx);
                    nodes.push(Node {
                        parent: Some((idx, choice.clone())),
                        empty_succ: usize::MAX,
                        drained: succ.drained(),
                        pending: succ.pending_injections(),
                        unaccounted: succ.unaccounted_packets(),
                        delivered: nodes[idx].delivered + events.delivered.len() as u64,
                    });
                    queue.push_back((succ, new_idx));
                    new_idx
                }
            };
            if choice.is_empty() {
                nodes[idx].empty_succ = succ_idx;
            }
        }
    }
    report.states = nodes.len();

    // Liveness: from every state, the deterministic no-injection run must
    // reach a drained state within drain_bound cycles. Every empty-choice
    // successor was explored above, so this is pure graph walking, memoized
    // across starting points.
    let mut drain_ok: Vec<Option<bool>> = (0..nodes.len()).map(|_| None).collect();
    for start in 0..nodes.len() {
        if drain_ok[start].is_some() {
            continue;
        }
        let mut chain = Vec::new();
        let mut at = start;
        let verdict = loop {
            if let Some(v) = drain_ok[at] {
                break v;
            }
            // Drained is the goal: pending *injections* are the
            // environment's business, not the machine's obligation.
            if nodes[at].drained {
                break true;
            }
            if chain.len() as u64 > cfg.drain_bound {
                break false;
            }
            if chain.contains(&at) {
                // A no-injection cycle that never drains: livelock.
                break false;
            }
            chain.push(at);
            at = nodes[at].empty_succ;
            if at == usize::MAX {
                // Unreachable: every state's empty choice was explored.
                break false;
            }
        };
        report.max_drain_steps = report.max_drain_steps.max(chain.len() as u64);
        for &s in &chain {
            drain_ok[s] = Some(verdict);
        }
        drain_ok[start].get_or_insert(verdict);
        if !verdict {
            let schedule = schedule_to(&nodes, start);
            let extra: Vec<Vec<usize>> = (0..chain.len().max(8)).map(|_| Vec::new()).collect();
            let mut cx = replay(
                root,
                &schedule,
                &extra,
                format!(
                    "liveness violated: no-injection run from cycle {} does not \
                     drain within {} cycles (deadlock or livelock)",
                    schedule.len(),
                    cfg.drain_bound
                ),
            );
            cx.steps.truncate(schedule.len() + 8);
            return CheckOutcome::Violated(Box::new(cx));
        }
    }

    // Completeness at drained terminals.
    for (idx, n) in nodes.iter().enumerate() {
        if n.drained && !n.pending {
            report.terminal_states += 1;
            report.max_delivered = report.max_delivered.max(n.delivered);
            if n.unaccounted > 0 && !cfg.allow_lost {
                let schedule = schedule_to(&nodes, idx);
                return CheckOutcome::Violated(Box::new(replay(
                    root,
                    &schedule,
                    &[],
                    format!(
                        "completeness violated: {} packets neither delivered \
                         nor accounted as destroyed/abandoned",
                        n.unaccounted
                    ),
                )));
            }
        }
    }

    CheckOutcome::Verified(report)
}
