//! # pnoc-verify — workspace correctness tooling
//!
//! Three coordinated passes, all wired into `ci.sh` as a hard gate:
//!
//! 1. **Determinism lints** ([`lints`]) — a self-contained token-level
//!    scanner enforcing the properties bit-reproducible simulation rests
//!    on: no unordered-collection iteration in sim state, no wall-clock
//!    reads in model code, no ambient randomness outside pnoc-sim's seeded
//!    streams, no silent narrowing casts on cycle/flit counters, and no
//!    `unwrap`/`expect` in pnoc-noc's per-cycle hot paths. Exemptions live
//!    in the checked-in `crates/verify/allowlist.txt`, so every new one is
//!    a reviewable diff.
//! 2. **Bounded model checking** ([`checker`], [`scenarios`]) — exhaustive
//!    exploration of the *real* [`pnoc_noc::channel::Channel`] (via
//!    [`pnoc_noc::ChannelModel`]) for small configurations of every
//!    scheme, proving deadlock-freedom, exactly-once delivery and bounded
//!    handshake resolution under deterministic budgeted fault schedules,
//!    with concrete counterexample schedules on violation.
//! 3. **Runtime invariant audit** ([`audits`]) — the cycle-level
//!    [`pnoc_noc::InvariantAuditor`] (flit conservation, buffer bounds,
//!    credit/token conservation, ACK pairing) driven over full mixed-traffic
//!    `Network` runs of every scheme, with and without fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audits;
pub mod checker;
pub mod lexer;
pub mod lints;
pub mod scenarios;

pub use checker::{check, CheckConfig, CheckOutcome, CheckReport, Counterexample};
pub use lints::{run_lints, LintReport};
