//! Runtime invariant audit of full `Network` simulations.
//!
//! The per-cycle [`InvariantAuditor`] normally rides inside
//! [`Network::step`] behind pnoc-noc's `verify-invariants` feature. This
//! pass drives it *externally* through [`Network::audit_snapshot`], so the
//! CI gate exercises the exact same conservation laws on real mixed
//! traffic — every scheme, with and without fault injection — without
//! requiring a feature-unified rebuild of the whole workspace.

use pnoc_noc::{
    AdmissionPolicy, ClassedSource, FaultConfig, InvariantAuditor, Network, NetworkConfig, Scheme,
    TrafficSource, MAX_CLASSES,
};
use pnoc_traffic::classes::TenantMixKind;
use pnoc_traffic::pattern::TrafficPattern;
use std::fmt::Write as _;

/// One audited run configuration.
#[derive(Debug, Clone)]
pub struct AuditRun {
    /// Scheme under audit.
    pub scheme: Scheme,
    /// Uniform fault rate (0.0 = fault-free).
    pub fault_rate: f64,
    /// Injection rate, packets/cycle/core.
    pub rate: f64,
    /// Cycles of active injection.
    pub warm_cycles: u64,
    /// Additional cycles to drain (fault-free runs must fully drain).
    pub drain_cycles: u64,
    /// Whether per-class admission control is armed (and with it the
    /// starvation audit).
    pub admission: bool,
    /// Tenant mix driving the run (`SingleClass` = the classic audit).
    pub mix: TenantMixKind,
}

/// Result of one audited run.
#[derive(Debug)]
pub struct AuditResult {
    /// The run.
    pub run: AuditRun,
    /// Packets delivered (distinct ids observed).
    pub delivered: usize,
    /// First invariant violation, if any.
    pub violation: Option<String>,
    /// Whether the network fully drained after injection stopped
    /// (informational under faults: unrecovered schemes legitimately wedge).
    pub drained: bool,
}

/// The shipped audit matrix: all seven schemes fault-free at moderate
/// load, plus all seven under 1% uniform faults (handshake schemes with
/// recovery armed, credit schemes running unprotected — exactly the
/// regime the reliability study simulates), plus all seven multi-tenant
/// with admission control armed — which additionally turns on the
/// no-class-starvation audit.
pub fn matrix() -> Vec<AuditRun> {
    let mut out = Vec::new();
    for &fault_rate in &[0.0, 0.01] {
        for scheme in Scheme::paper_set(1) {
            out.push(AuditRun {
                scheme,
                fault_rate,
                rate: 0.04,
                warm_cycles: 1_500,
                drain_cycles: 3_000,
                admission: false,
                mix: TenantMixKind::SingleClass,
            });
        }
    }
    let mixes = [
        TenantMixKind::ElephantMice,
        TenantMixKind::BurstyAdversary,
        TenantMixKind::HotspotTenant,
    ];
    for (i, scheme) in Scheme::paper_set(1).into_iter().enumerate() {
        out.push(AuditRun {
            scheme,
            fault_rate: 0.0,
            rate: 0.04,
            warm_cycles: 1_500,
            drain_cycles: 3_000,
            admission: true,
            mix: mixes[i % mixes.len()],
        });
    }
    out
}

/// Drive one run, feeding every cycle's deliveries to the auditor and
/// running the structural checks at the auditor's cadence.
pub fn run_audit(run: &AuditRun) -> AuditResult {
    let mut cfg = NetworkConfig::paper_default(run.scheme);
    cfg.nodes = 8;
    cfg.cores_per_node = 2;
    cfg.ring_segments = 8;
    cfg.input_buffer = 4;
    if run.fault_rate > 0.0 {
        cfg = cfg.with_faults(FaultConfig::uniform(run.fault_rate));
    }
    if run.admission {
        // Tight-but-live buckets: every class refills ≥ 1 per period, so
        // the starvation audit must stay quiet no matter the mix.
        cfg.admission = AdmissionPolicy::TokenBucket {
            period: 4,
            refill: [1; MAX_CLASSES],
            burst: [2; MAX_CLASSES],
        };
    }
    let mut net = Network::new(cfg).expect("audit config must validate");
    let mut source = ClassedSource::new(
        run.mix,
        run.rate,
        TrafficPattern::UniformRandom,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.seed ^ 0xA0D1_7000,
    );
    let mut auditor = InvariantAuditor::new(cfg.nodes);
    let mut requests = Vec::new();
    let mut violation = None;
    // Snapshot scratch reused across sampled cycles (the `_into` form
    // refills these in place instead of reallocating).
    let mut views = Vec::new();
    let mut pending = Vec::new();

    'outer: for cycle in 0..(run.warm_cycles + run.drain_cycles) {
        if cycle < run.warm_cycles {
            requests.clear();
            source.generate(net.now(), &mut requests);
            for &(core, dst, kind, class) in &requests {
                if core / cfg.cores_per_node == dst {
                    continue;
                }
                let _ = net.inject_classed(core, dst, kind, 0, class, true);
            }
        }
        net.step();
        for d in net.deliveries() {
            if let Err(why) = auditor.observe_delivery(d.pkt.id) {
                violation = Some(format!("cycle {}: {why}", net.now()));
                break 'outer;
            }
        }
        if auditor.due(net.now()) {
            net.audit_snapshot_into(&mut views, &mut pending);
            let verdict = auditor
                .check(&views, net.metrics(), &pending)
                .and_then(|()| auditor.check_starvation(net.now(), &views));
            if let Err(why) = verdict {
                violation = Some(format!("cycle {}: {why}", net.now()));
                break 'outer;
            }
        }
        if cycle >= run.warm_cycles && net.is_drained() {
            break;
        }
    }

    AuditResult {
        run: run.clone(),
        delivered: auditor.delivered_count(),
        violation,
        drained: net.is_drained(),
    }
}

/// Run the full audit matrix; returns `(text, all_ok)`.
pub fn run_matrix() -> (String, bool) {
    let mut s = String::new();
    let mut ok = true;
    for run in matrix() {
        let res = run_audit(&run);
        let status = match &res.violation {
            None => "PASS",
            Some(_) => {
                ok = false;
                "FAIL"
            }
        };
        let _ = writeln!(
            s,
            "  {status}  {:<16} faults {:.2}  mix {}{}  [{} delivered, drained: {}]",
            res.run.scheme.label(),
            res.run.fault_rate,
            res.run.mix.label(),
            if res.run.admission { "+qos" } else { "" },
            res.delivered,
            res.drained
        );
        if let Some(why) = &res.violation {
            ok = false;
            let _ = writeln!(s, "        {why}");
        }
        // Fault-free runs must drain completely once injection stops; a
        // wedged fault-free network is a liveness bug the checker's tiny
        // configs might not reach.
        if res.run.fault_rate == 0.0 && !res.drained {
            ok = false;
            let _ = writeln!(s, "        fault-free run failed to drain");
        }
    }
    (s, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_dhs_audit_passes_and_drains() {
        let res = run_audit(&AuditRun {
            scheme: Scheme::Dhs { setaside: 1 },
            fault_rate: 0.0,
            rate: 0.04,
            warm_cycles: 400,
            drain_cycles: 1_000,
            admission: false,
            mix: TenantMixKind::SingleClass,
        });
        assert!(res.violation.is_none(), "{:?}", res.violation);
        assert!(res.drained);
        assert!(res.delivered > 0);
    }

    #[test]
    fn admitted_tenant_mix_audit_passes_and_drains() {
        // QoS on: the conservation laws and the starvation audit both run,
        // and the network must still drain (refill >= 1 per class per
        // period guarantees liveness).
        let res = run_audit(&AuditRun {
            scheme: Scheme::Dhs { setaside: 1 },
            fault_rate: 0.0,
            rate: 0.04,
            warm_cycles: 600,
            drain_cycles: 2_000,
            admission: true,
            mix: TenantMixKind::ElephantMice,
        });
        assert!(res.violation.is_none(), "{:?}", res.violation);
        assert!(res.drained);
        assert!(res.delivered > 0);
    }

    #[test]
    fn faulted_token_channel_audit_passes() {
        let res = run_audit(&AuditRun {
            scheme: Scheme::TokenChannel,
            fault_rate: 0.01,
            rate: 0.04,
            warm_cycles: 400,
            drain_cycles: 1_000,
            admission: false,
            mix: TenantMixKind::SingleClass,
        });
        assert!(res.violation.is_none(), "{:?}", res.violation);
    }
}
