/root/repo/target/debug/deps/fig10-a8c2e9581a738ff4.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-a8c2e9581a738ff4: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
