/root/repo/target/debug/deps/structure_props-c832f5a2ccbf5a1d.d: crates/noc/tests/structure_props.rs

/root/repo/target/debug/deps/structure_props-c832f5a2ccbf5a1d: crates/noc/tests/structure_props.rs

crates/noc/tests/structure_props.rs:
