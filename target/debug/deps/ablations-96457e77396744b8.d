/root/repo/target/debug/deps/ablations-96457e77396744b8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-96457e77396744b8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
