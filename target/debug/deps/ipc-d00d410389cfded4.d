/root/repo/target/debug/deps/ipc-d00d410389cfded4.d: crates/bench/src/bin/ipc.rs Cargo.toml

/root/repo/target/debug/deps/libipc-d00d410389cfded4.rmeta: crates/bench/src/bin/ipc.rs Cargo.toml

crates/bench/src/bin/ipc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
