/root/repo/target/debug/deps/pnoc_faults-f08755574c09b1a0.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/libpnoc_faults-f08755574c09b1a0.rlib: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/libpnoc_faults-f08755574c09b1a0.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
