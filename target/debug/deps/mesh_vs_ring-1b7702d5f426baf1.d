/root/repo/target/debug/deps/mesh_vs_ring-1b7702d5f426baf1.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/mesh_vs_ring-1b7702d5f426baf1: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
