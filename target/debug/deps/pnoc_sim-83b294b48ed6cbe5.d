/root/repo/target/debug/deps/pnoc_sim-83b294b48ed6cbe5.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_sim-83b294b48ed6cbe5.rmeta: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/clock.rs:
crates/sim/src/plan.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
