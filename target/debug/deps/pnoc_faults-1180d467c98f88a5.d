/root/repo/target/debug/deps/pnoc_faults-1180d467c98f88a5.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_faults-1180d467c98f88a5.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
