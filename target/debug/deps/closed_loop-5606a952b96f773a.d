/root/repo/target/debug/deps/closed_loop-5606a952b96f773a.d: crates/cmp/tests/closed_loop.rs Cargo.toml

/root/repo/target/debug/deps/libclosed_loop-5606a952b96f773a.rmeta: crates/cmp/tests/closed_loop.rs Cargo.toml

crates/cmp/tests/closed_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
