/root/repo/target/debug/deps/fig8-1fa31dd999a82bc8.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-1fa31dd999a82bc8: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
