/root/repo/target/debug/deps/pnoc_photonics-2eb3877bed48d4cf.d: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_photonics-2eb3877bed48d4cf.rmeta: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs Cargo.toml

crates/photonics/src/lib.rs:
crates/photonics/src/budget.rs:
crates/photonics/src/geometry.rs:
crates/photonics/src/loss.rs:
crates/photonics/src/ring.rs:
crates/photonics/src/waveguide.rs:
crates/photonics/src/wavelength.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
