/root/repo/target/debug/deps/resilience-b14ce3e1bbc8f7c3.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/libresilience-b14ce3e1bbc8f7c3.rmeta: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
