/root/repo/target/debug/deps/pnoc_noc-50f863522a9b9729.d: crates/noc/src/lib.rs crates/noc/src/calendar.rs crates/noc/src/channel.rs crates/noc/src/config.rs crates/noc/src/emesh.rs crates/noc/src/metrics.rs crates/noc/src/network.rs crates/noc/src/outqueue.rs crates/noc/src/packet.rs crates/noc/src/slots.rs crates/noc/src/sources.rs crates/noc/src/swmr.rs crates/noc/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_noc-50f863522a9b9729.rmeta: crates/noc/src/lib.rs crates/noc/src/calendar.rs crates/noc/src/channel.rs crates/noc/src/config.rs crates/noc/src/emesh.rs crates/noc/src/metrics.rs crates/noc/src/network.rs crates/noc/src/outqueue.rs crates/noc/src/packet.rs crates/noc/src/slots.rs crates/noc/src/sources.rs crates/noc/src/swmr.rs crates/noc/src/topology.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/calendar.rs:
crates/noc/src/channel.rs:
crates/noc/src/config.rs:
crates/noc/src/emesh.rs:
crates/noc/src/metrics.rs:
crates/noc/src/network.rs:
crates/noc/src/outqueue.rs:
crates/noc/src/packet.rs:
crates/noc/src/slots.rs:
crates/noc/src/sources.rs:
crates/noc/src/swmr.rs:
crates/noc/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
