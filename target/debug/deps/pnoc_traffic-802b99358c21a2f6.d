/root/repo/target/debug/deps/pnoc_traffic-802b99358c21a2f6.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/pnoc_traffic-802b99358c21a2f6: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
