/root/repo/target/debug/deps/fig2b-830e8a7d0e37183a.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-830e8a7d0e37183a: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
