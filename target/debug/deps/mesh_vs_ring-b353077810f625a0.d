/root/repo/target/debug/deps/mesh_vs_ring-b353077810f625a0.d: crates/bench/src/bin/mesh_vs_ring.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_vs_ring-b353077810f625a0.rmeta: crates/bench/src/bin/mesh_vs_ring.rs Cargo.toml

crates/bench/src/bin/mesh_vs_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
