/root/repo/target/debug/deps/ablations-54eaf56004112b77.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-54eaf56004112b77: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
