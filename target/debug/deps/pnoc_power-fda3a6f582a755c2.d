/root/repo/target/debug/deps/pnoc_power-fda3a6f582a755c2.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-fda3a6f582a755c2.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
