/root/repo/target/debug/deps/fig9-92eb0824ec663f95.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-92eb0824ec663f95: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
