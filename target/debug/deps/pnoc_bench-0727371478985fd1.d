/root/repo/target/debug/deps/pnoc_bench-0727371478985fd1.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpnoc_bench-0727371478985fd1.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
