/root/repo/target/debug/deps/pnoc_faults-e67c197586baea08.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/pnoc_faults-e67c197586baea08: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
