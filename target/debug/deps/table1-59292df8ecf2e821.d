/root/repo/target/debug/deps/table1-59292df8ecf2e821.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-59292df8ecf2e821: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
