/root/repo/target/debug/deps/conservation_prop-7cd3fdc7d7d91e39.d: tests/conservation_prop.rs

/root/repo/target/debug/deps/conservation_prop-7cd3fdc7d7d91e39: tests/conservation_prop.rs

tests/conservation_prop.rs:
