/root/repo/target/debug/deps/fig8-302198c5f5229888.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-302198c5f5229888.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
