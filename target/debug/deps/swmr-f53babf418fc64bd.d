/root/repo/target/debug/deps/swmr-f53babf418fc64bd.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/swmr-f53babf418fc64bd: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
