/root/repo/target/debug/deps/table1-7db6bf810dbe6b0f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7db6bf810dbe6b0f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
