/root/repo/target/debug/deps/ablations-c79a802ee1aea64b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c79a802ee1aea64b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
