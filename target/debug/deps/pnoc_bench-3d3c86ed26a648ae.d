/root/repo/target/debug/deps/pnoc_bench-3d3c86ed26a648ae.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/pnoc_bench-3d3c86ed26a648ae: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
