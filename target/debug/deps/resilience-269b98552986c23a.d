/root/repo/target/debug/deps/resilience-269b98552986c23a.d: crates/bench/src/bin/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-269b98552986c23a.rmeta: crates/bench/src/bin/resilience.rs Cargo.toml

crates/bench/src/bin/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
