/root/repo/target/debug/deps/pnoc_traffic-3531a8068bda8a1b.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libpnoc_traffic-3531a8068bda8a1b.rmeta: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
