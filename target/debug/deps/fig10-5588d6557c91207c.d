/root/repo/target/debug/deps/fig10-5588d6557c91207c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-5588d6557c91207c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
