/root/repo/target/debug/deps/fig2b-108d34005546fcda.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-108d34005546fcda: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
