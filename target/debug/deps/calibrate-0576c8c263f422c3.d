/root/repo/target/debug/deps/calibrate-0576c8c263f422c3.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-0576c8c263f422c3: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
