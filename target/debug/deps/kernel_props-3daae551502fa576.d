/root/repo/target/debug/deps/kernel_props-3daae551502fa576.d: crates/sim/tests/kernel_props.rs

/root/repo/target/debug/deps/kernel_props-3daae551502fa576: crates/sim/tests/kernel_props.rs

crates/sim/tests/kernel_props.rs:
