/root/repo/target/debug/deps/pnoc_bench-0cd75d812ea6b926.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/pnoc_bench-0cd75d812ea6b926: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
