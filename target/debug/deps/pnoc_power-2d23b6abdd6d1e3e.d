/root/repo/target/debug/deps/pnoc_power-2d23b6abdd6d1e3e.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-2d23b6abdd6d1e3e.rlib: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-2d23b6abdd6d1e3e.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
