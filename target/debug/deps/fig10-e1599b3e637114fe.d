/root/repo/target/debug/deps/fig10-e1599b3e637114fe.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-e1599b3e637114fe: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
