/root/repo/target/debug/deps/swmr-230b3910cb983c9b.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/swmr-230b3910cb983c9b: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
