/root/repo/target/debug/deps/pnoc_power-0d0ce6397dec9434.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-0d0ce6397dec9434.rlib: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-0d0ce6397dec9434.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
