/root/repo/target/debug/deps/swmr-8a8e67427b5b9f4e.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/libswmr-8a8e67427b5b9f4e.rmeta: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
