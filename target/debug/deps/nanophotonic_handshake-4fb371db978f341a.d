/root/repo/target/debug/deps/nanophotonic_handshake-4fb371db978f341a.d: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-4fb371db978f341a.rlib: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-4fb371db978f341a.rmeta: src/lib.rs

src/lib.rs:
