/root/repo/target/debug/deps/case_study-12d76c8b866800c4.d: crates/noc/tests/case_study.rs

/root/repo/target/debug/deps/case_study-12d76c8b866800c4: crates/noc/tests/case_study.rs

crates/noc/tests/case_study.rs:
