/root/repo/target/debug/deps/mesh_vs_ring-27a8016affc93862.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/mesh_vs_ring-27a8016affc93862: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
