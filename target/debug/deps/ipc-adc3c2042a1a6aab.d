/root/repo/target/debug/deps/ipc-adc3c2042a1a6aab.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/ipc-adc3c2042a1a6aab: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
