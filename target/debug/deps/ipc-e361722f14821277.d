/root/repo/target/debug/deps/ipc-e361722f14821277.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/libipc-e361722f14821277.rmeta: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
