/root/repo/target/debug/deps/pnoc_bench-5b2729b7ef0fb5f8.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpnoc_bench-5b2729b7ef0fb5f8.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpnoc_bench-5b2729b7ef0fb5f8.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
