/root/repo/target/debug/deps/fig8-c4d498ce5e4bd16c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c4d498ce5e4bd16c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
