/root/repo/target/debug/deps/paper_claims-0381be0f39a398e8.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0381be0f39a398e8: tests/paper_claims.rs

tests/paper_claims.rs:
