/root/repo/target/debug/deps/resilience-8bb1f986249fa306.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-8bb1f986249fa306: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
