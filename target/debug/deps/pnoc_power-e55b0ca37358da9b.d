/root/repo/target/debug/deps/pnoc_power-e55b0ca37358da9b.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/pnoc_power-e55b0ca37358da9b: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
