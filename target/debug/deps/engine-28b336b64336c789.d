/root/repo/target/debug/deps/engine-28b336b64336c789.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-28b336b64336c789.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
