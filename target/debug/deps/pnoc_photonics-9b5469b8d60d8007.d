/root/repo/target/debug/deps/pnoc_photonics-9b5469b8d60d8007.d: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/debug/deps/libpnoc_photonics-9b5469b8d60d8007.rmeta: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

crates/photonics/src/lib.rs:
crates/photonics/src/budget.rs:
crates/photonics/src/geometry.rs:
crates/photonics/src/loss.rs:
crates/photonics/src/ring.rs:
crates/photonics/src/waveguide.rs:
crates/photonics/src/wavelength.rs:
