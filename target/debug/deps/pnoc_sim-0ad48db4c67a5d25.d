/root/repo/target/debug/deps/pnoc_sim-0ad48db4c67a5d25.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

/root/repo/target/debug/deps/pnoc_sim-0ad48db4c67a5d25: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/clock.rs:
crates/sim/src/plan.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/util.rs:
