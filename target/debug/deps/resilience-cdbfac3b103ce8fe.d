/root/repo/target/debug/deps/resilience-cdbfac3b103ce8fe.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-cdbfac3b103ce8fe: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
