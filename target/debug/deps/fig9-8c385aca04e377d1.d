/root/repo/target/debug/deps/fig9-8c385aca04e377d1.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-8c385aca04e377d1: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
