/root/repo/target/debug/deps/case_study-93515ec35926e945.d: crates/noc/tests/case_study.rs

/root/repo/target/debug/deps/case_study-93515ec35926e945: crates/noc/tests/case_study.rs

crates/noc/tests/case_study.rs:
