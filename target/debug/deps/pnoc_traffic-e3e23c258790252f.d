/root/repo/target/debug/deps/pnoc_traffic-e3e23c258790252f.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_traffic-e3e23c258790252f.rmeta: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
