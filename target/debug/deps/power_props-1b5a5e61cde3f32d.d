/root/repo/target/debug/deps/power_props-1b5a5e61cde3f32d.d: crates/power/tests/power_props.rs

/root/repo/target/debug/deps/power_props-1b5a5e61cde3f32d: crates/power/tests/power_props.rs

crates/power/tests/power_props.rs:
