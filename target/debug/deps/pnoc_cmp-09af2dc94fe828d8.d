/root/repo/target/debug/deps/pnoc_cmp-09af2dc94fe828d8.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-09af2dc94fe828d8.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
