/root/repo/target/debug/deps/golden-e200de04c17d7ccc.d: tests/golden.rs

/root/repo/target/debug/deps/golden-e200de04c17d7ccc: tests/golden.rs

tests/golden.rs:
