/root/repo/target/debug/deps/pnoc_faults-de58e4a412fe20d4.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/libpnoc_faults-de58e4a412fe20d4.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
