/root/repo/target/debug/deps/power_props-49d78a007430c4b3.d: crates/power/tests/power_props.rs Cargo.toml

/root/repo/target/debug/deps/libpower_props-49d78a007430c4b3.rmeta: crates/power/tests/power_props.rs Cargo.toml

crates/power/tests/power_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
