/root/repo/target/debug/deps/pipeline-3f6ca297321dd4fb.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-3f6ca297321dd4fb: tests/pipeline.rs

tests/pipeline.rs:
