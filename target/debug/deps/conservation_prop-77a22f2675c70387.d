/root/repo/target/debug/deps/conservation_prop-77a22f2675c70387.d: tests/conservation_prop.rs

/root/repo/target/debug/deps/conservation_prop-77a22f2675c70387: tests/conservation_prop.rs

tests/conservation_prop.rs:
