/root/repo/target/debug/deps/serde-e123f31480280fb3.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs

/root/repo/target/debug/deps/serde-e123f31480280fb3: vendor/serde/src/lib.rs vendor/serde/src/de.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
