/root/repo/target/debug/deps/fig11-292d62e489c1b708.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-292d62e489c1b708: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
