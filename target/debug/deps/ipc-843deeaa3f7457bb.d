/root/repo/target/debug/deps/ipc-843deeaa3f7457bb.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/ipc-843deeaa3f7457bb: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
