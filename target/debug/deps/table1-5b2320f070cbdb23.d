/root/repo/target/debug/deps/table1-5b2320f070cbdb23.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5b2320f070cbdb23: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
