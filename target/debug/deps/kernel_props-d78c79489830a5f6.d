/root/repo/target/debug/deps/kernel_props-d78c79489830a5f6.d: crates/sim/tests/kernel_props.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_props-d78c79489830a5f6.rmeta: crates/sim/tests/kernel_props.rs Cargo.toml

crates/sim/tests/kernel_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
