/root/repo/target/debug/deps/ablations-6db1043047bb3bbb.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6db1043047bb3bbb: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
