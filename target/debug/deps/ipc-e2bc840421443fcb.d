/root/repo/target/debug/deps/ipc-e2bc840421443fcb.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/ipc-e2bc840421443fcb: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
