/root/repo/target/debug/deps/fig11-b2f1e49d1cfd3136.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-b2f1e49d1cfd3136: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
