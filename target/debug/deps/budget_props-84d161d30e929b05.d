/root/repo/target/debug/deps/budget_props-84d161d30e929b05.d: crates/photonics/tests/budget_props.rs

/root/repo/target/debug/deps/budget_props-84d161d30e929b05: crates/photonics/tests/budget_props.rs

crates/photonics/tests/budget_props.rs:
