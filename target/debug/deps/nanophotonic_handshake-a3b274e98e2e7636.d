/root/repo/target/debug/deps/nanophotonic_handshake-a3b274e98e2e7636.d: src/lib.rs

/root/repo/target/debug/deps/nanophotonic_handshake-a3b274e98e2e7636: src/lib.rs

src/lib.rs:
