/root/repo/target/debug/deps/fig9-8123b8e6297f8878.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-8123b8e6297f8878: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
