/root/repo/target/debug/deps/nanophotonic_handshake-7363c45f4f89a17b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnanophotonic_handshake-7363c45f4f89a17b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
