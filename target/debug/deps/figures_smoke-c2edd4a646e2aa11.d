/root/repo/target/debug/deps/figures_smoke-c2edd4a646e2aa11.d: crates/bench/tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-c2edd4a646e2aa11: crates/bench/tests/figures_smoke.rs

crates/bench/tests/figures_smoke.rs:
