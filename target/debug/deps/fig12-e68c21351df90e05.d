/root/repo/target/debug/deps/fig12-e68c21351df90e05.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-e68c21351df90e05: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
