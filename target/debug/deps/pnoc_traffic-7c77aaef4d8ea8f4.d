/root/repo/target/debug/deps/pnoc_traffic-7c77aaef4d8ea8f4.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libpnoc_traffic-7c77aaef4d8ea8f4.rlib: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libpnoc_traffic-7c77aaef4d8ea8f4.rmeta: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
