/root/repo/target/debug/deps/pnoc_cmp-2705daa84c0034a8.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-2705daa84c0034a8.rlib: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-2705daa84c0034a8.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
