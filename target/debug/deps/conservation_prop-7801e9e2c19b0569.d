/root/repo/target/debug/deps/conservation_prop-7801e9e2c19b0569.d: tests/conservation_prop.rs Cargo.toml

/root/repo/target/debug/deps/libconservation_prop-7801e9e2c19b0569.rmeta: tests/conservation_prop.rs Cargo.toml

tests/conservation_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
