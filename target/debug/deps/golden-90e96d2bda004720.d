/root/repo/target/debug/deps/golden-90e96d2bda004720.d: tests/golden.rs

/root/repo/target/debug/deps/golden-90e96d2bda004720: tests/golden.rs

tests/golden.rs:
