/root/repo/target/debug/deps/fig10-c2f60424724783f1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c2f60424724783f1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
