/root/repo/target/debug/deps/fig8-d210a5f1b102fb24.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d210a5f1b102fb24: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
