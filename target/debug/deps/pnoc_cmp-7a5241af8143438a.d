/root/repo/target/debug/deps/pnoc_cmp-7a5241af8143438a.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_cmp-7a5241af8143438a.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs Cargo.toml

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
