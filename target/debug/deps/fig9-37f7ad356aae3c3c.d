/root/repo/target/debug/deps/fig9-37f7ad356aae3c3c.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-37f7ad356aae3c3c.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
