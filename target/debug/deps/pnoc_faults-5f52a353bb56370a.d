/root/repo/target/debug/deps/pnoc_faults-5f52a353bb56370a.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/libpnoc_faults-5f52a353bb56370a.rlib: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/debug/deps/libpnoc_faults-5f52a353bb56370a.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
