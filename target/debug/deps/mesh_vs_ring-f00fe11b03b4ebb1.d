/root/repo/target/debug/deps/mesh_vs_ring-f00fe11b03b4ebb1.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/libmesh_vs_ring-f00fe11b03b4ebb1.rmeta: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
