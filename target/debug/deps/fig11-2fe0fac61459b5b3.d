/root/repo/target/debug/deps/fig11-2fe0fac61459b5b3.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-2fe0fac61459b5b3: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
