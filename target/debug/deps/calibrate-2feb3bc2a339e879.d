/root/repo/target/debug/deps/calibrate-2feb3bc2a339e879.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-2feb3bc2a339e879.rmeta: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
