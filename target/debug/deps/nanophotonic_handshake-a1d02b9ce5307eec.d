/root/repo/target/debug/deps/nanophotonic_handshake-a1d02b9ce5307eec.d: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-a1d02b9ce5307eec.rlib: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-a1d02b9ce5307eec.rmeta: src/lib.rs

src/lib.rs:
