/root/repo/target/debug/deps/serde-5abb3e20abdfd48c.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs Cargo.toml

/root/repo/target/debug/deps/libserde-5abb3e20abdfd48c.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=--no-deps__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
