/root/repo/target/debug/deps/fig11-7aca29e418446325.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-7aca29e418446325: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
