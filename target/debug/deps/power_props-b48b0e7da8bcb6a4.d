/root/repo/target/debug/deps/power_props-b48b0e7da8bcb6a4.d: crates/power/tests/power_props.rs

/root/repo/target/debug/deps/power_props-b48b0e7da8bcb6a4: crates/power/tests/power_props.rs

crates/power/tests/power_props.rs:
