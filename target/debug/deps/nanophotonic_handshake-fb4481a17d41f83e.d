/root/repo/target/debug/deps/nanophotonic_handshake-fb4481a17d41f83e.d: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-fb4481a17d41f83e.rlib: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-fb4481a17d41f83e.rmeta: src/lib.rs

src/lib.rs:
