/root/repo/target/debug/deps/pnoc_cmp-5dcdaa3b96c2d7eb.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-5dcdaa3b96c2d7eb.rlib: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-5dcdaa3b96c2d7eb.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
