/root/repo/target/debug/deps/mesh_vs_ring-ced03f472810041e.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/mesh_vs_ring-ced03f472810041e: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
