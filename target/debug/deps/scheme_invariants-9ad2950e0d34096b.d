/root/repo/target/debug/deps/scheme_invariants-9ad2950e0d34096b.d: crates/noc/tests/scheme_invariants.rs

/root/repo/target/debug/deps/scheme_invariants-9ad2950e0d34096b: crates/noc/tests/scheme_invariants.rs

crates/noc/tests/scheme_invariants.rs:
