/root/repo/target/debug/deps/ablations-a11267a411e69288.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-a11267a411e69288.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
