/root/repo/target/debug/deps/pnoc_cmp-53215d042d952f3c.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-53215d042d952f3c.rlib: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-53215d042d952f3c.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
