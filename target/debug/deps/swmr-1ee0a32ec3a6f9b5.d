/root/repo/target/debug/deps/swmr-1ee0a32ec3a6f9b5.d: crates/bench/src/bin/swmr.rs Cargo.toml

/root/repo/target/debug/deps/libswmr-1ee0a32ec3a6f9b5.rmeta: crates/bench/src/bin/swmr.rs Cargo.toml

crates/bench/src/bin/swmr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
