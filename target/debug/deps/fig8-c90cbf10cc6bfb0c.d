/root/repo/target/debug/deps/fig8-c90cbf10cc6bfb0c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c90cbf10cc6bfb0c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
