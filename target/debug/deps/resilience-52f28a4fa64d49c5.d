/root/repo/target/debug/deps/resilience-52f28a4fa64d49c5.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-52f28a4fa64d49c5: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
