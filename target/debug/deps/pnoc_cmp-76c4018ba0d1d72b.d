/root/repo/target/debug/deps/pnoc_cmp-76c4018ba0d1d72b.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-76c4018ba0d1d72b.rlib: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/libpnoc_cmp-76c4018ba0d1d72b.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
