/root/repo/target/debug/deps/fig2b-a04a51129cf40398.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-a04a51129cf40398: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
