/root/repo/target/debug/deps/pnoc_bench-4781514aea30519b.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_bench-4781514aea30519b.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
