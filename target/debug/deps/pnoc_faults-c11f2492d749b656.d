/root/repo/target/debug/deps/pnoc_faults-c11f2492d749b656.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_faults-c11f2492d749b656.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
