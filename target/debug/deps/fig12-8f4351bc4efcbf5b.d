/root/repo/target/debug/deps/fig12-8f4351bc4efcbf5b.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-8f4351bc4efcbf5b: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
