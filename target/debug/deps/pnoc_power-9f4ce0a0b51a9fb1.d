/root/repo/target/debug/deps/pnoc_power-9f4ce0a0b51a9fb1.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libpnoc_power-9f4ce0a0b51a9fb1.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
