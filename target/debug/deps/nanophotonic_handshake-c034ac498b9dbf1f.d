/root/repo/target/debug/deps/nanophotonic_handshake-c034ac498b9dbf1f.d: src/lib.rs

/root/repo/target/debug/deps/nanophotonic_handshake-c034ac498b9dbf1f: src/lib.rs

src/lib.rs:
