/root/repo/target/debug/deps/fig9-20d2e9039b260010.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-20d2e9039b260010: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
