/root/repo/target/debug/deps/pnoc_bench-1d2d84d082e008bb.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpnoc_bench-1d2d84d082e008bb.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpnoc_bench-1d2d84d082e008bb.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
