/root/repo/target/debug/deps/swmr-a9e557adb001c0fb.d: crates/bench/src/bin/swmr.rs Cargo.toml

/root/repo/target/debug/deps/libswmr-a9e557adb001c0fb.rmeta: crates/bench/src/bin/swmr.rs Cargo.toml

crates/bench/src/bin/swmr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
