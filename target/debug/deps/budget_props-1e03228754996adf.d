/root/repo/target/debug/deps/budget_props-1e03228754996adf.d: crates/photonics/tests/budget_props.rs Cargo.toml

/root/repo/target/debug/deps/libbudget_props-1e03228754996adf.rmeta: crates/photonics/tests/budget_props.rs Cargo.toml

crates/photonics/tests/budget_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
