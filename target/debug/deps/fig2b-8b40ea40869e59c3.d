/root/repo/target/debug/deps/fig2b-8b40ea40869e59c3.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/libfig2b-8b40ea40869e59c3.rmeta: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
