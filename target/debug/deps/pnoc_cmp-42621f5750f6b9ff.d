/root/repo/target/debug/deps/pnoc_cmp-42621f5750f6b9ff.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/pnoc_cmp-42621f5750f6b9ff: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
