/root/repo/target/debug/deps/pnoc_power-adcea149c9e804bf.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/pnoc_power-adcea149c9e804bf: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
