/root/repo/target/debug/deps/table1-2861cb4641b994b7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-2861cb4641b994b7.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
