/root/repo/target/debug/deps/ipc-67784a1a7028c8c8.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/ipc-67784a1a7028c8c8: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
