/root/repo/target/debug/deps/serde-b95bfa129661fcee.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs

/root/repo/target/debug/deps/libserde-b95bfa129661fcee.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs

/root/repo/target/debug/deps/libserde-b95bfa129661fcee.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
