/root/repo/target/debug/deps/fig12-aff3526e611e15be.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-aff3526e611e15be: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
