/root/repo/target/debug/deps/fig10-dffe731209c50c98.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-dffe731209c50c98.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
