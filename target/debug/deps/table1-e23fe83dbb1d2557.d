/root/repo/target/debug/deps/table1-e23fe83dbb1d2557.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e23fe83dbb1d2557: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
