/root/repo/target/debug/deps/ipc-135650181edb1454.d: crates/bench/src/bin/ipc.rs Cargo.toml

/root/repo/target/debug/deps/libipc-135650181edb1454.rmeta: crates/bench/src/bin/ipc.rs Cargo.toml

crates/bench/src/bin/ipc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
