/root/repo/target/debug/deps/pnoc_cmp-baebe6d161a0919c.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/debug/deps/pnoc_cmp-baebe6d161a0919c: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
