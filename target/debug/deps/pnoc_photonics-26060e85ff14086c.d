/root/repo/target/debug/deps/pnoc_photonics-26060e85ff14086c.d: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/debug/deps/pnoc_photonics-26060e85ff14086c: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

crates/photonics/src/lib.rs:
crates/photonics/src/budget.rs:
crates/photonics/src/geometry.rs:
crates/photonics/src/loss.rs:
crates/photonics/src/ring.rs:
crates/photonics/src/waveguide.rs:
crates/photonics/src/wavelength.rs:
