/root/repo/target/debug/deps/mesh_vs_ring-3ce60fb34c7b4e46.d: crates/bench/src/bin/mesh_vs_ring.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_vs_ring-3ce60fb34c7b4e46.rmeta: crates/bench/src/bin/mesh_vs_ring.rs Cargo.toml

crates/bench/src/bin/mesh_vs_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
