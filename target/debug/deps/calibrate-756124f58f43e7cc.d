/root/repo/target/debug/deps/calibrate-756124f58f43e7cc.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-756124f58f43e7cc: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
