/root/repo/target/debug/deps/structure_props-5c3d41a1a567512f.d: crates/noc/tests/structure_props.rs

/root/repo/target/debug/deps/structure_props-5c3d41a1a567512f: crates/noc/tests/structure_props.rs

crates/noc/tests/structure_props.rs:
