/root/repo/target/debug/deps/fig11-854d1df119e0f23b.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-854d1df119e0f23b: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
