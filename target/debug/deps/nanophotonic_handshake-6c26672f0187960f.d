/root/repo/target/debug/deps/nanophotonic_handshake-6c26672f0187960f.d: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-6c26672f0187960f.rmeta: src/lib.rs

src/lib.rs:
