/root/repo/target/debug/deps/fig8-a8ed815c6f0e03a5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a8ed815c6f0e03a5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
