/root/repo/target/debug/deps/closed_loop-481eb57f81a34a2f.d: crates/cmp/tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-481eb57f81a34a2f: crates/cmp/tests/closed_loop.rs

crates/cmp/tests/closed_loop.rs:
