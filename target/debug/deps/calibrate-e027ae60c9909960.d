/root/repo/target/debug/deps/calibrate-e027ae60c9909960.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-e027ae60c9909960: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
