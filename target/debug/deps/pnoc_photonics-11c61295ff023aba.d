/root/repo/target/debug/deps/pnoc_photonics-11c61295ff023aba.d: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/debug/deps/libpnoc_photonics-11c61295ff023aba.rlib: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/debug/deps/libpnoc_photonics-11c61295ff023aba.rmeta: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

crates/photonics/src/lib.rs:
crates/photonics/src/budget.rs:
crates/photonics/src/geometry.rs:
crates/photonics/src/loss.rs:
crates/photonics/src/ring.rs:
crates/photonics/src/waveguide.rs:
crates/photonics/src/wavelength.rs:
