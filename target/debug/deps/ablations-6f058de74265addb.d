/root/repo/target/debug/deps/ablations-6f058de74265addb.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6f058de74265addb: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
