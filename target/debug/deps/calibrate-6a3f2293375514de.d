/root/repo/target/debug/deps/calibrate-6a3f2293375514de.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-6a3f2293375514de: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
