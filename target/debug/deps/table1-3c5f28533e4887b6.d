/root/repo/target/debug/deps/table1-3c5f28533e4887b6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3c5f28533e4887b6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
