/root/repo/target/debug/deps/fig10-42ff73b570c1b877.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-42ff73b570c1b877.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
