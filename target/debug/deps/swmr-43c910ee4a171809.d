/root/repo/target/debug/deps/swmr-43c910ee4a171809.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/swmr-43c910ee4a171809: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
