/root/repo/target/debug/deps/fig12-6cadaa64b2fce028.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-6cadaa64b2fce028: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
