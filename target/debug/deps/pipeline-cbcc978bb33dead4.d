/root/repo/target/debug/deps/pipeline-cbcc978bb33dead4.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-cbcc978bb33dead4.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
