/root/repo/target/debug/deps/closed_loop-7cbde84449214a9e.d: crates/cmp/tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-7cbde84449214a9e: crates/cmp/tests/closed_loop.rs

crates/cmp/tests/closed_loop.rs:
