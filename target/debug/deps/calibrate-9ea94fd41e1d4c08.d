/root/repo/target/debug/deps/calibrate-9ea94fd41e1d4c08.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-9ea94fd41e1d4c08.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
