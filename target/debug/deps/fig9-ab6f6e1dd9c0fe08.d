/root/repo/target/debug/deps/fig9-ab6f6e1dd9c0fe08.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-ab6f6e1dd9c0fe08: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
