/root/repo/target/debug/deps/serde_json-31de9de74768a492.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-31de9de74768a492: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
