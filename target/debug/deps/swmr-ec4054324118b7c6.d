/root/repo/target/debug/deps/swmr-ec4054324118b7c6.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/swmr-ec4054324118b7c6: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
