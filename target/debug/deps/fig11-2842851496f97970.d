/root/repo/target/debug/deps/fig11-2842851496f97970.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-2842851496f97970.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
