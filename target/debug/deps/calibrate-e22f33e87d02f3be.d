/root/repo/target/debug/deps/calibrate-e22f33e87d02f3be.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-e22f33e87d02f3be.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
