/root/repo/target/debug/deps/scheme_invariants-0ce5e992bd7398ba.d: crates/noc/tests/scheme_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_invariants-0ce5e992bd7398ba.rmeta: crates/noc/tests/scheme_invariants.rs Cargo.toml

crates/noc/tests/scheme_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
