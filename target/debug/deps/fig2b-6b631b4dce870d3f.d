/root/repo/target/debug/deps/fig2b-6b631b4dce870d3f.d: crates/bench/src/bin/fig2b.rs Cargo.toml

/root/repo/target/debug/deps/libfig2b-6b631b4dce870d3f.rmeta: crates/bench/src/bin/fig2b.rs Cargo.toml

crates/bench/src/bin/fig2b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
