/root/repo/target/debug/deps/pnoc_power-1ed6da6390dd39c6.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-1ed6da6390dd39c6.rlib: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-1ed6da6390dd39c6.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
