/root/repo/target/debug/deps/pnoc_noc-590eb5605d063f45.d: crates/noc/src/lib.rs crates/noc/src/calendar.rs crates/noc/src/channel.rs crates/noc/src/config.rs crates/noc/src/emesh.rs crates/noc/src/metrics.rs crates/noc/src/network.rs crates/noc/src/outqueue.rs crates/noc/src/packet.rs crates/noc/src/slots.rs crates/noc/src/sources.rs crates/noc/src/swmr.rs crates/noc/src/topology.rs

/root/repo/target/debug/deps/libpnoc_noc-590eb5605d063f45.rmeta: crates/noc/src/lib.rs crates/noc/src/calendar.rs crates/noc/src/channel.rs crates/noc/src/config.rs crates/noc/src/emesh.rs crates/noc/src/metrics.rs crates/noc/src/network.rs crates/noc/src/outqueue.rs crates/noc/src/packet.rs crates/noc/src/slots.rs crates/noc/src/sources.rs crates/noc/src/swmr.rs crates/noc/src/topology.rs

crates/noc/src/lib.rs:
crates/noc/src/calendar.rs:
crates/noc/src/channel.rs:
crates/noc/src/config.rs:
crates/noc/src/emesh.rs:
crates/noc/src/metrics.rs:
crates/noc/src/network.rs:
crates/noc/src/outqueue.rs:
crates/noc/src/packet.rs:
crates/noc/src/slots.rs:
crates/noc/src/sources.rs:
crates/noc/src/swmr.rs:
crates/noc/src/topology.rs:
