/root/repo/target/debug/deps/fig12-370a5163b3c81548.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-370a5163b3c81548.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
