/root/repo/target/debug/deps/serde_json-0040e188be81d7b8.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-0040e188be81d7b8.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=--no-deps__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
