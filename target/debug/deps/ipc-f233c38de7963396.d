/root/repo/target/debug/deps/ipc-f233c38de7963396.d: crates/bench/src/bin/ipc.rs

/root/repo/target/debug/deps/ipc-f233c38de7963396: crates/bench/src/bin/ipc.rs

crates/bench/src/bin/ipc.rs:
