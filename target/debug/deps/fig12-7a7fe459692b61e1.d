/root/repo/target/debug/deps/fig12-7a7fe459692b61e1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-7a7fe459692b61e1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
