/root/repo/target/debug/deps/paper_claims-670a8c88fa602370.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-670a8c88fa602370: tests/paper_claims.rs

tests/paper_claims.rs:
