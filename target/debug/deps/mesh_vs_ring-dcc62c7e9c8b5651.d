/root/repo/target/debug/deps/mesh_vs_ring-dcc62c7e9c8b5651.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/mesh_vs_ring-dcc62c7e9c8b5651: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
