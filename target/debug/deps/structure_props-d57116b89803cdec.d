/root/repo/target/debug/deps/structure_props-d57116b89803cdec.d: crates/noc/tests/structure_props.rs Cargo.toml

/root/repo/target/debug/deps/libstructure_props-d57116b89803cdec.rmeta: crates/noc/tests/structure_props.rs Cargo.toml

crates/noc/tests/structure_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
