/root/repo/target/debug/deps/fig12-d33f98904c426a93.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-d33f98904c426a93.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
