/root/repo/target/debug/deps/fig10-469bc7cd8c49dd42.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-469bc7cd8c49dd42: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
