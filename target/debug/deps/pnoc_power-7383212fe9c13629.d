/root/repo/target/debug/deps/pnoc_power-7383212fe9c13629.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-7383212fe9c13629.rlib: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/debug/deps/libpnoc_power-7383212fe9c13629.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
