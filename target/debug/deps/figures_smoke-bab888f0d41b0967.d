/root/repo/target/debug/deps/figures_smoke-bab888f0d41b0967.d: crates/bench/tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-bab888f0d41b0967: crates/bench/tests/figures_smoke.rs

crates/bench/tests/figures_smoke.rs:
