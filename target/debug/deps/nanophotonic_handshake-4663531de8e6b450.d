/root/repo/target/debug/deps/nanophotonic_handshake-4663531de8e6b450.d: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-4663531de8e6b450.rlib: src/lib.rs

/root/repo/target/debug/deps/libnanophotonic_handshake-4663531de8e6b450.rmeta: src/lib.rs

src/lib.rs:
