/root/repo/target/debug/deps/scheme_invariants-4942cfd57d828493.d: crates/noc/tests/scheme_invariants.rs

/root/repo/target/debug/deps/scheme_invariants-4942cfd57d828493: crates/noc/tests/scheme_invariants.rs

crates/noc/tests/scheme_invariants.rs:
