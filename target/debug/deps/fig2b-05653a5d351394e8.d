/root/repo/target/debug/deps/fig2b-05653a5d351394e8.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-05653a5d351394e8: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
