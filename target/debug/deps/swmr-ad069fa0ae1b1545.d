/root/repo/target/debug/deps/swmr-ad069fa0ae1b1545.d: crates/bench/src/bin/swmr.rs

/root/repo/target/debug/deps/swmr-ad069fa0ae1b1545: crates/bench/src/bin/swmr.rs

crates/bench/src/bin/swmr.rs:
