/root/repo/target/debug/deps/calibrate-548f841d6331e6a0.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-548f841d6331e6a0: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
