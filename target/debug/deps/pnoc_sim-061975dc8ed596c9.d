/root/repo/target/debug/deps/pnoc_sim-061975dc8ed596c9.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

/root/repo/target/debug/deps/libpnoc_sim-061975dc8ed596c9.rmeta: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/clock.rs:
crates/sim/src/plan.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/util.rs:
