/root/repo/target/debug/deps/pipeline-6b25876326f9d8e4.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6b25876326f9d8e4: tests/pipeline.rs

tests/pipeline.rs:
