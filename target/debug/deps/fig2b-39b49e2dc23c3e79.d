/root/repo/target/debug/deps/fig2b-39b49e2dc23c3e79.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-39b49e2dc23c3e79: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
