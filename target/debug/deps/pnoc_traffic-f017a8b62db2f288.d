/root/repo/target/debug/deps/pnoc_traffic-f017a8b62db2f288.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libpnoc_traffic-f017a8b62db2f288.rlib: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libpnoc_traffic-f017a8b62db2f288.rmeta: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
