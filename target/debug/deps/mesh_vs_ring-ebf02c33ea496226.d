/root/repo/target/debug/deps/mesh_vs_ring-ebf02c33ea496226.d: crates/bench/src/bin/mesh_vs_ring.rs

/root/repo/target/debug/deps/mesh_vs_ring-ebf02c33ea496226: crates/bench/src/bin/mesh_vs_ring.rs

crates/bench/src/bin/mesh_vs_ring.rs:
