/root/repo/target/debug/deps/case_study-21b534ac0af44ad2.d: crates/noc/tests/case_study.rs Cargo.toml

/root/repo/target/debug/deps/libcase_study-21b534ac0af44ad2.rmeta: crates/noc/tests/case_study.rs Cargo.toml

crates/noc/tests/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
