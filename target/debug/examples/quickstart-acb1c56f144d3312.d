/root/repo/target/debug/examples/quickstart-acb1c56f144d3312.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-acb1c56f144d3312: examples/quickstart.rs

examples/quickstart.rs:
