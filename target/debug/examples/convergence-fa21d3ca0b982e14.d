/root/repo/target/debug/examples/convergence-fa21d3ca0b982e14.d: examples/convergence.rs

/root/repo/target/debug/examples/convergence-fa21d3ca0b982e14: examples/convergence.rs

examples/convergence.rs:
