/root/repo/target/debug/examples/cmp_ipc-c6cc89714af0e4c6.d: examples/cmp_ipc.rs

/root/repo/target/debug/examples/cmp_ipc-c6cc89714af0e4c6: examples/cmp_ipc.rs

examples/cmp_ipc.rs:
