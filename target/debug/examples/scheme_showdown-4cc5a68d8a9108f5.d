/root/repo/target/debug/examples/scheme_showdown-4cc5a68d8a9108f5.d: examples/scheme_showdown.rs

/root/repo/target/debug/examples/scheme_showdown-4cc5a68d8a9108f5: examples/scheme_showdown.rs

examples/scheme_showdown.rs:
