/root/repo/target/debug/examples/fairness_audit-f917de3f78154918.d: examples/fairness_audit.rs

/root/repo/target/debug/examples/fairness_audit-f917de3f78154918: examples/fairness_audit.rs

examples/fairness_audit.rs:
