/root/repo/target/debug/examples/power_report-63a932b9cd495ab9.d: examples/power_report.rs Cargo.toml

/root/repo/target/debug/examples/libpower_report-63a932b9cd495ab9.rmeta: examples/power_report.rs Cargo.toml

examples/power_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
