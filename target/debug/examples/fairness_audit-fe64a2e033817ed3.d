/root/repo/target/debug/examples/fairness_audit-fe64a2e033817ed3.d: examples/fairness_audit.rs

/root/repo/target/debug/examples/fairness_audit-fe64a2e033817ed3: examples/fairness_audit.rs

examples/fairness_audit.rs:
