/root/repo/target/debug/examples/trace_replay-95b058f09c95ec4f.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-95b058f09c95ec4f: examples/trace_replay.rs

examples/trace_replay.rs:
