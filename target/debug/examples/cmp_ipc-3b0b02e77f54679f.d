/root/repo/target/debug/examples/cmp_ipc-3b0b02e77f54679f.d: examples/cmp_ipc.rs Cargo.toml

/root/repo/target/debug/examples/libcmp_ipc-3b0b02e77f54679f.rmeta: examples/cmp_ipc.rs Cargo.toml

examples/cmp_ipc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
