/root/repo/target/debug/examples/trace_replay-3a68f7c04dc2a808.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-3a68f7c04dc2a808: examples/trace_replay.rs

examples/trace_replay.rs:
