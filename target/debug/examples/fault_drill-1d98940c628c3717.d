/root/repo/target/debug/examples/fault_drill-1d98940c628c3717.d: examples/fault_drill.rs

/root/repo/target/debug/examples/fault_drill-1d98940c628c3717: examples/fault_drill.rs

examples/fault_drill.rs:
