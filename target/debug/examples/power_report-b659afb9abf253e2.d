/root/repo/target/debug/examples/power_report-b659afb9abf253e2.d: examples/power_report.rs

/root/repo/target/debug/examples/power_report-b659afb9abf253e2: examples/power_report.rs

examples/power_report.rs:
