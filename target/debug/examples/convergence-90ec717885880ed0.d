/root/repo/target/debug/examples/convergence-90ec717885880ed0.d: examples/convergence.rs

/root/repo/target/debug/examples/convergence-90ec717885880ed0: examples/convergence.rs

examples/convergence.rs:
