/root/repo/target/debug/examples/scheme_showdown-cdff9f9d04c2583f.d: examples/scheme_showdown.rs

/root/repo/target/debug/examples/scheme_showdown-cdff9f9d04c2583f: examples/scheme_showdown.rs

examples/scheme_showdown.rs:
