/root/repo/target/debug/examples/convergence-b323aaa1c45c8200.d: examples/convergence.rs Cargo.toml

/root/repo/target/debug/examples/libconvergence-b323aaa1c45c8200.rmeta: examples/convergence.rs Cargo.toml

examples/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
