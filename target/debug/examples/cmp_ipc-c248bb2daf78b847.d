/root/repo/target/debug/examples/cmp_ipc-c248bb2daf78b847.d: examples/cmp_ipc.rs

/root/repo/target/debug/examples/cmp_ipc-c248bb2daf78b847: examples/cmp_ipc.rs

examples/cmp_ipc.rs:
