/root/repo/target/debug/examples/fault_drill-1e3c8482e0132189.d: examples/fault_drill.rs

/root/repo/target/debug/examples/fault_drill-1e3c8482e0132189: examples/fault_drill.rs

examples/fault_drill.rs:
