/root/repo/target/debug/examples/scheme_showdown-c1d99052330224f5.d: examples/scheme_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_showdown-c1d99052330224f5.rmeta: examples/scheme_showdown.rs Cargo.toml

examples/scheme_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
