/root/repo/target/debug/examples/power_report-a919ac0388604102.d: examples/power_report.rs

/root/repo/target/debug/examples/power_report-a919ac0388604102: examples/power_report.rs

examples/power_report.rs:
