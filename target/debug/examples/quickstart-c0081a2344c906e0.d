/root/repo/target/debug/examples/quickstart-c0081a2344c906e0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0081a2344c906e0: examples/quickstart.rs

examples/quickstart.rs:
