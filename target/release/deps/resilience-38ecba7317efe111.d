/root/repo/target/release/deps/resilience-38ecba7317efe111.d: crates/bench/src/bin/resilience.rs

/root/repo/target/release/deps/resilience-38ecba7317efe111: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
