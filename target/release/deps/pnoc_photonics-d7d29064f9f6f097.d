/root/repo/target/release/deps/pnoc_photonics-d7d29064f9f6f097.d: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/release/deps/libpnoc_photonics-d7d29064f9f6f097.rlib: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

/root/repo/target/release/deps/libpnoc_photonics-d7d29064f9f6f097.rmeta: crates/photonics/src/lib.rs crates/photonics/src/budget.rs crates/photonics/src/geometry.rs crates/photonics/src/loss.rs crates/photonics/src/ring.rs crates/photonics/src/waveguide.rs crates/photonics/src/wavelength.rs

crates/photonics/src/lib.rs:
crates/photonics/src/budget.rs:
crates/photonics/src/geometry.rs:
crates/photonics/src/loss.rs:
crates/photonics/src/ring.rs:
crates/photonics/src/waveguide.rs:
crates/photonics/src/wavelength.rs:
