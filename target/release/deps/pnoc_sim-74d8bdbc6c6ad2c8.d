/root/repo/target/release/deps/pnoc_sim-74d8bdbc6c6ad2c8.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

/root/repo/target/release/deps/libpnoc_sim-74d8bdbc6c6ad2c8.rlib: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

/root/repo/target/release/deps/libpnoc_sim-74d8bdbc6c6ad2c8.rmeta: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/clock.rs crates/sim/src/plan.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/util.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/clock.rs:
crates/sim/src/plan.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/util.rs:
