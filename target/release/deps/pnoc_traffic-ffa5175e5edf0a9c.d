/root/repo/target/release/deps/pnoc_traffic-ffa5175e5edf0a9c.d: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libpnoc_traffic-ffa5175e5edf0a9c.rlib: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libpnoc_traffic-ffa5175e5edf0a9c.rmeta: crates/traffic/src/lib.rs crates/traffic/src/apps.rs crates/traffic/src/injection.rs crates/traffic/src/pattern.rs crates/traffic/src/stats.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/apps.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/trace.rs:
