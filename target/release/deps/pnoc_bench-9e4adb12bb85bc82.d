/root/repo/target/release/deps/pnoc_bench-9e4adb12bb85bc82.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpnoc_bench-9e4adb12bb85bc82.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpnoc_bench-9e4adb12bb85bc82.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/figures.rs crates/bench/src/grids.rs crates/bench/src/plot.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/figures.rs:
crates/bench/src/grids.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
