/root/repo/target/release/deps/pnoc_power-d5622249742bb6f8.d: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/release/deps/libpnoc_power-d5622249742bb6f8.rlib: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

/root/repo/target/release/deps/libpnoc_power-d5622249742bb6f8.rmeta: crates/power/src/lib.rs crates/power/src/dynamic.rs crates/power/src/laser.rs crates/power/src/orion.rs crates/power/src/report.rs

crates/power/src/lib.rs:
crates/power/src/dynamic.rs:
crates/power/src/laser.rs:
crates/power/src/orion.rs:
crates/power/src/report.rs:
