/root/repo/target/release/deps/pnoc_cmp-2bbbaf80dd9c145d.d: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/release/deps/libpnoc_cmp-2bbbaf80dd9c145d.rlib: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

/root/repo/target/release/deps/libpnoc_cmp-2bbbaf80dd9c145d.rmeta: crates/cmp/src/lib.rs crates/cmp/src/bank.rs crates/cmp/src/core.rs crates/cmp/src/system.rs crates/cmp/src/workload.rs

crates/cmp/src/lib.rs:
crates/cmp/src/bank.rs:
crates/cmp/src/core.rs:
crates/cmp/src/system.rs:
crates/cmp/src/workload.rs:
