/root/repo/target/release/deps/pnoc_faults-eb8e83d0a35700bd.d: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/release/deps/libpnoc_faults-eb8e83d0a35700bd.rlib: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

/root/repo/target/release/deps/libpnoc_faults-eb8e83d0a35700bd.rmeta: crates/faults/src/lib.rs crates/faults/src/config.rs crates/faults/src/engine.rs crates/faults/src/rings.rs

crates/faults/src/lib.rs:
crates/faults/src/config.rs:
crates/faults/src/engine.rs:
crates/faults/src/rings.rs:
