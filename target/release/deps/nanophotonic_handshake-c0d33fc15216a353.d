/root/repo/target/release/deps/nanophotonic_handshake-c0d33fc15216a353.d: src/lib.rs

/root/repo/target/release/deps/libnanophotonic_handshake-c0d33fc15216a353.rlib: src/lib.rs

/root/repo/target/release/deps/libnanophotonic_handshake-c0d33fc15216a353.rmeta: src/lib.rs

src/lib.rs:
