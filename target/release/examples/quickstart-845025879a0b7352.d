/root/repo/target/release/examples/quickstart-845025879a0b7352.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-845025879a0b7352: examples/quickstart.rs

examples/quickstart.rs:
