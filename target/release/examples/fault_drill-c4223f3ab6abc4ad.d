/root/repo/target/release/examples/fault_drill-c4223f3ab6abc4ad.d: examples/fault_drill.rs

/root/repo/target/release/examples/fault_drill-c4223f3ab6abc4ad: examples/fault_drill.rs

examples/fault_drill.rs:
