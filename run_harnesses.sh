#!/bin/bash
# Run every paper-reproduction harness at full fidelity, saving text output,
# rendered SVG figures, and JSON results.
cd /root/repo
./ci.sh || exit 1
mkdir -p results results/json
for bin in table1 fig12 fig2b fig8 fig9 fig10 ipc ablations swmr mesh_vs_ring fig11 resilience; do
  echo "== running $bin =="
  ./target/release/$bin --svg results --json results/json > results/$bin.txt 2>&1
  echo "== $bin done rc=$? =="
done
echo ALL_HARNESSES_DONE
