//! Fault drill: watch one lost ACK get repaired by timeout/retransmit.
//!
//! A single packet crosses a small DHS ring whose fault engine is rigged to
//! destroy exactly one ACK (`ack_loss = 1.0`, budget of 1). Cycle by cycle:
//! the flit arrives and is accepted, the home's ACK evaporates, the sender's
//! ACK timer expires and retransmits, the home recognizes the duplicate,
//! discards it and re-ACKs, and the sender finally releases its copy — the
//! core sees the packet exactly once.
//!
//! Run with: `cargo run --release --example fault_drill`

use nanophotonic_handshake::prelude::*;

fn main() {
    let mut cfg = NetworkConfig::small(Scheme::Dhs { setaside: 2 });
    cfg = cfg.with_faults(FaultConfig {
        ack_loss: 1.0,     // every exposed ACK dies...
        max_ack_faults: 1, // ...but the budget stops the carnage after one
        ..FaultConfig::none()
    });
    println!(
        "16-node DHS ring, ACK timeout {} cycles, {} attempts max\n",
        cfg.recovery.timeout_cycles, cfg.recovery.max_retries
    );

    let mut net = Network::new(cfg).expect("valid configuration");
    let id = net.inject(0, 5, PacketKind::Request, 0, true);
    println!("cycle 0: core 0 injects packet #{id} for node 5");

    let mut prev = net.metrics().clone();
    for _ in 0..200 {
        net.step();
        let now = net.now();
        let m = net.metrics().clone();
        if m.sends > prev.sends {
            let attempt = m.sends;
            println!("cycle {now}: sender puts flit on the ring (transmission #{attempt})");
        }
        if m.arrivals > prev.arrivals {
            println!("cycle {now}: flit reaches home node 5");
        }
        if m.faults_acks_lost > prev.faults_acks_lost {
            println!("cycle {now}: *** fault engine destroys the ACK in flight ***");
        }
        if m.timeout_retransmissions > prev.timeout_retransmissions {
            println!("cycle {now}: ACK timer expires — sender re-queues the packet");
        }
        if m.duplicates_suppressed > prev.duplicates_suppressed {
            println!("cycle {now}: home sees the duplicate, discards it, re-ACKs");
        }
        for d in net.deliveries() {
            println!("cycle {now}: home ejects packet #{} to its core", d.pkt.id);
        }
        prev = m;
        if net.is_drained() {
            println!("cycle {now}: network drained — sender released its copy\n");
            break;
        }
    }

    let m = net.metrics();
    assert!(net.is_drained(), "drill should finish inside 200 cycles");
    assert_eq!(m.delivered, 1, "the core must see the packet exactly once");
    println!(
        "delivered {} packet(s): {} ACK lost, {} timeout retransmission(s), \
         {} duplicate(s) suppressed, 0 packets lost",
        m.delivered, m.faults_acks_lost, m.timeout_retransmissions, m.duplicates_suppressed
    );
}
