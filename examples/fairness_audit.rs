//! Fairness audit (paper §III-D): with setaside buffers or circulation,
//! senders near a home node grab tokens first and can starve downstream
//! nodes on a *contended* channel. The sit-out policy (after Vantrease's
//! Fair Slot) trades a little throughput for a much fairer share.
//!
//! A hotspot pattern makes the effect visible: under uniform random traffic
//! each channel is lightly contended and fairness is a non-issue; a hot home
//! node concentrates all 63 senders on one token stream.
//!
//! Run with: `cargo run --release --example fairness_audit`

use nanophotonic_handshake::prelude::*;

fn main() {
    let plan = RunPlan::new(4_000, 16_000, 2_000);
    let pattern = TrafficPattern::Hotspot {
        target: 0,
        fraction: 0.30,
    };
    let rate = 0.06; // saturates the hot channel, not the rest

    println!("DHS w/ Circulation, hotspot(30% → node 0) @ {rate} pkt/cycle/core\n");
    println!(
        "{:<14} {:>11} {:>9} {:>12} {:>12} {:>8}",
        "policy", "Jain worst", "Jain avg", "avg latency", "throughput", "p99"
    );
    for (name, policy) in [
        ("none", FairnessPolicy::None),
        (
            "sit-out(1,16)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 16,
            },
        ),
        (
            "sit-out(1,32)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 32,
            },
        ),
        (
            "sit-out(1,48)",
            FairnessPolicy::SitOut {
                serve_quota: 1,
                sit_out: 48,
            },
        ),
    ] {
        let mut cfg = NetworkConfig::paper_default(Scheme::DhsCirculation);
        cfg.fairness = policy;
        let s = run_synthetic_point(cfg, pattern, rate, plan);
        println!(
            "{:<14} {:>11.3} {:>9.3} {:>12.1} {:>12.4} {:>8.0}",
            name,
            s.jain_worst,
            s.jain_fairness,
            s.avg_latency,
            s.throughput_per_core,
            s.p99_latency
        );
    }
    println!(
        "\nJain worst = fairness of the most contended channel (1.0 = every sender\n\
         served equally; 1/63 ≈ 0.016 = one sender monopolizes). Stronger sit-out\n\
         policies equalize service at a small throughput and latency cost."
    );
}
