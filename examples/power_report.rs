//! Hardware cost and power: Table I component budgets plus a Fig. 12-style
//! power breakdown for a live traffic run.
//!
//! Run with: `cargo run --release --example power_report`

use nanophotonic_handshake::photonics::budget::SchemeFeatures;
use nanophotonic_handshake::prelude::*;

fn main() {
    // Table I: optical component budgets for a 64-node network.
    let dims = NetworkDims::paper_default();
    println!("Table I — optical component budgets (64 nodes)");
    println!(
        "{:<14} {:>8} {:>9} {:>13} {:>12}",
        "scheme", "data WG", "token WG", "handshake WG", "micro-rings"
    );
    for (label, features) in [
        ("Token Slot", SchemeFeatures::credit_baseline()),
        ("GHS / DHS", SchemeFeatures::handshake()),
        ("DHS-cir", SchemeFeatures::circulation()),
    ] {
        let b = ComponentBudget::for_scheme(dims, features);
        let (d, t, h, rings) = b.table1_row();
        println!("{label:<14} {d:>8} {t:>9} {h:>13} {rings:>12}");
    }

    // Fig. 12-style breakdown: run traffic, convert activity into watts.
    println!("\nFig. 12(a)-style breakdown at UR 0.05 pkt/cycle/core (watts)");
    println!(
        "{:<20} {:>7} {:>8} {:>6} {:>6} {:>7} {:>7} {:>10}",
        "scheme", "laser", "heating", "E/O", "O/E", "router", "total", "nJ/packet"
    );
    let plan = RunPlan::new(3_000, 12_000, 1_500);
    for scheme in Scheme::paper_set(8) {
        let cfg = NetworkConfig::paper_default(scheme);
        let mut net = Network::new(cfg).expect("valid config");
        let mut src = SyntheticSource::new(
            TrafficPattern::UniformRandom,
            0.05,
            cfg.nodes,
            cfg.cores_per_node,
            11,
        );
        net.run_open_loop(&mut src, plan);
        let activity = ActivityProfile::from_metrics(net.metrics(), plan.total());
        let report = PowerReport::paper_default();
        let b = report.breakdown(scheme, &activity);
        let epp = report.energy_per_packet_j(scheme, &activity) * 1e9;
        println!(
            "{:<20} {:>7.2} {:>8.2} {:>6.2} {:>6.2} {:>7.2} {:>7.2} {:>10.2}",
            scheme.label(),
            b.laser_w,
            b.heating_w,
            b.eo_w,
            b.oe_w,
            b.router_w,
            b.total_w(),
            epp
        );
    }
    println!("\n(laser + ring heating dominate, as in the paper's Fig. 12a)");
}
