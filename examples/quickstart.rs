//! Quickstart: simulate the paper's 64-node nanophotonic ring with
//! Distributed Handshake + setaside buffers under uniform-random traffic,
//! and print what the run measured.
//!
//! Run with: `cargo run --release --example quickstart`

use nanophotonic_handshake::prelude::*;

fn main() {
    // The paper's evaluation platform: 64 nodes × 4 cores, 8-segment ring
    // (8-cycle round trip at 5 GHz), 8 buffer slots per destination.
    let cfg = NetworkConfig::paper_default(Scheme::Dhs { setaside: 8 });

    // Drive every core with an independent Bernoulli process at 0.10
    // packets/cycle/core, destinations uniform random.
    let mut network = Network::new(cfg).expect("valid configuration");
    let mut source = SyntheticSource::new(
        TrafficPattern::UniformRandom,
        0.10,
        cfg.nodes,
        cfg.cores_per_node,
        /* seed = */ 7,
    );

    // Warm up, measure, drain — the standard open-loop methodology.
    let summary = network.run_open_loop(&mut source, RunPlan::new(5_000, 20_000, 2_000));

    println!("scheme            : {}", cfg.scheme.label());
    println!(
        "offered load      : {:.3} packets/cycle/core",
        summary.offered_per_core
    );
    println!(
        "accepted load     : {:.3} packets/cycle/core",
        summary.throughput_per_core
    );
    println!("average latency   : {:.1} cycles", summary.avg_latency);
    println!("p99 latency       : {:.1} cycles", summary.p99_latency);
    println!("queue wait        : {:.1} cycles", summary.avg_queue_wait);
    println!("drop rate         : {:.4} %", summary.drop_rate * 100.0);
    println!("fairness (Jain)   : {:.3}", summary.jain_fairness);
    println!("saturated         : {}", summary.saturated);

    let m = network.metrics();
    println!(
        "\npackets: generated {} / delivered {} / ring transmissions {}",
        m.generated, m.delivered, m.sends
    );
    assert_eq!(m.generated, m.delivered, "nothing may be lost");
}
