//! Simulation methodology: run-length control with batch-means confidence
//! intervals. Instead of guessing a measurement window, keep simulating until
//! the 95 % CI on mean latency is tighter than a target — then report the
//! mean *with* its uncertainty.
//!
//! Run with: `cargo run --release --example convergence [rate]`

use nanophotonic_handshake::prelude::*;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.17);
    let cfg = NetworkConfig::paper_default(Scheme::Dhs { setaside: 8 });
    let mut net = Network::new(cfg).expect("valid config");
    let mut src = SyntheticSource::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.nodes,
        cfg.cores_per_node,
        99,
    );
    let target_rel = 0.005; // ±0.5 % of the mean

    // Warm up without measuring.
    let warmup = 5_000u64;
    let mut buf = Vec::new();
    for _ in 0..warmup {
        buf.clear();
        src.generate(net.now(), &mut buf);
        for &(core, dst, kind, class) in &buf {
            net.inject_classed(core, dst, kind, 0, class, false);
        }
        net.step();
    }

    println!(
        "DHS w/ Setaside, UR @ {rate}: extending measurement until CI95 ≤ {:.1}% of mean\n",
        target_rel * 100.0
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "cycles", "packets", "mean (cyc)", "CI95 ±", "rel"
    );

    let chunk = 2_000u64;
    let mut measured_cycles = 0u64;
    loop {
        for _ in 0..chunk {
            buf.clear();
            src.generate(net.now(), &mut buf);
            for &(core, dst, kind, class) in &buf {
                net.inject_classed(core, dst, kind, 0, class, true);
            }
            net.step();
        }
        measured_cycles += chunk;
        let b = &net.metrics().latency_batches;
        let mean = b.mean();
        let hw = b.ci95_half_width();
        let rel = hw / mean;
        println!(
            "{:>10} {:>10} {:>12.2} {:>12.3} {:>9.2}%",
            measured_cycles,
            b.count(),
            mean,
            hw,
            rel * 100.0
        );
        if b.converged(target_rel) {
            println!(
                "\nconverged: mean latency = {mean:.2} ± {hw:.2} cycles (95% CI) after {} packets",
                b.count()
            );
            break;
        }
        if measured_cycles > 400_000 {
            println!("\nnot converged within 400k cycles (offered load may be at saturation)");
            break;
        }
    }
}
