//! Compare all seven arbitration/flow-control schemes on the same workload —
//! the experiment that motivates the paper: credit-coupled token arbitration
//! (token channel, token slot) against the handshake family (GHS, DHS, and
//! their setaside/circulation variants).
//!
//! Run with: `cargo run --release --example scheme_showdown [--pattern BC]`

use nanophotonic_handshake::prelude::*;
use nanophotonic_handshake::sim::run_parallel;

fn main() {
    let pattern = match std::env::args().position(|a| a == "--pattern") {
        Some(i) => match std::env::args().nth(i + 1).as_deref() {
            Some("BC") => TrafficPattern::BitComplement,
            Some("TOR") => TrafficPattern::Tornado,
            _ => TrafficPattern::UniformRandom,
        },
        None => TrafficPattern::UniformRandom,
    };
    let rates = [0.01, 0.05, 0.09, 0.13, 0.17, 0.21];
    let schemes = Scheme::paper_set(8);
    let plan = RunPlan::new(4_000, 16_000, 2_000);

    println!(
        "pattern: {}  (latency in cycles; SAT = saturated)\n",
        pattern.label()
    );
    print!("{:<20}", "scheme");
    for r in rates {
        print!("{r:>8.2}");
    }
    println!();

    // Every (scheme, rate) point is an independent simulation; fan out.
    let jobs: Vec<(Scheme, f64)> = schemes
        .iter()
        .flat_map(|&s| rates.iter().map(move |&r| (s, r)))
        .collect();
    let results = run_parallel(&jobs, |_, &(scheme, rate)| {
        let cfg = NetworkConfig::paper_default(scheme);
        run_synthetic_point(cfg, pattern, rate, plan)
    });

    for (si, scheme) in schemes.iter().enumerate() {
        print!("{:<20}", scheme.label());
        for ri in 0..rates.len() {
            let s = &results[si * rates.len() + ri];
            if s.saturated {
                print!("{:>8}", "SAT");
            } else {
                print!("{:>8.1}", s.avg_latency);
            }
        }
        println!();
    }

    // The paper's headline: handshake improves throughput up to 62%.
    let sat = |scheme: Scheme| {
        schemes
            .iter()
            .position(|&s| s == scheme)
            .map(|si| {
                rates
                    .iter()
                    .enumerate()
                    .filter(|(ri, _)| !results[si * rates.len() + ri].saturated)
                    .map(|(_, &r)| r)
                    .fold(0.0f64, f64::max)
            })
            .expect("scheme in set")
    };
    let ts = sat(Scheme::TokenSlot);
    let cir = sat(Scheme::DhsCirculation);
    println!(
        "\nsaturation bandwidth: token slot {ts:.2}, DHS w/ circulation {cir:.2} (+{:.0}%)",
        (cir / ts - 1.0) * 100.0
    );
}
