//! Closed-loop CMP: how flow control reaches application IPC.
//!
//! 128 out-of-order cores with 4 MSHRs each self-throttle on network latency
//! (paper §V-A); this example runs one workload under all four compared
//! schemes and shows latency turning into instructions per cycle.
//!
//! Run with: `cargo run --release --example cmp_ipc [workload]`

use nanophotonic_handshake::cmp::workload::paper_workload;
use nanophotonic_handshake::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nas.cg".to_string());
    let workload = paper_workload(&name).unwrap_or_else(|| panic!("unknown workload {name}"));
    println!(
        "workload '{}': {:.1}% of instructions miss to a remote L2 bank\n",
        workload.name,
        workload.miss_per_instr * 100.0
    );

    let schemes = [
        Scheme::TokenChannel,
        Scheme::Ghs { setaside: 8 },
        Scheme::TokenSlot,
        Scheme::Dhs { setaside: 8 },
    ];
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>12}",
        "scheme", "IPC", "stall %", "net latency", "req/core/cyc"
    );
    let mut baseline_ipc = None;
    for scheme in schemes {
        let mut net_cfg = NetworkConfig::paper_default(scheme);
        net_cfg.cores_per_node = 2; // 128 cores + 128 L2 banks on 64 nodes
        let mut sys = CmpSystem::new(net_cfg, CmpConfig::paper_default(), workload.clone());
        let s = sys.run(2_000, 12_000);
        println!(
            "{:<18} {:>8.3} {:>9.1}% {:>12.1} {:>12.4}",
            scheme.label(),
            s.ipc,
            s.stall_fraction * 100.0,
            s.avg_net_latency,
            s.request_rate
        );
        if scheme == Scheme::TokenChannel {
            baseline_ipc = Some(s.ipc);
        } else if scheme == (Scheme::Ghs { setaside: 8 }) {
            if let Some(base) = baseline_ipc {
                println!(
                    "{:<18} GHS w/ Setaside vs Token Channel: {:+.1}% IPC",
                    "",
                    (s.ipc / base - 1.0) * 100.0
                );
            }
        }
    }
}
