//! Replay an application trace through the network — the Fig. 10 flow.
//!
//! Synthesizes the `fft` workload trace (a stand-in for the paper's
//! Simics-extracted traces), saves it to disk in the JSON-lines trace format,
//! loads it back, and replays it under a baseline and a handshake scheme.
//!
//! Run with: `cargo run --release --example trace_replay [app-name]`

use nanophotonic_handshake::prelude::*;
use nanophotonic_handshake::traffic::apps::Suite;
use std::io::BufReader;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let app = nanophotonic_handshake::traffic::apps::paper_app(&app_name)
        .unwrap_or_else(|| panic!("unknown workload {app_name}; see apps::all_paper_apps()"));

    let cfg = NetworkConfig::paper_default(Scheme::TokenSlot);
    let length = 30_000;
    println!(
        "synthesizing '{}' ({}): {} cores, {} nodes, {} cycles",
        app.name,
        match app.suite {
            Suite::SpecOmp => "SPEComp 2001",
            Suite::Parsec => "PARSEC",
            Suite::Splash2 => "SPLASH-2",
            Suite::Nas => "NAS",
            Suite::SpecJbb => "SPECjbb",
        },
        cfg.cores(),
        cfg.nodes,
        length
    );
    let trace = app.synthesize(cfg.cores(), cfg.nodes, length, 2024);
    println!(
        "  {} messages, {:.4} packets/cycle/core",
        trace.len(),
        trace.rate_per_core()
    );

    // Round-trip through the on-disk format.
    let path = std::env::temp_dir().join(format!("pnoc_trace_{}.jsonl", app.name));
    trace
        .save(std::fs::File::create(&path).expect("create trace file"))
        .expect("write trace");
    let loaded =
        Trace::load(BufReader::new(std::fs::File::open(&path).expect("open"))).expect("parse");
    assert_eq!(loaded, trace);
    println!(
        "  saved + reloaded {} ({} bytes)\n",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // Replay under both flow-control families.
    let plan = RunPlan::new(5_000, length - 10_000, 3_000);
    for scheme in [
        Scheme::TokenChannel,
        Scheme::Ghs { setaside: 8 },
        Scheme::TokenSlot,
        Scheme::Dhs { setaside: 8 },
    ] {
        let cfg = NetworkConfig::paper_default(scheme);
        let mut net = Network::new(cfg).expect("valid config");
        let mut src = TraceSource::new(&loaded, cfg.cores_per_node);
        let s = net.run_open_loop(&mut src, plan);
        println!(
            "{:<18} avg latency {:>6.1} cycles   p99 {:>6.1}   queue wait {:>5.1}",
            scheme.label(),
            s.avg_latency,
            s.p99_latency,
            s.avg_queue_wait
        );
    }
    let _ = std::fs::remove_file(&path);
}
